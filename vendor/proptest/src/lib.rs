//! Offline property-testing shim with a proptest-shaped surface.
//!
//! Supports the subset this workspace uses: the `proptest!` macro over
//! functions whose arguments draw from integer range strategies, an
//! optional `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! and `prop_assert!` / `prop_assert_eq!` inside bodies.
//!
//! Case generation is fully deterministic: each (test name, case index)
//! pair seeds a SplitMix64 stream, so failures reproduce across runs
//! without a persistence file. There is no shrinking — the failing
//! argument tuple is printed instead, which is enough to pin down a case
//! given determinism.

use std::fmt;
use std::ops::Range;

/// Runner configuration; only the case count is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!`-family macros.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (unused by this shim's strategies).
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Deterministic per-case random stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    /// Seed from the test's name and the case index. FNV-1a over the name
    /// keeps streams distinct between properties.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        CaseRng {
            state: hash ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` via widening multiply with rejection.
    pub fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A source of random values for one property argument.
pub trait Strategy {
    /// Generated value type.
    type Value: fmt::Debug;
    /// Draw one value.
    fn sample(&self, rng: &mut CaseRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.bounded(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut CaseRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut CaseRng) -> T {
        self.0.clone()
    }
}

/// Define property tests. Mirrors proptest's macro for the supported
/// subset: an optional config header plus `fn name(arg in strategy, ..)`
/// items whose bodies may use `prop_assert!` / `prop_assert_eq!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each property fn under a shared config expression.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::CaseRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(err) = __result {
                    panic!(
                        "property `{}` failed on case {}/{}:\n  {}\n  args: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        err,
                        format!(
                            concat!($(stringify!($arg), " = {:?}  "),+),
                            $($arg),+
                        ),
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case aborts with the condition text (plus optional formatted context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {{
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_is_in_range() {
        let mut rng = CaseRng::for_case("bounded", 0);
        for bound in [1u64, 2, 7, 1_000_000] {
            for _ in 0..100 {
                assert!(rng.bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = CaseRng::for_case("x", 3);
        let mut b = CaseRng::for_case("x", 3);
        let mut c = CaseRng::for_case("y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_covers_span() {
        let strat = 5usize..8;
        let mut seen = [false; 3];
        let mut rng = CaseRng::for_case("cover", 0);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((5..8).contains(&v));
            seen[v - 5] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
    }

    // Exercise the macro end to end, including the config header.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn macro_generates_in_range(a in 1u64..10, n in 2usize..5) {
            prop_assert!(a >= 1);
            prop_assert!(a < 10, "a was {}", a);
            prop_assert!((2..5).contains(&n));
            prop_assert_eq!(a.wrapping_add(0), a);
            prop_assert_ne!(n, 0);
        }
    }

    proptest! {
        fn default_config_works(x in 0u32..3) {
            prop_assert!(x < 3);
        }
    }
}
