//! Offline benchmark harness with a criterion-shaped surface.
//!
//! Implements the subset the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time` / `throughput`, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each sample times a batch of iterations sized from
//! a calibration pass so one batch lasts roughly measurement_time /
//! sample_count; the reported figure is the median per-iteration time.
//! No plotting, no statistics beyond median/min/max — results print to
//! stdout in a `group/function/param time` table.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: function name + parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Build from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Throughput annotation (recorded, reported as elements/sec).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Runs closures under timing; handed to bench bodies.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Filled by `iter`: (median, min, max) per-iteration nanos.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & calibration: count iterations that fit the warm-up
        // window to size measurement batches.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.sample_size.max(2);
        let target_batch =
            self.measurement_time.as_secs_f64() / samples as f64 / per_iter.max(1e-9);
        let batch = (target_batch as u64).clamp(1, 1_000_000);

        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            times.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        self.result = Some((median, times[0], times[times.len() - 1]));
    }

    /// Like `iter`, but the routine receives the batch size and returns
    /// its own duration (criterion's `iter_custom`).
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let samples = self.sample_size.max(2);
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let d = routine(1);
            times.push(d.as_secs_f64() * 1e9);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        self.result = Some((median, times[0], times[times.len() - 1]));
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the warm-up/calibration window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the total measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            result: None,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.result);
        self
    }

    /// Run a benchmark identified by name alone.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            result: None,
        };
        f(&mut b);
        self.report(&id.to_string(), b.result);
        self
    }

    fn report(&mut self, id: &str, result: Option<(f64, f64, f64)>) {
        let Some((median, min, max)) = result else {
            println!("{}/{}: no measurement", self.name, id);
            return;
        };
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / median)
            }
            None => String::new(),
        };
        println!(
            "{:<40} time: [{} {} {}]{}",
            format!("{}/{}", self.name, id),
            fmt_nanos(min),
            fmt_nanos(median),
            fmt_nanos(max),
            throughput
        );
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id), median));
    }

    /// End the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The harness entry object (one per process run).
#[derive(Default)]
pub struct Criterion {
    /// (benchmark id, median ns) pairs collected so far.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip actual
            // measurement there so test runs stay fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("id", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn harness_runs_and_records() {
        let mut c = Criterion::default();
        tiny(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|(_, ns)| *ns > 0.0));
        assert!(c.results[0].0.contains("shim/sum/100"));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
