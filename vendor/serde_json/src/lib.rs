//! JSON text layer over the vendored `serde` shim.
//!
//! Provides `to_string` / `to_string_pretty` / `from_str` with a
//! recursive-descent parser. Only the JSON subset the workspace emits is
//! exercised (objects, arrays, numbers, strings, bools, null), but the
//! parser handles the full grammar including string escapes.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 for multibyte characters.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("k".into(), Value::Number(3.0)),
            (
                "lists".into(),
                Value::Array(vec![
                    Value::Array(vec![Value::Number(0.0), Value::Number(1.0)]),
                    Value::Array(vec![]),
                ]),
            ),
            ("name".into(), Value::String("a\"b\\c\n".into())),
            ("flag".into(), Value::Bool(true)),
            ("missing".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let parsed: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed, v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn vec_of_vec_u32() {
        let data: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let json = to_string(&data).unwrap();
        assert_eq!(json, "[[1,2],[],[3]]");
        let back: Vec<Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("[1] extra").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn parses_whitespace_and_negatives() {
        let v: Vec<i64> = from_str(" [ -1 , 2 ,\n 3 ] ").unwrap();
        assert_eq!(v, vec![-1, 2, 3]);
    }

    #[test]
    fn float_precision_survives() {
        let v: f64 = from_str(&to_string(&0.125f64).unwrap()).unwrap();
        assert_eq!(v, 0.125);
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(s, "Aé");
    }
}
