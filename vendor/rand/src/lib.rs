//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in a hermetic container with no crates.io access,
//! so the subset of the `rand` 0.8 API the repository actually uses is
//! vendored here: [`RngCore`], [`SeedableRng`] (with `seed_from_u64`),
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`], and
//! [`seq::SliceRandom::shuffle`]. Algorithms follow the upstream shapes
//! (SplitMix64 seeding, widening-multiply integer ranges, 53-bit float
//! ranges) but make no promise of bit-compatibility with upstream streams;
//! every consumer in this workspace seeds explicitly, so determinism within
//! the workspace is what matters.

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it through SplitMix64 like upstream.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (and the engine behind the proptest shim).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    /// Current internal state.
    pub state: u64,
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types a range can be sampled over (integers and floats used here).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

/// A range that can produce a uniform sample of `T`.
///
/// Single blanket impls per range shape (rather than one impl per element
/// type) so integer-literal ranges unify with the expected output type,
/// exactly like upstream's `impl<T: SampleUniform> SampleRange<T> for
/// Range<T>`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(rng, start, end)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                let v = bounded_u64(rng, span);
                (start as i128 + v as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = bounded_u64(rng, span + 1);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `0..bound` via widening multiply with rejection.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless lo falls in the biased region.
        let threshold = bound.wrapping_neg() % bound;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start < end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }

    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0, 1]");
        unit_f64(self) < p
    }

    /// A uniform value of a supported type (`f64` in `[0, 1)`, full-width
    /// integers, or `bool`).
    #[inline]
    fn gen<T: Generatable>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait Generatable {
    /// Draw one value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Generatable for f64 {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Generatable for u32 {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Generatable for u64 {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Generatable for bool {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::bounded_u64(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }

    fn _object_safety_probe(rng: &mut dyn RngCore, v: &mut [u32]) {
        v.shuffle(rng);
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Fixed(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u16 = r.gen_range(0..5u16);
            assert!(w < 5);
            let x: i32 = r.gen_range(-4..=4);
            assert!((-4..=4).contains(&x));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Fixed(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Fixed(11);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn splitmix_seeding_is_deterministic() {
        #[derive(Debug)]
        struct S([u8; 16]);
        impl SeedableRng for S {
            type Seed = [u8; 16];
            fn from_seed(seed: [u8; 16]) -> Self {
                S(seed)
            }
        }
        assert_eq!(S::seed_from_u64(42).0, S::seed_from_u64(42).0);
        assert_ne!(S::seed_from_u64(42).0, S::seed_from_u64(43).0);
    }
}
