//! Offline data-parallelism shim with a rayon-compatible surface.
//!
//! Implements the slice/range parallel-iterator subset this workspace uses
//! (`par_iter`, `into_par_iter`, `map`, `map_init`, `enumerate`, `collect`,
//! `for_each`) on top of `std::thread::scope`. Work is split into one
//! contiguous chunk per available core; each chunk is processed on its own
//! OS thread and results are concatenated in order, so `collect` preserves
//! input order exactly like rayon's indexed iterators.
//!
//! This is not a work-stealing runtime — chunking is static — but the
//! executor contract the workspace relies on (deterministic results,
//! order-preserving collect, near-linear scaling for balanced workloads)
//! holds.

use std::num::NonZeroUsize;

/// Number of worker threads used for a job of `len` items.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// An indexed source of items that can be evaluated at any position by any
/// thread. `&self` evaluation keeps adapters trivially shareable.
pub trait ParSource: Sync {
    /// Produced item type.
    type Item: Send;
    /// Total item count.
    fn len(&self) -> usize;
    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Compute the item at `index`.
    fn get(&self, index: usize) -> Self::Item;
}

/// Run `source` across threads, concatenating per-chunk outputs in order.
fn execute<S: ParSource>(source: &S) -> Vec<S::Item> {
    let n = source.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return (0..n).map(|i| source.get(i)).collect();
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || (lo..hi).map(|i| source.get(i)).collect::<Vec<_>>())
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// The user-facing parallel iterator trait (adapter + drive methods).
pub trait ParallelIterator: ParSource + Sized {
    /// Apply `f` to every item in parallel.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Like `map`, with a per-worker mutable state built by `init` — the
    /// rayon idiom for thread-local scratch (workspaces, buffers).
    ///
    /// `init` runs once per worker chunk; `f` receives `&mut` state plus
    /// the item. Results keep input order.
    fn map_init<INIT, T, F, R>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        INIT: Fn() -> T + Sync,
        T: 'static,
        F: Fn(&mut T, Self::Item) -> R + Sync,
        R: Send,
    {
        MapInit {
            base: self,
            init,
            f,
            job: NEXT_JOB.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Evaluate everything and collect in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Evaluate `f` on every item for its side effect.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let mapped = self.map(f);
        let _ = execute(&mapped);
    }
}

impl<S: ParSource> ParallelIterator for S {}

/// Collection types a parallel iterator can drain into.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection.
    fn from_par_iter<S: ParSource<Item = T>>(source: S) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<S: ParSource<Item = T>>(source: S) -> Self {
        execute(&source)
    }
}

/// Borrowing entry point: `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send + 'a;
    /// Parallel iterator over borrowed items.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Owning entry point: `.into_par_iter()`.
pub trait IntoParallelIterator {
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over a slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSource for SliceIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    range: std::ops::Range<usize>,
}

impl ParSource for RangeIter {
    type Item = usize;
    fn len(&self) -> usize {
        self.range.len()
    }
    fn get(&self, index: usize) -> usize {
        self.range.start + index
    }
}

/// `map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> ParSource for Map<S, F>
where
    S: ParSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn get(&self, index: usize) -> R {
        (self.f)(self.base.get(index))
    }
}

/// `map_init` adapter. Evaluated per item; the per-worker state lives in a
/// thread-local slot keyed by a unique job id, so each OS thread builds it
/// exactly once per job and distinct jobs never share state.
pub struct MapInit<S, INIT, F> {
    base: S,
    init: INIT,
    f: F,
    job: u64,
}

static NEXT_JOB: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl<S, INIT, T, F, R> ParSource for MapInit<S, INIT, F>
where
    S: ParSource,
    INIT: Fn() -> T + Sync,
    T: 'static,
    F: Fn(&mut T, S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn get(&self, index: usize) -> R {
        thread_local! {
            static SLOT: std::cell::RefCell<Option<(u64, Box<dyn std::any::Any>)>> =
                const { std::cell::RefCell::new(None) };
        }
        SLOT.with(|slot| {
            let mut slot = slot.borrow_mut();
            let stale = match &*slot {
                Some((job, _)) => *job != self.job,
                None => true,
            };
            if stale {
                *slot = Some((self.job, Box::new((self.init)())));
            }
            let state = slot
                .as_mut()
                .and_then(|(_, b)| b.downcast_mut::<T>())
                .expect("map_init state type is fixed per job");
            (self.f)(state, self.base.get(index))
        })
    }
}

/// `enumerate` adapter.
pub struct Enumerate<S> {
    base: S,
}

impl<S: ParSource> ParSource for Enumerate<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn get(&self, index: usize) -> (usize, S::Item) {
        (index, self.base.get(index))
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join worker panicked"))
    })
}

/// Prelude mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_matches_serial() {
        let v = vec!["a", "b", "c", "d"];
        let out: Vec<(usize, String)> = v
            .par_iter()
            .enumerate()
            .map(|(i, s)| (i, s.to_string()))
            .collect();
        assert_eq!(out[2], (2, "c".to_string()));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (5..25usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out.first(), Some(&6));
        assert_eq!(out.last(), Some(&25));
    }

    #[test]
    fn map_init_reuses_state_within_thread() {
        // The counter increments within a worker; every item sees state.
        let out: Vec<usize> = (0..100usize)
            .into_par_iter()
            .map_init(
                || 0usize,
                |calls, i| {
                    *calls += 1;
                    assert!(*calls >= 1);
                    i
                },
            )
            .collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
