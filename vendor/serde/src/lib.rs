//! Offline serialization shim with a serde-shaped surface.
//!
//! The hermetic build container cannot fetch serde (and its proc-macro
//! derive), so this crate provides a small value-model replacement: types
//! implement [`Serialize`]/[`Deserialize`] against the JSON-like [`Value`]
//! tree, either by hand or through the [`impl_json_struct!`] macro (the
//! moral equivalent of `#[derive(Serialize, Deserialize)]` for plain
//! named-field structs). The sibling `serde_json` shim renders and parses
//! the text form.

use std::fmt;

/// A JSON-like value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build from anything printable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into a [`Value`].
pub trait Serialize {
    /// Produce the value-tree form.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse the value-tree form.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => {
                        let cast = *n as $t;
                        if (cast as f64 - *n).abs() < 1e-9 {
                            Ok(cast)
                        } else {
                            Err(Error::msg(format!(
                                "number {} out of range for {}", n, stringify!($t)
                            )))
                        }
                    }
                    other => Err(Error::msg(format!(
                        "expected number for {}, got {:?}", stringify!($t), other
                    ))),
                }
            }
        }
    )*};
}

impl_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(*n),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-array, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Implement [`Serialize`] + [`Deserialize`] for a named-field struct,
/// mapping it to a JSON object — the shim's stand-in for
/// `#[derive(Serialize, Deserialize)]`.
///
/// ```
/// struct Point { x: u32, y: u32 }
/// serde::impl_json_struct!(Point { x, y });
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $name {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(), $crate::Serialize::to_value(&self.$field)),)+
                ])
            }
        }

        impl $crate::Deserialize for $name {
            fn from_value(v: &$crate::Value) -> Result<Self, $crate::Error> {
                $(
                    let $field = match v.get(stringify!($field)) {
                        Some(fv) => $crate::Deserialize::from_value(fv).map_err(|e| {
                            $crate::Error::msg(format!(
                                "field `{}` of {}: {}",
                                stringify!($field),
                                stringify!($name),
                                e
                            ))
                        })?,
                        None => {
                            return Err($crate::Error::msg(format!(
                                "missing field `{}` in {}",
                                stringify!($field),
                                stringify!($name)
                            )))
                        }
                    };
                )+
                Ok($name { $($field),+ })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Demo {
        a: u32,
        b: Vec<u64>,
    }
    impl_json_struct!(Demo { a, b });

    #[test]
    fn struct_roundtrip() {
        let d = Demo {
            a: 7,
            b: vec![1, 2, 3],
        };
        let v = d.to_value();
        let back = Demo::from_value(&v).unwrap();
        assert_eq!(back.a, 7);
        assert_eq!(back.b, vec![1, 2, 3]);
    }

    #[test]
    fn missing_field_reported() {
        let v = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        let err = Demo::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }

    #[test]
    fn number_range_checked() {
        let v = Value::Number(1.5);
        assert!(u32::from_value(&v).is_err());
        assert_eq!(f64::from_value(&v).unwrap(), 1.5);
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::Number(3.0)).unwrap(),
            Some(3)
        );
    }
}
