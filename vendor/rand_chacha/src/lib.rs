//! ChaCha-based deterministic RNGs for the offline `rand` shim.
//!
//! Implements the real ChaCha stream cipher core (D. J. Bernstein) with 8,
//! 12, or 20 rounds. Streams are deterministic functions of the seed and
//! position; they are NOT bit-compatible with the upstream `rand_chacha`
//! crate (which nobody in this workspace depends on — all seeds are local).

use rand::{RngCore, SeedableRng};

/// One 64-byte ChaCha block state.
#[derive(Debug, Clone)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key + constant + counter + nonce words.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Words 12..13: 64-bit block counter; 14..15: nonce (zero).
        ChaChaCore {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // Advance the 64-bit counter.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor == 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name(ChaChaCore<$rounds>);

        impl RngCore for $name {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.0.next_word()
            }
            #[inline]
            fn next_u64(&mut self) -> u64 {
                let lo = self.0.next_word() as u64;
                let hi = self.0.next_word() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                $name(ChaChaCore::from_seed_bytes(seed))
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds: the workspace's workhorse RNG.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn words_change_across_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second, "counter must advance");
    }

    #[test]
    fn chacha20_known_structure() {
        // Zero seed, first block must differ from raw state (diffusion).
        let mut r = ChaCha20Rng::from_seed([0; 32]);
        let w = r.next_u32();
        assert_ne!(w, 0x6170_7865);
    }

    #[test]
    fn clone_preserves_position() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        r.next_u32();
        let mut s = r.clone();
        assert_eq!(r.next_u64(), s.next_u64());
    }
}
