//! Traced batch front-ends: per-chunk `batch.chunk` timelines through
//! fixed-capacity flight recorders, identical outcomes to the plain path.

use kmatch_obs::{BatchRegistry, ManualClock};
use kmatch_parallel::{roommates, solve_batch, solve_batch_traced};
use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_roommates};
use kmatch_prefs::{BipartiteInstance, RoommatesInstance};
use kmatch_trace::{check_well_formed, span, EventKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn traced_gs_batch_matches_plain_and_chunks_are_well_formed() {
    let mut rng = ChaCha8Rng::seed_from_u64(65);
    let batch: Vec<BipartiteInstance> =
        (0..120).map(|_| uniform_bipartite(20, &mut rng)).collect();
    let registry = BatchRegistry::new();
    let clock = ManualClock::new();
    let (outs, traces) = solve_batch_traced(&batch, &registry, &clock, 1 << 16);
    let plain = solve_batch(&batch);
    assert_eq!(outs.len(), plain.len());
    for (a, b) in outs.iter().zip(&plain) {
        assert_eq!(a.matching, b.matching);
        assert_eq!(a.stats, b.stats);
    }
    assert!(!traces.is_empty());
    let mut solves = 0usize;
    for (i, t) in traces.iter().enumerate() {
        assert_eq!(t.worker, i, "chunk traces arrive in chunk order");
        assert_eq!(t.dropped, 0, "capacity 2^16 never wraps here");
        check_well_formed(&t.events, false).unwrap();
        // Whole chunk is wrapped in one batch.chunk span carrying its id.
        assert_eq!(
            t.events.first().map(|e| (e.name, e.arg)),
            Some((span::BATCH_CHUNK, i as u64))
        );
        assert_eq!(t.events.last().map(|e| e.name), Some(span::BATCH_CHUNK));
        solves += t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Begin && e.name == span::GS_SOLVE)
            .count();
    }
    assert_eq!(solves, batch.len(), "every solve appears on some track");
    assert_eq!(registry.take().solves, batch.len() as u64);
}

#[test]
fn tiny_flight_recorder_wraps_but_keeps_the_tail() {
    let mut rng = ChaCha8Rng::seed_from_u64(66);
    let batch: Vec<BipartiteInstance> =
        (0..64).map(|_| uniform_bipartite(16, &mut rng)).collect();
    let registry = BatchRegistry::new();
    let clock = ManualClock::new();
    let (outs, traces) = solve_batch_traced(&batch, &registry, &clock, 32);
    assert_eq!(outs.len(), batch.len());
    for t in &traces {
        assert!(t.dropped > 0, "32 slots cannot hold a chunk's timeline");
        assert_eq!(t.events.len(), 32);
        // A wrapped dump may open mid-span: orphan End events are fine,
        // but what survives must still be ordered and nestable.
        check_well_formed(&t.events, true).unwrap();
        // The final chunk-close event always survives (it is the newest).
        assert_eq!(t.events.last().map(|e| e.name), Some(span::BATCH_CHUNK));
        assert_eq!(t.events.last().map(|e| e.kind), Some(EventKind::End));
    }
}

#[test]
fn traced_roommates_batch_matches_plain() {
    let mut rng = ChaCha8Rng::seed_from_u64(67);
    let batch: Vec<RoommatesInstance> =
        (0..80).map(|_| uniform_roommates(12, &mut rng)).collect();
    let registry = BatchRegistry::new();
    let clock = ManualClock::new();
    let (outs, traces) = roommates::solve_batch_traced(&batch, &registry, &clock, 1 << 16);
    let plain = roommates::solve_batch(&batch);
    for (a, b) in outs.iter().zip(&plain) {
        assert_eq!(a.matching(), b.matching());
        assert_eq!(a.stats(), b.stats());
    }
    let mut phase1 = 0usize;
    for (i, t) in traces.iter().enumerate() {
        check_well_formed(&t.events, false).unwrap();
        assert_eq!(
            t.events.first().map(|e| (e.name, e.arg)),
            Some((span::BATCH_CHUNK, i as u64))
        );
        phase1 += t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Begin && e.name == span::IRVING_PHASE1)
            .count();
    }
    assert_eq!(phase1, batch.len());
    assert_eq!(registry.take().solves, batch.len() as u64);
}

#[test]
fn empty_traced_batch_returns_nothing() {
    let registry = BatchRegistry::new();
    let clock = ManualClock::new();
    let empty: Vec<BipartiteInstance> = Vec::new();
    let (outs, traces) = solve_batch_traced(&empty, &registry, &clock, 128);
    assert!(outs.is_empty());
    assert!(traces.is_empty());
    assert_eq!(registry.shards_absorbed(), 0);
}
