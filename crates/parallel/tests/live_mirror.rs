//! The batch front-ends feed the process-lifetime scrape layer for
//! free: a [`BatchRegistry`] built with [`BatchRegistry::with_live`]
//! mirrors every chunk shard into the attached [`LiveRegistry`] at
//! absorb time, so `kmatch serve`'s `/metrics` stays current at chunk
//! granularity without the batch drivers changing at all.

use std::sync::Arc;

use kmatch_obs::{BatchRegistry, LiveRegistry, ManualClock};
use kmatch_parallel::steal::ExecPolicy;
use kmatch_parallel::solve_batch_metered_with;
use kmatch_prefs::gen::uniform::uniform_bipartite;
use kmatch_prefs::BipartiteInstance;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn batch(count: usize, n: usize, seed: u64) -> Vec<BipartiteInstance> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count).map(|_| uniform_bipartite(n, &mut rng)).collect()
}

#[test]
fn batch_chunks_mirror_into_the_live_registry() {
    let instances = batch(13, 12, 5);
    let live = Arc::new(LiveRegistry::new());
    let registry = BatchRegistry::with_live(Arc::clone(&live));
    let clock = ManualClock::new();
    let policy = ExecPolicy::with_threads(3);

    let (outcomes, report) =
        solve_batch_metered_with(&instances, &registry, &clock, &policy);
    assert_eq!(outcomes.len(), 13);

    // The live mirror saw exactly the chunk-boundary absorbs (one per
    // chunk), and its counters equal the registry's merged view.
    let merged = registry.snapshot();
    assert_eq!(live.shards_absorbed(), registry.shards_absorbed());
    assert_eq!(live.counter("solves"), Some(merged.solves));
    assert_eq!(live.counter("proposals"), Some(merged.proposals));
    assert_eq!(live.counter("rejections"), Some(merged.rejections));
    assert!(merged.proposals > 0, "the workload must have proposed");

    // Straggler accounting flows in via the explicit fold.
    live.absorb_straggler(&report.straggler_section());
    let prom = live.to_prometheus();
    assert!(prom.contains("kmatch_exec_chunks_total"), "{prom}");

    // Draining the batch registry between measurement windows leaves
    // the process-lifetime mirror accumulating.
    let drained = registry.take();
    assert_eq!(drained.proposals, merged.proposals);
    assert_eq!(live.counter("proposals"), Some(merged.proposals));

    let (more, _) = solve_batch_metered_with(&instances, &registry, &clock, &policy);
    assert_eq!(more.len(), 13);
    assert_eq!(
        live.counter("proposals"),
        Some(merged.proposals + registry.snapshot().proposals)
    );
}

#[test]
fn live_mirror_is_schedule_independent() {
    // The mirrored totals must not depend on the steal schedule: the
    // same workload under 1 thread, 3 threads, and forced stealing
    // lands identical engine counters in the live layer.
    let instances = batch(11, 10, 9);
    let mut totals = Vec::new();
    for policy in [
        ExecPolicy::with_threads(1),
        ExecPolicy::with_threads(3),
        ExecPolicy {
            threads: Some(3),
            force_steal: true,
        },
    ] {
        let live = Arc::new(LiveRegistry::new());
        let registry = BatchRegistry::with_live(Arc::clone(&live));
        solve_batch_metered_with(&instances, &registry, &ManualClock::new(), &policy);
        totals.push((
            live.counter("solves"),
            live.counter("proposals"),
            live.counter("rejections"),
            live.counter("rounds"),
        ));
    }
    assert_eq!(totals[0], totals[1], "thread count leaked into live counters");
    assert_eq!(totals[0], totals[2], "steal schedule leaked into live counters");
}
