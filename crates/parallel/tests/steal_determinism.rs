//! Differential determinism suite for the work-stealing batch executor.
//!
//! The executor's contract: the steal schedule — which worker runs which
//! chunk, and in what interleaving — must be completely unobservable.
//! Outcomes, the merged metrics a registry accumulates, and the
//! per-chunk span timelines must be byte-equal to the serial path across
//! adversarial chunk sizes (batches smaller than the pool, prime sizes,
//! empty batches) and across the forced-steal stress schedule that makes
//! every worker but one steal everything it runs.
//!
//! Under a `ManualClock` every timestamp is 0, so "byte-equal" here is
//! literal: `Vec<TraceEvent>` equality, not equality-modulo-timing.

use kmatch_gs::GsWorkspace;
use kmatch_obs::{BatchRegistry, ManualClock, SolverMetrics};
use kmatch_parallel::steal::ExecPolicy;
use kmatch_parallel::{solve_batch_metered_with, solve_batch_traced_with, ChunkTrace};
use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_roommates};
use kmatch_prefs::{BipartiteInstance, RoommatesInstance};
use kmatch_roommates::RoommatesWorkspace;
use kmatch_trace::check_well_formed;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn policies(threads: usize) -> [ExecPolicy; 3] {
    [
        ExecPolicy::with_threads(1), // the serial reference
        ExecPolicy {
            threads: Some(threads),
            force_steal: false,
        },
        ExecPolicy {
            threads: Some(threads),
            force_steal: true,
        },
    ]
}

/// Metrics with the plan-*dependent* workspace-provenance counters
/// normalized away: a plan with more chunks legitimately reports more
/// fresh (and fewer reused) workspaces, but every engine-level counter
/// and histogram must be identical across plans.
fn normalized(mut m: SolverMetrics) -> SolverMetrics {
    m.workspace_fresh = 0;
    m.workspace_reused = 0;
    m
}

fn assert_traces_equal(a: &[ChunkTrace], b: &[ChunkTrace]) {
    assert_eq!(a.len(), b.len(), "chunk trace count diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.worker, y.worker, "chunk index order diverged");
        assert_eq!(x.dropped, y.dropped);
        assert_eq!(x.events, y.events, "chunk {} timeline diverged", x.worker);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gs_batch_is_steal_schedule_invariant(
        count in 0usize..48,
        n in 2usize..14,
        threads in 2usize..5,
        seed in 0u64..512,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let batch: Vec<BipartiteInstance> =
            (0..count).map(|_| uniform_bipartite(n, &mut rng)).collect();
        // Serial reference: one workspace, input order.
        let mut ws = GsWorkspace::new();
        let reference: Vec<_> = batch.iter().map(|i| ws.solve(i)).collect();

        let mut merged: Vec<SolverMetrics> = Vec::new();
        let mut traces: Vec<Vec<ChunkTrace>> = Vec::new();
        for policy in policies(threads) {
            let registry = BatchRegistry::new();
            let clock = ManualClock::new();
            let (outs, chunk_traces, report) =
                solve_batch_traced_with(&batch, &registry, &clock, 4096, &policy);
            prop_assert_eq!(outs.len(), reference.len());
            for (a, b) in outs.iter().zip(&reference) {
                prop_assert_eq!(&a.matching, &b.matching);
                prop_assert_eq!(a.stats, b.stats);
            }
            prop_assert_eq!(report.chunks_executed(), report.plan.len() as u64);
            for track in &report.worker_tracks {
                check_well_formed(track, false).expect("worker track well-formed");
            }
            for t in &chunk_traces {
                check_well_formed(&t.events, true).expect("chunk timeline well-formed");
            }
            merged.push(registry.take());
            traces.push(chunk_traces);
        }
        // Same plan (same threads) => byte-identical merged metrics
        // whether or not every chunk was stolen; across plans only the
        // workspace-provenance split may move.
        prop_assert_eq!(&merged[1], &merged[2]);
        prop_assert_eq!(
            normalized(merged[0].clone()),
            normalized(merged[1].clone())
        );
        prop_assert_eq!(
            merged[0].workspace_fresh + merged[0].workspace_reused,
            merged[1].workspace_fresh + merged[1].workspace_reused
        );
        // Same plan => byte-equal chunk timelines too.
        assert_traces_equal(&traces[1], &traces[2]);
    }

    #[test]
    fn roommates_batch_is_steal_schedule_invariant(
        count in 0usize..40,
        n in 2usize..12,
        threads in 2usize..5,
        seed in 0u64..512,
    ) {
        let n = n * 2; // roommates instances need an even member count
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let batch: Vec<RoommatesInstance> =
            (0..count).map(|_| uniform_roommates(n, &mut rng)).collect();
        let mut ws = RoommatesWorkspace::new();
        let reference: Vec<_> = batch.iter().map(|i| ws.solve(i)).collect();

        let mut merged: Vec<SolverMetrics> = Vec::new();
        let mut traces: Vec<Vec<ChunkTrace>> = Vec::new();
        for policy in policies(threads) {
            let registry = BatchRegistry::new();
            let clock = ManualClock::new();
            let (outs, chunk_traces, report) =
                kmatch_parallel::roommates::solve_batch_traced_with(
                    &batch, &registry, &clock, 4096, &policy,
                );
            prop_assert_eq!(outs.len(), reference.len());
            for (a, b) in outs.iter().zip(&reference) {
                prop_assert_eq!(a.matching(), b.matching());
                prop_assert_eq!(a.stats(), b.stats());
            }
            prop_assert_eq!(report.chunks_executed(), report.plan.len() as u64);
            for track in &report.worker_tracks {
                check_well_formed(track, false).expect("worker track well-formed");
            }
            merged.push(registry.take());
            traces.push(chunk_traces);
        }
        prop_assert_eq!(&merged[1], &merged[2]);
        prop_assert_eq!(
            normalized(merged[0].clone()),
            normalized(merged[1].clone())
        );
        assert_traces_equal(&traces[1], &traces[2]);
    }

    #[test]
    fn metered_registry_state_is_plan_deterministic(
        count in 1usize..32,
        threads in 2usize..5,
        seed in 0u64..256,
    ) {
        // Running the same batch twice under the same policy must leave
        // two registries in identical states, including the shard count
        // (absorption happens in chunk-index order after the run).
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let batch: Vec<BipartiteInstance> =
            (0..count).map(|_| uniform_bipartite(10, &mut rng)).collect();
        let policy = ExecPolicy {
            threads: Some(threads),
            force_steal: true,
        };
        let (reg_a, reg_b) = (BatchRegistry::new(), BatchRegistry::new());
        let clock = ManualClock::new();
        let (outs_a, rep_a) = solve_batch_metered_with(&batch, &reg_a, &clock, &policy);
        let (outs_b, rep_b) = solve_batch_metered_with(&batch, &reg_b, &clock, &policy);
        prop_assert_eq!(outs_a.len(), outs_b.len());
        for (a, b) in outs_a.iter().zip(&outs_b) {
            prop_assert_eq!(&a.matching, &b.matching);
        }
        prop_assert_eq!(reg_a.shards_absorbed(), reg_b.shards_absorbed());
        prop_assert_eq!(reg_a.take(), reg_b.take());
        prop_assert_eq!(rep_a.plan, rep_b.plan);
    }
}
