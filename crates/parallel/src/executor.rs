//! Rayon-based parallel binding executor.
//!
//! Each `GS(i, j)` binding reads only the preference tables of genders `i`
//! and `j` and writes only its own pair list, so bindings with disjoint
//! gender pairs are embarrassingly parallel. The executor runs either the
//! whole edge set at once ([`parallel_bind`] — legal because binding
//! results never feed each other; only the final class merge is shared) or
//! round-by-round following a schedule ([`parallel_bind_scheduled`] —
//! the paper's PRAM discipline, where a gender's data is held exclusively
//! by one binding per round).

use kmatch_core::binding::BindingOutcome;
use kmatch_core::{merge_edge_pairs, KAryMatching};
use kmatch_graph::{BindingTree, Schedule};
use kmatch_gs::GsStats;
use kmatch_obs::{BatchRegistry, Metrics, NoMetrics, SolverMetrics};
use kmatch_prefs::{GenderId, KPartiteInstance, KPartitePairView, Member};
use rayon::prelude::*;

use crate::scratch::WorkerScratch;

/// Outcome of a parallel binding run.
#[derive(Debug, Clone)]
pub struct ParallelBindingOutcome {
    /// The stable k-ary matching (identical to the sequential result).
    pub matching: KAryMatching,
    /// Per-edge GS statistics in binding-tree edge order.
    pub per_edge: Vec<GsStats>,
    /// Number of barrier-separated rounds executed (1 for the unscheduled
    /// executor).
    pub rounds_executed: usize,
}

impl From<ParallelBindingOutcome> for BindingOutcome {
    fn from(p: ParallelBindingOutcome) -> Self {
        BindingOutcome {
            matching: p.matching,
            per_edge: p.per_edge,
        }
    }
}

type EdgeResult = (usize, Vec<(u32, u32)>, GsStats);

/// Run one binding edge, returning (edge index, global-id pairs, stats).
fn run_edge<M: Metrics>(
    inst: &KPartiteInstance,
    scratch: &mut WorkerScratch,
    edge_idx: usize,
    i: u16,
    j: u16,
    metrics: &mut M,
) -> EdgeResult {
    let n = inst.n() as u32;
    let view = KPartitePairView::new(inst, GenderId(i), GenderId(j));
    // The CSR snapshot preserves lists and ranks exactly, so the outcome
    // (matching and stats) is identical to solving the view directly.
    scratch.csr.load(&view);
    let out = scratch.ws.solve_metered(&scratch.csr, metrics);
    metrics.binding_edge(out.stats.proposals);
    let pairs: Vec<(u32, u32)> = out
        .matching
        .pairs()
        .map(|(m, w)| {
            (
                Member {
                    gender: GenderId(i),
                    index: m,
                }
                .global(n),
                Member {
                    gender: GenderId(j),
                    index: w,
                }
                .global(n),
            )
        })
        .collect();
    (edge_idx, pairs, out.stats)
}

fn merge(
    inst: &KPartiteInstance,
    edge_count: usize,
    results: Vec<EdgeResult>,
    rounds_executed: usize,
) -> ParallelBindingOutcome {
    let (k, n) = (inst.k(), inst.n());
    let mut per_edge = vec![GsStats::default(); edge_count];
    let mut all_pairs = Vec::with_capacity(edge_count * n);
    for (idx, pairs, stats) in results {
        per_edge[idx] = stats;
        all_pairs.extend(pairs);
    }
    let matching = merge_edge_pairs(k, n, all_pairs);
    ParallelBindingOutcome {
        matching,
        per_edge,
        rounds_executed,
    }
}

/// Bind all tree edges concurrently on the rayon pool and merge.
///
/// Result is identical to `kmatch_core::binding::bind_with_stats` — the
/// union–find merge is order-insensitive and each GS run is deterministic.
pub fn parallel_bind(inst: &KPartiteInstance, tree: &BindingTree) -> ParallelBindingOutcome {
    assert_eq!(
        tree.k(),
        inst.k(),
        "binding tree must span the instance's genders"
    );
    let results: Vec<EdgeResult> = tree
        .edges()
        .par_iter()
        .enumerate()
        .map_init(WorkerScratch::default, |scratch, (idx, &(i, j))| {
            run_edge(inst, scratch, idx, i, j, &mut NoMetrics)
        })
        .collect();
    merge(inst, tree.edges().len(), results, 1)
}

/// [`parallel_bind`] with sharded metrics: each binding edge runs with its
/// own thread-private [`SolverMetrics`] shard (absorbed into `registry`
/// when the edge completes), recording per-edge proposal counts via
/// [`Metrics::binding_edge`]; after the merge one final shard carries the
/// [`Metrics::theorem3_check`] of the total against `(k−1)·n²`, so every
/// metered parallel binding validates Theorem 3 empirically.
pub fn parallel_bind_metered(
    inst: &KPartiteInstance,
    tree: &BindingTree,
    registry: &BatchRegistry,
) -> ParallelBindingOutcome {
    assert_eq!(
        tree.k(),
        inst.k(),
        "binding tree must span the instance's genders"
    );
    let results: Vec<EdgeResult> = tree
        .edges()
        .par_iter()
        .enumerate()
        .map(|(idx, &(i, j))| {
            let mut scratch = WorkerScratch::default();
            let mut shard = SolverMetrics::new();
            let r = run_edge(inst, &mut scratch, idx, i, j, &mut shard);
            registry.absorb(shard);
            r
        })
        .collect();
    let outcome = merge(inst, tree.edges().len(), results, 1);
    let total: u64 = outcome.per_edge.iter().map(|s| s.proposals).sum();
    let bound = ((inst.k() - 1) * inst.n() * inst.n()) as u64;
    let mut tail = SolverMetrics::new();
    tail.theorem3_check(total, bound);
    registry.absorb(tail);
    outcome
}

/// Bind round-by-round following `schedule`: edges within a round run
/// concurrently, rounds are separated by barriers — the EREW PRAM
/// discipline of Corollary 1.
pub fn parallel_bind_scheduled(
    inst: &KPartiteInstance,
    tree: &BindingTree,
    schedule: &Schedule,
) -> ParallelBindingOutcome {
    assert_eq!(
        tree.k(),
        inst.k(),
        "binding tree must span the instance's genders"
    );
    let mut results: Vec<EdgeResult> = Vec::with_capacity(tree.edges().len());
    for round in schedule.rounds() {
        let mut batch: Vec<EdgeResult> = round
            .par_iter()
            .map_init(WorkerScratch::default, |scratch, &e| {
                let (i, j) = tree.edges()[e];
                run_edge(inst, scratch, e, i, j, &mut NoMetrics)
            })
            .collect();
        results.append(&mut batch);
    }
    merge(inst, tree.edges().len(), results, schedule.depth())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_core::binding::bind_with_stats;
    use kmatch_core::is_kary_stable;
    use kmatch_graph::prufer::random_tree;
    use kmatch_graph::schedule::{even_odd_path_schedule, tree_edge_coloring};
    use kmatch_prefs::gen::uniform::uniform_kpartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn parallel_equals_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        for (k, n) in [(3usize, 8usize), (5, 6), (8, 4)] {
            let inst = uniform_kpartite(k, n, &mut rng);
            let tree = random_tree(k, &mut rng);
            let seq = bind_with_stats(&inst, &tree);
            let par = parallel_bind(&inst, &tree);
            assert_eq!(par.matching, seq.matching, "k={k}, n={n}");
            assert_eq!(par.per_edge, seq.per_edge);
        }
    }

    #[test]
    fn scheduled_equals_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for k in [4usize, 6, 9] {
            let inst = uniform_kpartite(k, 5, &mut rng);
            let tree = random_tree(k, &mut rng);
            let schedule = tree_edge_coloring(&tree);
            let seq = bind_with_stats(&inst, &tree);
            let par = parallel_bind_scheduled(&inst, &tree, &schedule);
            assert_eq!(par.matching, seq.matching);
            assert_eq!(par.rounds_executed, tree.max_degree());
        }
    }

    #[test]
    fn even_odd_executes_two_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let inst = uniform_kpartite(7, 6, &mut rng);
        let tree = BindingTree::path(7);
        let schedule = even_odd_path_schedule(&tree).unwrap();
        let par = parallel_bind_scheduled(&inst, &tree, &schedule);
        assert_eq!(par.rounds_executed, 2, "Corollary 2");
        assert_eq!(par.matching, bind_with_stats(&inst, &tree).matching);
    }

    #[test]
    fn metered_bind_equals_plain_and_checks_theorem3() {
        let mut rng = ChaCha8Rng::seed_from_u64(46);
        let registry = BatchRegistry::new();
        for (k, n) in [(3usize, 8usize), (6, 5)] {
            let inst = uniform_kpartite(k, n, &mut rng);
            let tree = random_tree(k, &mut rng);
            let plain = parallel_bind(&inst, &tree);
            let metered = parallel_bind_metered(&inst, &tree, &registry);
            assert_eq!(plain.matching, metered.matching);
            assert_eq!(plain.per_edge, metered.per_edge);
        }
        let merged = registry.take();
        // (3−1) + (6−1) binding edges, one theorem-3 check per bind call.
        assert_eq!(merged.binding_edges, 7);
        assert_eq!(merged.proposals_per_edge.count(), 7);
        assert_eq!(merged.theorem3_checks, 2);
        assert_eq!(merged.theorem3_violations, 0, "Theorem 3 must hold");
        assert_eq!(merged.proposals, merged.proposals_per_edge.sum());
    }

    #[test]
    fn parallel_output_is_stable() {
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        let inst = uniform_kpartite(4, 5, &mut rng);
        let tree = BindingTree::star(4, 3);
        let par = parallel_bind(&inst, &tree);
        assert!(is_kary_stable(&inst, &par.matching));
    }

    #[test]
    fn outcome_converts_to_binding_outcome() {
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        let inst = uniform_kpartite(3, 4, &mut rng);
        let tree = BindingTree::path(3);
        let par = parallel_bind(&inst, &tree);
        let total: u64 = par.per_edge.iter().map(|s| s.proposals).sum();
        let bo: BindingOutcome = par.into();
        assert_eq!(bo.total_proposals(), total);
    }
}
