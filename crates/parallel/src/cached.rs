//! Content-addressed cached batch front-end.
//!
//! Batch workloads resubmit instances — parameter sweeps revisit
//! configurations, delta streams undo themselves — and GS is
//! deterministic, so an instance state solved once never needs solving
//! again. [`solve_batch_cached`] keys every instance by its 128-bit
//! content fingerprint (`kmatch_incremental::bipartite_fingerprint`) and
//! serves repeats straight from a caller-owned [`SolveCache`]; only the
//! missing instances go through the regular batch machinery
//! ([`crate::batch::solve_batch_metered`], which picks the serial or
//! parallel path itself). Hits, misses, and evictions land in the
//! [`BatchRegistry`]'s merged `SolverMetrics`, and the returned
//! [`CachedBatchOutcome`] carries the same counts for callers (the CLI
//! hit-rate printout) that do not drain the registry.

use kmatch_gs::{BipartiteMatching, GsOutcome, GsStats, GsWorkspace};
use kmatch_incremental::{bipartite_fingerprint, SolveCache};
use kmatch_obs::{BatchRegistry, Clock, Metrics, SolverMetrics};
use kmatch_prefs::{BipartitePrefs, ResponderListSlice};
use rayon::prelude::*;

use crate::batch::batch_path;

/// A cached batch solve: the outcomes plus this call's cache traffic.
#[derive(Debug)]
pub struct CachedBatchOutcome {
    /// Per-instance outcomes in input order. Cache hits report
    /// zeroed stats — no engine work was executed for them.
    pub outcomes: Vec<GsOutcome>,
    /// Instances served from the cache.
    pub hits: u64,
    /// Instances that had to be solved.
    pub misses: u64,
}

impl CachedBatchOutcome {
    /// Fraction of the batch served from the cache (0 for an empty batch).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Solve a batch through a caller-owned content-addressed cache.
///
/// Outcomes are in input order; a repeated instance (same preference
/// content, whether a literal resubmission or a delta stream that undid
/// itself) returns a clone of its cached proposer-optimal matching. The
/// cache outlives the call, so a sweep can thread one cache through many
/// batches.
pub fn solve_batch_cached<P, C>(
    instances: &[P],
    cache: &mut SolveCache<BipartiteMatching>,
    registry: &BatchRegistry,
    clock: &C,
) -> CachedBatchOutcome
where
    P: BipartitePrefs + ResponderListSlice + kmatch_prefs::PrefOracle + Sync,
    C: Clock + Sync,
{
    let keys: Vec<(u64, u64)> = instances.iter().map(bipartite_fingerprint).collect();
    let mut shard = SolverMetrics::new();
    // First pass: split hits from misses, preserving input positions. A
    // key repeated *within* the batch is a miss only at its first
    // occurrence; later occurrences are hits served by that one solve.
    let mut outcomes: Vec<Option<GsOutcome>> = Vec::with_capacity(instances.len());
    let mut miss_idx: Vec<usize> = Vec::new();
    let mut first_seen: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    let mut dup_idx: Vec<usize> = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        if let Some(matching) = cache.get(key) {
            shard.cache_lookup(true);
            outcomes.push(Some(GsOutcome {
                matching: matching.clone(),
                stats: GsStats::default(),
                trace: None,
            }));
        } else if first_seen.insert(key) {
            shard.cache_lookup(false);
            outcomes.push(None);
            miss_idx.push(i);
        } else {
            shard.cache_lookup(true);
            outcomes.push(None);
            dup_idx.push(i);
        }
    }
    let hits = shard.cache_hits;
    let misses = shard.cache_misses;
    // Second pass: solve the misses — serially through one workspace on a
    // one-thread pool, otherwise fanned out like the plain batch path.
    if !miss_idx.is_empty() {
        let solved: Vec<GsOutcome> = if batch_path() == "serial" {
            let mut ws = GsWorkspace::new();
            let mut engine = SolverMetrics::new();
            let outs = miss_idx
                .iter()
                .map(|&i| {
                    let t0 = clock.now_ns();
                    let out = ws.solve_metered(&instances[i], &mut engine);
                    engine.solve_ns(clock.now_ns().saturating_sub(t0));
                    out
                })
                .collect();
            registry.absorb(engine);
            outs
        } else {
            miss_idx
                .par_iter()
                .map_init(GsWorkspace::new, |ws, &i| {
                    let mut engine = SolverMetrics::new();
                    let t0 = clock.now_ns();
                    let out = ws.solve_metered(&instances[i], &mut engine);
                    engine.solve_ns(clock.now_ns().saturating_sub(t0));
                    registry.absorb(engine);
                    out
                })
                .collect()
        };
        // Keep this batch's results aside for in-batch repeats — a tiny
        // cache may already have evicted an early key by the time a late
        // duplicate needs it.
        let mut solved_map: std::collections::HashMap<(u64, u64), BipartiteMatching> =
            std::collections::HashMap::with_capacity(miss_idx.len());
        for (&i, out) in miss_idx.iter().zip(solved) {
            if cache.insert(keys[i], out.matching.clone()) {
                shard.cache_eviction();
            }
            if !dup_idx.is_empty() {
                solved_map.insert(keys[i], out.matching.clone());
            }
            outcomes[i] = Some(out);
        }
        for i in dup_idx {
            let matching = solved_map
                .get(&keys[i])
                .expect("every duplicate's representative was solved")
                .clone();
            outcomes[i] = Some(GsOutcome {
                matching,
                stats: GsStats::default(),
                trace: None,
            });
        }
    }
    registry.absorb(shard);
    CachedBatchOutcome {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every slot is a hit or a solved miss"))
            .collect(),
        hits,
        misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_gs::gale_shapley;
    use kmatch_obs::ManualClock;
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use kmatch_prefs::BipartiteInstance;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn repeats_hit_and_agree_with_cold() {
        let mut rng = ChaCha8Rng::seed_from_u64(57);
        let distinct: Vec<BipartiteInstance> =
            (0..8).map(|_| uniform_bipartite(16, &mut rng)).collect();
        // Each instance appears three times.
        let batch: Vec<BipartiteInstance> = distinct
            .iter()
            .cycle()
            .take(24)
            .cloned()
            .collect();
        let mut cache = SolveCache::default();
        let registry = BatchRegistry::new();
        let out = solve_batch_cached(&batch, &mut cache, &registry, &ManualClock::new());
        assert_eq!(out.misses, 8, "first sighting of each instance solves");
        assert_eq!(out.hits, 16, "both repeats of each instance hit");
        assert!((out.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        for (inst, o) in batch.iter().zip(&out.outcomes) {
            assert_eq!(o.matching, gale_shapley(inst).matching);
        }
        let merged = registry.take();
        assert_eq!(merged.cache_hits, 16);
        assert_eq!(merged.cache_misses, 8);
        assert_eq!(merged.solves, 8, "only misses reach the engine");
    }

    #[test]
    fn cache_persists_across_batches() {
        let mut rng = ChaCha8Rng::seed_from_u64(58);
        let batch: Vec<BipartiteInstance> =
            (0..6).map(|_| uniform_bipartite(12, &mut rng)).collect();
        let mut cache = SolveCache::default();
        let registry = BatchRegistry::new();
        let clock = ManualClock::new();
        let first = solve_batch_cached(&batch, &mut cache, &registry, &clock);
        assert_eq!(first.hits, 0);
        let second = solve_batch_cached(&batch, &mut cache, &registry, &clock);
        assert_eq!(second.hits, 6, "second batch is fully cached");
        assert_eq!(second.misses, 0);
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            assert_eq!(a.matching, b.matching);
        }
    }

    #[test]
    fn tiny_cache_evicts_and_stays_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(59);
        let batch: Vec<BipartiteInstance> =
            (0..10).map(|_| uniform_bipartite(10, &mut rng)).collect();
        let mut cache = SolveCache::new(3);
        let registry = BatchRegistry::new();
        let out = solve_batch_cached(&batch, &mut cache, &registry, &ManualClock::new());
        assert_eq!(out.misses, 10);
        assert!(cache.len() <= 3);
        let merged = registry.take();
        assert_eq!(merged.cache_evictions, 7);
        for (inst, o) in batch.iter().zip(&out.outcomes) {
            assert_eq!(o.matching, gale_shapley(inst).matching);
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let empty: Vec<BipartiteInstance> = Vec::new();
        let mut cache = SolveCache::default();
        let registry = BatchRegistry::new();
        let out = solve_batch_cached(&empty, &mut cache, &registry, &ManualClock::new());
        assert!(out.outcomes.is_empty());
        assert_eq!(out.hit_rate(), 0.0);
    }
}
