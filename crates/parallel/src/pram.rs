//! The paper's PRAM cost model, as an explicit simulator.
//!
//! §IV-C measures parallel binding in *iterations of the matching process*
//! (proposals) under the PRAM abstraction:
//!
//! * **EREW** (exclusive read, exclusive write): a gender's preference data
//!   can serve one binding at a time, so bindings execute in the rounds of
//!   an edge coloring; with `k − 1` processors the makespan is
//!   `Σ_rounds max(edge cost)` ≤ `Δ·n²` (Corollary 1). A path tree under
//!   the even–odd schedule needs exactly two rounds (Corollary 2, Fig. 4).
//! * **CREW** (concurrent read, exclusive write): every binding can read
//!   gender data simultaneously, so all `k − 1` bindings run in one round;
//!   EREW emulates this by first replicating each gender's data for
//!   `⌈log₂ Δ⌉` doubling rounds.

use kmatch_graph::{tree_edge_coloring, BindingTree, Schedule};
use kmatch_gs::GsStats;

/// Which PRAM variant a cost was computed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PramModel {
    /// Exclusive read, exclusive write: edge-colored rounds.
    Erew,
    /// Concurrent read (after data replication), exclusive write.
    Crew,
}

/// Modeled parallel cost of a binding execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PramCost {
    /// The model used.
    pub model: PramModel,
    /// Per-round iteration cost: the maximum proposal count among the
    /// bindings of each round.
    pub round_costs: Vec<u64>,
    /// Data-replication rounds paid up front (CREW emulation only).
    pub replication_rounds: u32,
    /// Processors used (concurrent bindings in the widest round).
    pub processors: usize,
}

impl PramCost {
    /// Total modeled iterations: the sum of per-round maxima.
    pub fn total_iterations(&self) -> u64 {
        self.round_costs.iter().sum()
    }

    /// Number of GS rounds (excluding replication).
    pub fn depth(&self) -> usize {
        self.round_costs.len()
    }
}

/// `⌈log₂ Δ⌉`: doubling rounds needed to replicate one copy of a gender's
/// data into `Δ` copies.
pub fn replication_rounds(delta: usize) -> u32 {
    if delta <= 1 {
        return 0;
    }
    usize::BITS - (delta - 1).leading_zeros()
}

fn schedule_cost(schedule: &Schedule, per_edge: &[GsStats]) -> (Vec<u64>, usize) {
    let round_costs: Vec<u64> = schedule
        .rounds()
        .iter()
        .map(|round| {
            round
                .iter()
                .map(|&e| per_edge[e].proposals)
                .max()
                .unwrap_or(0)
        })
        .collect();
    (round_costs, schedule.width())
}

/// EREW cost of executing `per_edge` (stats from a real run, edge order
/// matching `tree.edges()`) under `schedule`; defaults to the Δ-round edge
/// coloring when `schedule` is `None`.
pub fn erew_cost(
    tree: &BindingTree,
    per_edge: &[GsStats],
    schedule: Option<&Schedule>,
) -> PramCost {
    assert_eq!(per_edge.len(), tree.edges().len(), "one stat per edge");
    let coloring;
    let schedule = match schedule {
        Some(s) => s,
        None => {
            coloring = tree_edge_coloring(tree);
            &coloring
        }
    };
    let (round_costs, processors) = schedule_cost(schedule, per_edge);
    PramCost {
        model: PramModel::Erew,
        round_costs,
        replication_rounds: 0,
        processors,
    }
}

/// CREW cost: one round of all bindings after `⌈log₂ Δ⌉` replication
/// rounds.
pub fn crew_cost(tree: &BindingTree, per_edge: &[GsStats]) -> PramCost {
    assert_eq!(per_edge.len(), tree.edges().len(), "one stat per edge");
    let max_cost = per_edge.iter().map(|s| s.proposals).max().unwrap_or(0);
    PramCost {
        model: PramModel::Crew,
        round_costs: vec![max_cost],
        replication_rounds: replication_rounds(tree.max_degree()),
        processors: tree.edges().len(),
    }
}

/// Cross-check a real parallel execution against the PRAM simulator's
/// round accounting: the number of barrier-separated rounds the executor
/// actually ran must equal the model's depth for the same per-edge costs.
///
/// * With a `schedule`, the outcome came from
///   [`crate::parallel_bind_scheduled`], which runs one barrier per
///   schedule round — the EREW discipline of Corollary 1 (and exactly two
///   rounds for an even–odd path schedule, Corollary 2). The model depth
///   is [`erew_cost`]'s.
/// * Without a schedule, the outcome came from the unscheduled executor
///   ([`crate::parallel_bind`] / [`crate::parallel_bind_metered`]), which
///   launches every binding concurrently in a single round — the CREW
///   discipline, whose [`crew_cost`] depth is 1 (replication rounds are
///   model bookkeeping, not executed GS rounds).
///
/// The CI batch smoke step and the executor tests run this after every
/// scheduled bind so a drift between the executor's barrier structure and
/// the cost model's accounting cannot land silently.
pub fn rounds_consistent_with_pram(
    outcome: &crate::executor::ParallelBindingOutcome,
    tree: &BindingTree,
    schedule: Option<&Schedule>,
) -> bool {
    let modeled = match schedule {
        Some(s) => erew_cost(tree, &outcome.per_edge, Some(s)).depth(),
        None => crew_cost(tree, &outcome.per_edge).depth(),
    };
    outcome.rounds_executed == modeled
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_core::binding::bind_with_stats;
    use kmatch_graph::prufer::random_tree;
    use kmatch_graph::schedule::even_odd_path_schedule;
    use kmatch_prefs::gen::uniform::uniform_kpartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn corollary1_bound_holds() {
        // EREW cost ≤ Δ·n² for any tree.
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        for k in [4usize, 6, 10] {
            let n = 8usize;
            let inst = uniform_kpartite(k, n, &mut rng);
            let tree = random_tree(k, &mut rng);
            let out = bind_with_stats(&inst, &tree);
            let cost = erew_cost(&tree, &out.per_edge, None);
            let bound = (tree.max_degree() * n * n) as u64;
            assert!(cost.total_iterations() <= bound, "Δn² = {bound} exceeded");
            assert_eq!(cost.depth(), tree.max_degree());
        }
    }

    #[test]
    fn corollary2_two_round_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let inst = uniform_kpartite(9, 6, &mut rng);
        let tree = BindingTree::path(9);
        let out = bind_with_stats(&inst, &tree);
        let schedule = even_odd_path_schedule(&tree).unwrap();
        let cost = erew_cost(&tree, &out.per_edge, Some(&schedule));
        assert_eq!(cost.depth(), 2, "Corollary 2: two rounds");
        // Two-round cost is also within the Δn² bound (Δ = 2 on a path).
        assert!(cost.total_iterations() <= 2 * 6 * 6);
    }

    #[test]
    fn star_is_sequential_under_erew() {
        // A star has Δ = k − 1: no parallelism at all under EREW.
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let inst = uniform_kpartite(6, 5, &mut rng);
        let tree = BindingTree::star(6, 0);
        let out = bind_with_stats(&inst, &tree);
        let cost = erew_cost(&tree, &out.per_edge, None);
        assert_eq!(cost.depth(), 5);
        assert_eq!(cost.processors, 1);
        assert_eq!(
            cost.total_iterations(),
            out.total_proposals(),
            "no overlap possible"
        );
    }

    #[test]
    fn crew_single_round_with_replication() {
        let mut rng = ChaCha8Rng::seed_from_u64(54);
        let inst = uniform_kpartite(6, 5, &mut rng);
        let tree = BindingTree::star(6, 0);
        let out = bind_with_stats(&inst, &tree);
        let cost = crew_cost(&tree, &out.per_edge);
        assert_eq!(cost.depth(), 1);
        assert_eq!(cost.replication_rounds, replication_rounds(5));
        assert_eq!(cost.replication_rounds, 3); // ceil(log2 5)
        assert!(cost.total_iterations() <= out.total_proposals());
    }

    #[test]
    fn replication_round_values() {
        assert_eq!(replication_rounds(1), 0);
        assert_eq!(replication_rounds(2), 1);
        assert_eq!(replication_rounds(3), 2);
        assert_eq!(replication_rounds(4), 2);
        assert_eq!(replication_rounds(5), 3);
        assert_eq!(replication_rounds(8), 3);
        assert_eq!(replication_rounds(9), 4);
    }

    #[test]
    fn executed_rounds_agree_with_pram_accounting() {
        use crate::executor::{parallel_bind, parallel_bind_scheduled};
        let mut rng = ChaCha8Rng::seed_from_u64(56);
        // Scheduled binds execute one barrier per EREW round: the
        // edge-coloring schedule on random trees (Corollary 1) and the
        // two-round even–odd schedule on paths (Corollary 2).
        for k in [4usize, 7, 9] {
            let inst = uniform_kpartite(k, 6, &mut rng);
            let tree = random_tree(k, &mut rng);
            let schedule = tree_edge_coloring(&tree);
            let out = parallel_bind_scheduled(&inst, &tree, &schedule);
            assert!(
                rounds_consistent_with_pram(&out, &tree, Some(&schedule)),
                "k={k}: executed {} rounds, EREW model depth {}",
                out.rounds_executed,
                erew_cost(&tree, &out.per_edge, Some(&schedule)).depth()
            );
        }
        let inst = uniform_kpartite(8, 6, &mut rng);
        let tree = BindingTree::path(8);
        let schedule = even_odd_path_schedule(&tree).unwrap();
        let out = parallel_bind_scheduled(&inst, &tree, &schedule);
        assert_eq!(out.rounds_executed, 2, "Corollary 2");
        assert!(rounds_consistent_with_pram(&out, &tree, Some(&schedule)));
        // The unscheduled executor is the CREW shape: all bindings in
        // one round.
        let out = parallel_bind(&inst, &tree);
        assert!(rounds_consistent_with_pram(&out, &tree, None));
        // A drifted round count is caught.
        let mut drifted = out;
        drifted.rounds_executed += 1;
        assert!(!rounds_consistent_with_pram(&drifted, &tree, None));
    }

    #[test]
    fn erew_beats_sequential_on_paths() {
        // Path trees overlap bindings: modeled cost strictly below the
        // sequential total whenever more than one edge shares a round.
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let inst = uniform_kpartite(8, 16, &mut rng);
        let tree = BindingTree::path(8);
        let out = bind_with_stats(&inst, &tree);
        let schedule = even_odd_path_schedule(&tree).unwrap();
        let cost = erew_cost(&tree, &out.per_edge, Some(&schedule));
        assert!(
            cost.total_iterations() < out.total_proposals(),
            "parallel model must beat the sequential sum on a path"
        );
    }
}
