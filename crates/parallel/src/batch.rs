//! Batch throughput front-end: solve many independent bipartite instances
//! across a work-stealing pool.
//!
//! Throughput-oriented callers (parameter sweeps, Monte-Carlo experiments,
//! the `bench_throughput` benchmark) solve thousands of instances whose
//! only relationship is that they arrive together. Each solve is
//! independent, so the batch is embarrassingly parallel; the interesting
//! part is keeping the per-solve constant factor down and the workers
//! evenly loaded. The batch is split by [`ChunkPlan::balanced`] into
//! contiguous chunks whose sizes differ by at most one and executed by
//! [`crate::steal::run_chunks`]: each chunk gets its own [`GsWorkspace`]
//! (allocated once per chunk, reused for every instance in it), idle
//! workers steal queued chunks, and results are reduced in chunk-index
//! order — so the output, the metrics-shard absorption order, and the
//! chunk traces are byte-identical regardless of the steal schedule.
//!
//! Results are returned in input order and are identical to calling
//! [`kmatch_gs::gale_shapley`] on each instance serially (GS is
//! deterministic and instances share no state).

use kmatch_gs::{GsOutcome, GsStats, GsWorkspace};
use kmatch_obs::{BatchRegistry, Clock, Metrics, SolverMetrics};
use kmatch_prefs::PrefOracle;
use kmatch_trace::{span, FlightRecorder, SpanSink, TraceEvent};

use crate::steal::{run_chunks, ChunkPlan, ExecPolicy, StealReport};

/// The span timeline one batch chunk recorded: a `batch.chunk` span
/// (arg = chunk index) enclosing the per-solve engine spans, captured
/// through a fixed-capacity [`FlightRecorder`] so a huge chunk keeps only
/// its most recent events.
#[derive(Debug, Clone)]
pub struct ChunkTrace {
    /// Chunk index — also the worker-track id in the exported trace.
    /// Deliberately the *chunk*, not the OS thread that happened to run
    /// it: chunk timelines stay byte-identical across steal schedules.
    pub worker: usize,
    /// Events the chunk's flight recorder overwrote (0 when the ring
    /// never wrapped).
    pub dropped: u64,
    /// The surviving events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// Which execution path the batch front-ends take on the current rayon
/// pool: `"serial"` when the pool has a single thread — the fan-out
/// machinery (chunking, per-chunk workspaces, registry shards) would only
/// add overhead with no concurrency to buy — and `"parallel"` otherwise.
/// Benchmarks record this so throughput numbers name the path they
/// measured.
pub fn batch_path() -> &'static str {
    if rayon::current_num_threads() <= 1 {
        "serial"
    } else {
        "parallel"
    }
}

/// A clock that always reads zero, for the unmetered front-end — the
/// executor's accounting hooks cost two loads of a constant per chunk.
struct NullClock;

impl Clock for NullClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        0
    }
}

/// Solve every instance with proposer-proposing Gale–Shapley, fanning the
/// batch across the work-stealing executor with one reusable
/// [`GsWorkspace`] per chunk.
///
/// Output order matches input order, and each outcome equals the one
/// `gale_shapley` would produce for that instance.
///
/// ```
/// use kmatch_parallel::solve_batch;
/// use kmatch_prefs::gen::uniform::uniform_bipartite;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let batch: Vec<_> = (0..32).map(|_| uniform_bipartite(16, &mut rng)).collect();
/// let outcomes = solve_batch(&batch);
/// assert_eq!(outcomes.len(), 32);
/// ```
pub fn solve_batch<P>(instances: &[P]) -> Vec<GsOutcome>
where
    P: PrefOracle + Sync,
{
    if batch_path() == "serial" {
        let mut ws = GsWorkspace::new();
        return instances.iter().map(|inst| ws.solve(inst)).collect();
    }
    let plan = ChunkPlan::balanced(instances.len(), ExecPolicy::default().requested_threads());
    let (per_chunk, _) = run_chunks(&plan, &ExecPolicy::default(), &NullClock, |_, (lo, hi)| {
        let mut ws = GsWorkspace::new();
        instances[lo..hi]
            .iter()
            .map(|inst| ws.solve(inst))
            .collect::<Vec<GsOutcome>>()
    });
    per_chunk.into_iter().flatten().collect()
}

/// [`solve_batch`] with sharded metrics and per-solve wall timing.
///
/// Every chunk solves through its own [`GsWorkspace`] **and** its own
/// chunk-private [`SolverMetrics`] shard — the hot path performs plain
/// `u64` increments, no atomics, no locks. Shards are absorbed into
/// `registry` **in chunk-index order after the run**, so the registry's
/// state (including `shards_absorbed`) is independent of the steal
/// schedule. Per-solve wall time is sampled from the injected `clock`
/// here at the front-end, keeping the engine clock-free.
///
/// Output order matches input order and each outcome equals
/// [`solve_batch`]'s (the metered engine instantiation runs the identical
/// round schedule).
pub fn solve_batch_metered<P, C>(
    instances: &[P],
    registry: &BatchRegistry,
    clock: &C,
) -> Vec<GsOutcome>
where
    P: PrefOracle + Sync,
    C: Clock + Sync,
{
    solve_batch_metered_with(instances, registry, clock, &ExecPolicy::default()).0
}

/// [`solve_batch_metered`] under an explicit [`ExecPolicy`], returning
/// the executor's [`StealReport`] (chunk plan, per-worker straggler
/// accounting, worker span tracks) alongside the outcomes.
pub fn solve_batch_metered_with<P, C>(
    instances: &[P],
    registry: &BatchRegistry,
    clock: &C,
    policy: &ExecPolicy,
) -> (Vec<GsOutcome>, StealReport)
where
    P: PrefOracle + Sync,
    C: Clock + Sync,
{
    let plan = ChunkPlan::balanced(instances.len(), policy.requested_threads());
    let (per_chunk, report) = run_chunks(&plan, policy, clock, |_, (lo, hi)| {
        let mut ws = GsWorkspace::new();
        let mut shard = SolverMetrics::new();
        let outs: Vec<GsOutcome> = instances[lo..hi]
            .iter()
            .map(|inst| {
                let t0 = clock.now_ns();
                let out = ws.solve_metered(inst, &mut shard);
                shard.solve_ns(clock.now_ns().saturating_sub(t0));
                out
            })
            .collect();
        (outs, shard)
    });
    let mut outs = Vec::with_capacity(instances.len());
    for (chunk_outs, shard) in per_chunk {
        outs.extend(chunk_outs);
        registry.absorb(shard);
    }
    (outs, report)
}

/// [`solve_batch_metered`] that additionally records a span timeline per
/// chunk.
///
/// Each chunk solves through its own [`FlightRecorder`] of
/// `flight_capacity` events (preallocated before the chunk's first solve;
/// recording never allocates), wrapping the whole chunk in a
/// `batch.chunk` span whose arg is the chunk index. Flight recorders are
/// phase-level by design (`SpanSink::FINE = false`): the tracks carry
/// `batch.chunk` and one `gs.solve` span per instance, never the
/// fine-grained `gs.round` spans — that is what keeps the traced batch
/// within a few percent of the plain one (the `trace_overhead` row of
/// `results/REPORT_gs.json` pins the measured figure). The returned
/// [`ChunkTrace`]s are ordered by chunk index and plug straight into
/// `kmatch_trace::TraceTrack::workers` for a thread-track-per-worker
/// Chrome trace. Outcomes are identical to [`solve_batch`]'s.
pub fn solve_batch_traced<P, C>(
    instances: &[P],
    registry: &BatchRegistry,
    clock: &C,
    flight_capacity: usize,
) -> (Vec<GsOutcome>, Vec<ChunkTrace>)
where
    P: PrefOracle + Sync,
    C: Clock + Sync,
{
    let (outs, traces, _) =
        solve_batch_traced_with(instances, registry, clock, flight_capacity, &ExecPolicy::default());
    (outs, traces)
}

/// [`solve_batch_traced`] under an explicit [`ExecPolicy`], returning the
/// executor's [`StealReport`] as well.
pub fn solve_batch_traced_with<P, C>(
    instances: &[P],
    registry: &BatchRegistry,
    clock: &C,
    flight_capacity: usize,
    policy: &ExecPolicy,
) -> (Vec<GsOutcome>, Vec<ChunkTrace>, StealReport)
where
    P: PrefOracle + Sync,
    C: Clock + Sync,
{
    let len = instances.len();
    if len == 0 {
        let plan = ChunkPlan::balanced(0, policy.requested_threads());
        let (_, report) = run_chunks(&plan, policy, clock, |_, _| ());
        return (Vec::new(), Vec::new(), report);
    }
    let plan = ChunkPlan::balanced(len, policy.requested_threads());
    let (per_chunk, report) = run_chunks(&plan, policy, clock, |c, (lo, hi)| {
        let mut ws = GsWorkspace::new();
        let mut shard = SolverMetrics::new();
        let mut rec = FlightRecorder::new(clock, flight_capacity);
        rec.begin(span::BATCH_CHUNK, c as u64);
        let outs: Vec<GsOutcome> = instances[lo..hi]
            .iter()
            .map(|inst| {
                let t0 = clock.now_ns();
                let out = ws.solve_spanned(inst, &mut shard, &mut rec);
                shard.solve_ns(clock.now_ns().saturating_sub(t0));
                out
            })
            .collect();
        rec.end(span::BATCH_CHUNK);
        let trace = ChunkTrace {
            worker: c,
            dropped: rec.dropped(),
            events: rec.events(),
        };
        (outs, shard, trace)
    });
    let mut outs = Vec::with_capacity(len);
    let mut traces = Vec::with_capacity(plan.len());
    for (chunk_outs, shard, trace) in per_chunk {
        outs.extend(chunk_outs);
        registry.absorb(shard);
        traces.push(trace);
    }
    (outs, traces, report)
}

/// Sum the instrumentation counters of a batch: total proposals and the
/// maximum round count (the batch's PRAM-style critical path).
pub fn batch_stats(outcomes: &[GsOutcome]) -> GsStats {
    GsStats {
        proposals: outcomes.iter().map(|o| o.stats.proposals).sum(),
        rounds: outcomes.iter().map(|o| o.stats.rounds).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_gs::gale_shapley;
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use kmatch_prefs::BipartiteInstance;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn batch_equals_serial() {
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let batch: Vec<BipartiteInstance> =
            (0..200).map(|_| uniform_bipartite(30, &mut rng)).collect();
        let par = solve_batch(&batch);
        assert_eq!(par.len(), batch.len());
        for (inst, out) in batch.iter().zip(&par) {
            let seq = gale_shapley(inst);
            assert_eq!(out.matching, seq.matching);
            assert_eq!(out.stats, seq.stats);
        }
    }

    #[test]
    fn mixed_sizes_do_not_leak_workspace_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let sizes = [40usize, 1, 17, 64, 3, 64, 2, 33];
        let batch: Vec<BipartiteInstance> = sizes
            .iter()
            .cycle()
            .take(64)
            .map(|&n| uniform_bipartite(n, &mut rng))
            .collect();
        let par = solve_batch(&batch);
        for (inst, out) in batch.iter().zip(&par) {
            assert_eq!(out.matching, gale_shapley(inst).matching);
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let empty: Vec<BipartiteInstance> = Vec::new();
        assert!(solve_batch(&empty).is_empty());

        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let one = vec![uniform_bipartite(10, &mut rng)];
        let out = solve_batch(&one);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].matching, gale_shapley(&one[0]).matching);
    }

    #[test]
    fn metered_batch_equals_plain_and_shards_merge() {
        use kmatch_obs::{BatchRegistry, ManualClock};
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let batch: Vec<BipartiteInstance> =
            (0..120).map(|_| uniform_bipartite(24, &mut rng)).collect();
        let registry = BatchRegistry::new();
        let clock = ManualClock::new();
        let metered = solve_batch_metered(&batch, &registry, &clock);
        let plain = solve_batch(&batch);
        assert_eq!(metered.len(), plain.len());
        for (a, b) in metered.iter().zip(&plain) {
            assert_eq!(a.matching, b.matching);
            assert_eq!(a.stats, b.stats);
        }
        // One shard per chunk of the balanced plan, not per solve.
        let shards = registry.shards_absorbed();
        let chunks =
            ChunkPlan::balanced(batch.len(), ExecPolicy::default().requested_threads()).len();
        assert_eq!(shards, chunks as u64);
        let merged = registry.take();
        assert_eq!(merged.solves, 120);
        assert_eq!(
            merged.proposals,
            plain.iter().map(|o| o.stats.proposals).sum::<u64>()
        );
        assert_eq!(merged.solve_wall_ns.count(), 120);
        assert_eq!(registry.shards_absorbed(), 0, "take() resets the count");
    }

    #[test]
    fn metered_with_reports_straggler_accounting() {
        use kmatch_obs::{BatchRegistry, ManualClock};
        let mut rng = ChaCha8Rng::seed_from_u64(56);
        let batch: Vec<BipartiteInstance> =
            (0..60).map(|_| uniform_bipartite(12, &mut rng)).collect();
        let registry = BatchRegistry::new();
        let clock = ManualClock::new();
        let policy = ExecPolicy {
            threads: Some(3),
            force_steal: true,
        };
        let (outs, report) = solve_batch_metered_with(&batch, &registry, &clock, &policy);
        assert_eq!(outs.len(), 60);
        assert_eq!(report.threads, 3);
        assert!(report.forced_steal);
        assert_eq!(report.chunks_executed(), report.plan.len() as u64);
        assert_eq!(
            report.plan.sizes().iter().sum::<u64>(),
            60,
            "plan covers the batch"
        );
        let section = report.straggler_section();
        assert_eq!(section.workers.len(), 3);
        // Outcomes are identical to the serial reference despite the
        // forced-steal schedule.
        for (inst, out) in batch.iter().zip(&outs) {
            assert_eq!(out.matching, gale_shapley(inst).matching);
        }
    }

    #[test]
    fn metered_empty_batch_absorbs_nothing() {
        use kmatch_obs::{BatchRegistry, ManualClock};
        let empty: Vec<BipartiteInstance> = Vec::new();
        let registry = BatchRegistry::new();
        assert!(solve_batch_metered(&empty, &registry, &ManualClock::new()).is_empty());
        assert_eq!(registry.shards_absorbed(), 0);
    }

    #[test]
    fn batch_stats_aggregates() {
        let mut rng = ChaCha8Rng::seed_from_u64(54);
        let batch: Vec<BipartiteInstance> =
            (0..10).map(|_| uniform_bipartite(12, &mut rng)).collect();
        let out = solve_batch(&batch);
        let agg = batch_stats(&out);
        assert_eq!(
            agg.proposals,
            out.iter().map(|o| o.stats.proposals).sum::<u64>()
        );
        assert!(agg.rounds >= out[0].stats.rounds);
        assert_eq!(batch_stats(&[]).rounds, 0);
    }
}
