//! Batch throughput front-end: solve many independent bipartite instances
//! across the rayon pool.
//!
//! Throughput-oriented callers (parameter sweeps, Monte-Carlo experiments,
//! the `bench_throughput` benchmark) solve thousands of instances whose
//! only relationship is that they arrive together. Each solve is
//! independent, so the batch is embarrassingly parallel; the interesting
//! part is keeping the per-solve constant factor down. [`solve_batch`]
//! does that by giving every worker thread one [`GsWorkspace`] via
//! `map_init`, so scratch buffers are allocated once per thread and reused
//! for every instance the thread processes — the per-instance allocations
//! are exactly the two partner arrays owned by each returned matching.
//!
//! Results are returned in input order and are identical to calling
//! [`kmatch_gs::gale_shapley`] on each instance serially (GS is
//! deterministic and instances share no state).

use kmatch_gs::{GsOutcome, GsStats, GsWorkspace};
use kmatch_obs::{BatchRegistry, Clock, Metrics, SolverMetrics};
use kmatch_prefs::PrefOracle;
use kmatch_trace::{span, FlightRecorder, SpanSink, TraceEvent};
use rayon::prelude::*;

/// The span timeline one batch worker recorded for its chunk: a
/// `batch.chunk` span (arg = chunk index) enclosing the per-solve engine
/// spans, captured through a fixed-capacity [`FlightRecorder`] so a huge
/// chunk keeps only its most recent events.
#[derive(Debug, Clone)]
pub struct ChunkTrace {
    /// Chunk index — also the worker-track id in the exported trace.
    pub worker: usize,
    /// Events the chunk's flight recorder overwrote (0 when the ring
    /// never wrapped).
    pub dropped: u64,
    /// The surviving events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// Which execution path the batch front-ends take on the current rayon
/// pool: `"serial"` when the pool has a single thread — the fan-out
/// machinery (chunking, per-chunk workspaces, registry shards) would only
/// add overhead with no concurrency to buy — and `"parallel"` otherwise.
/// Benchmarks record this so throughput numbers name the path they
/// measured.
pub fn batch_path() -> &'static str {
    if rayon::current_num_threads() <= 1 {
        "serial"
    } else {
        "parallel"
    }
}

/// Solve every instance with proposer-proposing Gale–Shapley, fanning the
/// batch across the rayon pool with one reusable [`GsWorkspace`] per
/// worker thread.
///
/// Output order matches input order, and each outcome equals the one
/// `gale_shapley` would produce for that instance.
///
/// ```
/// use kmatch_parallel::solve_batch;
/// use kmatch_prefs::gen::uniform::uniform_bipartite;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let batch: Vec<_> = (0..32).map(|_| uniform_bipartite(16, &mut rng)).collect();
/// let outcomes = solve_batch(&batch);
/// assert_eq!(outcomes.len(), 32);
/// ```
pub fn solve_batch<P>(instances: &[P]) -> Vec<GsOutcome>
where
    P: PrefOracle + Sync,
{
    if batch_path() == "serial" {
        let mut ws = GsWorkspace::new();
        return instances.iter().map(|inst| ws.solve(inst)).collect();
    }
    instances
        .par_iter()
        .map_init(GsWorkspace::new, |ws, inst| ws.solve(inst))
        .collect()
}

/// [`solve_batch`] with sharded metrics and per-solve wall timing.
///
/// Every worker solves a contiguous chunk of the batch through its own
/// [`GsWorkspace`] **and** its own thread-private [`SolverMetrics`] shard —
/// the hot path performs plain `u64` increments, no atomics, no locks.
/// Each shard is absorbed into `registry` exactly once, when its chunk
/// completes. Per-solve wall time is sampled from the injected `clock`
/// here at the front-end, keeping the engine clock-free.
///
/// Output order matches input order and each outcome equals
/// [`solve_batch`]'s (the metered engine instantiation runs the identical
/// round schedule).
pub fn solve_batch_metered<P, C>(
    instances: &[P],
    registry: &BatchRegistry,
    clock: &C,
) -> Vec<GsOutcome>
where
    P: PrefOracle + Sync,
    C: Clock + Sync,
{
    let len = instances.len();
    if len == 0 {
        return Vec::new();
    }
    if batch_path() == "serial" {
        let mut ws = GsWorkspace::new();
        let mut shard = SolverMetrics::new();
        let outs: Vec<GsOutcome> = instances
            .iter()
            .map(|inst| {
                let t0 = clock.now_ns();
                let out = ws.solve_metered(inst, &mut shard);
                shard.solve_ns(clock.now_ns().saturating_sub(t0));
                out
            })
            .collect();
        registry.absorb(shard);
        return outs;
    }
    let threads = rayon::current_num_threads().clamp(1, len);
    let chunk = len.div_ceil(threads);
    let chunks = len.div_ceil(chunk);
    let per_chunk: Vec<Vec<GsOutcome>> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(len);
            let mut ws = GsWorkspace::new();
            let mut shard = SolverMetrics::new();
            let outs: Vec<GsOutcome> = instances[lo..hi]
                .iter()
                .map(|inst| {
                    let t0 = clock.now_ns();
                    let out = ws.solve_metered(inst, &mut shard);
                    shard.solve_ns(clock.now_ns().saturating_sub(t0));
                    out
                })
                .collect();
            registry.absorb(shard);
            outs
        })
        .collect();
    per_chunk.into_iter().flatten().collect()
}

/// [`solve_batch_metered`] that additionally records a span timeline per
/// worker chunk.
///
/// Each chunk solves through its own [`FlightRecorder`] of
/// `flight_capacity` events (preallocated before the chunk's first solve;
/// recording never allocates), wrapping the whole chunk in a
/// `batch.chunk` span whose arg is the chunk index. Flight recorders are
/// phase-level by design (`SpanSink::FINE = false`): the tracks carry
/// `batch.chunk` and one `gs.solve` span per instance, never the
/// fine-grained `gs.round` spans — that is what keeps the traced batch
/// within a few percent of the plain one (the `trace_overhead` row of
/// `results/REPORT_gs.json` pins the measured figure). The returned
/// [`ChunkTrace`]s are ordered by chunk index and plug straight into
/// `kmatch_trace::TraceTrack::workers` for a thread-track-per-worker
/// Chrome trace. Outcomes are identical to [`solve_batch`]'s.
pub fn solve_batch_traced<P, C>(
    instances: &[P],
    registry: &BatchRegistry,
    clock: &C,
    flight_capacity: usize,
) -> (Vec<GsOutcome>, Vec<ChunkTrace>)
where
    P: PrefOracle + Sync,
    C: Clock + Sync,
{
    let len = instances.len();
    if len == 0 {
        return (Vec::new(), Vec::new());
    }
    let solve_chunk = |c: usize, chunk_insts: &[P]| {
        let mut ws = GsWorkspace::new();
        let mut shard = SolverMetrics::new();
        let mut rec = FlightRecorder::new(clock, flight_capacity);
        rec.begin(span::BATCH_CHUNK, c as u64);
        let outs: Vec<GsOutcome> = chunk_insts
            .iter()
            .map(|inst| {
                let t0 = clock.now_ns();
                let out = ws.solve_spanned(inst, &mut shard, &mut rec);
                shard.solve_ns(clock.now_ns().saturating_sub(t0));
                out
            })
            .collect();
        rec.end(span::BATCH_CHUNK);
        registry.absorb(shard);
        let trace = ChunkTrace {
            worker: c,
            dropped: rec.dropped(),
            events: rec.events(),
        };
        (outs, trace)
    };
    if batch_path() == "serial" {
        let (outs, trace) = solve_chunk(0, instances);
        return (outs, vec![trace]);
    }
    let threads = rayon::current_num_threads().clamp(1, len);
    let chunk = len.div_ceil(threads);
    let chunks = len.div_ceil(chunk);
    let per_chunk: Vec<(Vec<GsOutcome>, ChunkTrace)> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(len);
            solve_chunk(c, &instances[lo..hi])
        })
        .collect();
    let mut outs = Vec::with_capacity(len);
    let mut traces = Vec::with_capacity(chunks);
    for (chunk_outs, trace) in per_chunk {
        outs.extend(chunk_outs);
        traces.push(trace);
    }
    (outs, traces)
}

/// Sum the instrumentation counters of a batch: total proposals and the
/// maximum round count (the batch's PRAM-style critical path).
pub fn batch_stats(outcomes: &[GsOutcome]) -> GsStats {
    GsStats {
        proposals: outcomes.iter().map(|o| o.stats.proposals).sum(),
        rounds: outcomes.iter().map(|o| o.stats.rounds).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_gs::gale_shapley;
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use kmatch_prefs::BipartiteInstance;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn batch_equals_serial() {
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let batch: Vec<BipartiteInstance> =
            (0..200).map(|_| uniform_bipartite(30, &mut rng)).collect();
        let par = solve_batch(&batch);
        assert_eq!(par.len(), batch.len());
        for (inst, out) in batch.iter().zip(&par) {
            let seq = gale_shapley(inst);
            assert_eq!(out.matching, seq.matching);
            assert_eq!(out.stats, seq.stats);
        }
    }

    #[test]
    fn mixed_sizes_do_not_leak_workspace_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let sizes = [40usize, 1, 17, 64, 3, 64, 2, 33];
        let batch: Vec<BipartiteInstance> = sizes
            .iter()
            .cycle()
            .take(64)
            .map(|&n| uniform_bipartite(n, &mut rng))
            .collect();
        let par = solve_batch(&batch);
        for (inst, out) in batch.iter().zip(&par) {
            assert_eq!(out.matching, gale_shapley(inst).matching);
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let empty: Vec<BipartiteInstance> = Vec::new();
        assert!(solve_batch(&empty).is_empty());

        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let one = vec![uniform_bipartite(10, &mut rng)];
        let out = solve_batch(&one);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].matching, gale_shapley(&one[0]).matching);
    }

    #[test]
    fn metered_batch_equals_plain_and_shards_merge() {
        use kmatch_obs::{BatchRegistry, ManualClock};
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let batch: Vec<BipartiteInstance> =
            (0..120).map(|_| uniform_bipartite(24, &mut rng)).collect();
        let registry = BatchRegistry::new();
        let clock = ManualClock::new();
        let metered = solve_batch_metered(&batch, &registry, &clock);
        let plain = solve_batch(&batch);
        assert_eq!(metered.len(), plain.len());
        for (a, b) in metered.iter().zip(&plain) {
            assert_eq!(a.matching, b.matching);
            assert_eq!(a.stats, b.stats);
        }
        // One shard per worker chunk, not per solve.
        let shards = registry.shards_absorbed();
        assert!(shards >= 1 && shards <= rayon::current_num_threads() as u64);
        let merged = registry.take();
        assert_eq!(merged.solves, 120);
        assert_eq!(
            merged.proposals,
            plain.iter().map(|o| o.stats.proposals).sum::<u64>()
        );
        assert_eq!(merged.solve_wall_ns.count(), 120);
        assert_eq!(registry.shards_absorbed(), 0, "take() resets the count");
    }

    #[test]
    fn metered_empty_batch_absorbs_nothing() {
        use kmatch_obs::{BatchRegistry, ManualClock};
        let empty: Vec<BipartiteInstance> = Vec::new();
        let registry = BatchRegistry::new();
        assert!(solve_batch_metered(&empty, &registry, &ManualClock::new()).is_empty());
        assert_eq!(registry.shards_absorbed(), 0);
    }

    #[test]
    fn batch_stats_aggregates() {
        let mut rng = ChaCha8Rng::seed_from_u64(54);
        let batch: Vec<BipartiteInstance> =
            (0..10).map(|_| uniform_bipartite(12, &mut rng)).collect();
        let out = solve_batch(&batch);
        let agg = batch_stats(&out);
        assert_eq!(
            agg.proposals,
            out.iter().map(|o| o.stats.proposals).sum::<u64>()
        );
        assert!(agg.rounds >= out[0].stats.rounds);
        assert_eq!(batch_stats(&[]).rounds, 0);
    }
}
