//! Batch throughput front-end: solve many independent bipartite instances
//! across the rayon pool.
//!
//! Throughput-oriented callers (parameter sweeps, Monte-Carlo experiments,
//! the `bench_throughput` benchmark) solve thousands of instances whose
//! only relationship is that they arrive together. Each solve is
//! independent, so the batch is embarrassingly parallel; the interesting
//! part is keeping the per-solve constant factor down. [`solve_batch`]
//! does that by giving every worker thread one [`GsWorkspace`] via
//! `map_init`, so scratch buffers are allocated once per thread and reused
//! for every instance the thread processes — the per-instance allocations
//! are exactly the two partner arrays owned by each returned matching.
//!
//! Results are returned in input order and are identical to calling
//! [`kmatch_gs::gale_shapley`] on each instance serially (GS is
//! deterministic and instances share no state).

use kmatch_gs::{GsOutcome, GsStats, GsWorkspace};
use kmatch_prefs::BipartitePrefs;
use rayon::prelude::*;

/// Solve every instance with proposer-proposing Gale–Shapley, fanning the
/// batch across the rayon pool with one reusable [`GsWorkspace`] per
/// worker thread.
///
/// Output order matches input order, and each outcome equals the one
/// `gale_shapley` would produce for that instance.
///
/// ```
/// use kmatch_parallel::solve_batch;
/// use kmatch_prefs::gen::uniform::uniform_bipartite;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let batch: Vec<_> = (0..32).map(|_| uniform_bipartite(16, &mut rng)).collect();
/// let outcomes = solve_batch(&batch);
/// assert_eq!(outcomes.len(), 32);
/// ```
pub fn solve_batch<P>(instances: &[P]) -> Vec<GsOutcome>
where
    P: BipartitePrefs + Sync,
{
    instances
        .par_iter()
        .map_init(GsWorkspace::new, |ws, inst| ws.solve(inst))
        .collect()
}

/// Sum the instrumentation counters of a batch: total proposals and the
/// maximum round count (the batch's PRAM-style critical path).
pub fn batch_stats(outcomes: &[GsOutcome]) -> GsStats {
    GsStats {
        proposals: outcomes.iter().map(|o| o.stats.proposals).sum(),
        rounds: outcomes.iter().map(|o| o.stats.rounds).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_gs::gale_shapley;
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use kmatch_prefs::BipartiteInstance;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn batch_equals_serial() {
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let batch: Vec<BipartiteInstance> =
            (0..200).map(|_| uniform_bipartite(30, &mut rng)).collect();
        let par = solve_batch(&batch);
        assert_eq!(par.len(), batch.len());
        for (inst, out) in batch.iter().zip(&par) {
            let seq = gale_shapley(inst);
            assert_eq!(out.matching, seq.matching);
            assert_eq!(out.stats, seq.stats);
        }
    }

    #[test]
    fn mixed_sizes_do_not_leak_workspace_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let sizes = [40usize, 1, 17, 64, 3, 64, 2, 33];
        let batch: Vec<BipartiteInstance> = sizes
            .iter()
            .cycle()
            .take(64)
            .map(|&n| uniform_bipartite(n, &mut rng))
            .collect();
        let par = solve_batch(&batch);
        for (inst, out) in batch.iter().zip(&par) {
            assert_eq!(out.matching, gale_shapley(inst).matching);
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let empty: Vec<BipartiteInstance> = Vec::new();
        assert!(solve_batch(&empty).is_empty());

        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let one = vec![uniform_bipartite(10, &mut rng)];
        let out = solve_batch(&one);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].matching, gale_shapley(&one[0]).matching);
    }

    #[test]
    fn batch_stats_aggregates() {
        let mut rng = ChaCha8Rng::seed_from_u64(54);
        let batch: Vec<BipartiteInstance> =
            (0..10).map(|_| uniform_bipartite(12, &mut rng)).collect();
        let out = solve_batch(&batch);
        let agg = batch_stats(&out);
        assert_eq!(
            agg.proposals,
            out.iter().map(|o| o.stats.proposals).sum::<u64>()
        );
        assert!(agg.rounds >= out[0].stats.rounds);
        assert_eq!(batch_stats(&[]).rounds, 0);
    }
}
