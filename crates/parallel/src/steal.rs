//! Work-stealing chunk executor with deterministic reduction order and
//! per-worker straggler accounting.
//!
//! The batch front-ends ([`crate::batch`], [`crate::roommates`]) used to
//! fan a batch out as `len.div_ceil(threads)` static chunks — one per
//! worker, assigned up front. Two problems:
//!
//! 1. **Imbalance.** `div_ceil` rounds every chunk *up*, so the last
//!    chunk absorbs all the rounding slack: 10 instances on 4 threads
//!    became chunks of 3/3/3/1, and 9 on 4 became 3/3/3/0 — a worker
//!    with an empty or near-empty chunk idles while the others run a
//!    full share. [`ChunkPlan::balanced`] splits `len` into chunks whose
//!    sizes differ by **at most one**.
//! 2. **Stragglers.** Instance solve times vary (an unsolvable
//!    roommates instance exits phase 1 early; a adversarial GS instance
//!    runs Θ(n²) proposals), so equal-*count* chunks are not
//!    equal-*work* chunks. [`run_chunks`] oversubscribes the plan
//!    ([`OVERSUBSCRIPTION`]× more chunks than workers) and lets idle
//!    workers steal queued chunks from the back of a victim's deque.
//!
//! **Determinism.** Work stealing makes the chunk→worker assignment a
//! race, so everything observable must be a function of the *chunk*
//! alone, never the worker: callers give each chunk its own workspace,
//! metrics shard, and flight recorder, and [`run_chunks`] returns the
//! per-chunk results **in chunk-index order** regardless of which worker
//! ran what when. The differential suite in `tests/steal_determinism.rs`
//! pins byte-equality against the serial path across adversarial chunk
//! sizes and forced-steal schedules.
//!
//! **Straggler accounting.** Each worker splits its wall time into
//! `busy` (running chunks), `steal` (sweeping victim deques), and `idle`
//! (done, waiting at the join barrier for stragglers), and records
//! `exec.busy`/`exec.steal`/`exec.idle` spans on a per-*worker* trace
//! track (distinct from the deterministic per-*chunk* `batch.chunk`
//! timelines). The [`StealReport`] renders as the `straggler` section of
//! `kmatch.run_report/v1` via [`StealReport::straggler_section`].

use std::collections::VecDeque;
use std::sync::Mutex;

use kmatch_obs::{Clock, StragglerSection, StragglerWorker};
use kmatch_trace::{span, EventKind, TraceEvent};

/// How many chunks the plan creates per worker. Oversubscription is what
/// gives the stealing executor room to rebalance: with one chunk per
/// worker nothing is ever left to steal, and a straggler chunk pins its
/// worker for the whole batch. 4× keeps per-chunk overhead (one
/// workspace + one metrics shard per chunk) negligible while letting a
/// worker that drew cheap chunks take up to three quarters of a slow
/// peer's queue.
pub const OVERSUBSCRIPTION: usize = 4;

/// Execution policy for the batch front-ends: worker count and the
/// forced-steal stress mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Worker threads; `None` uses the rayon pool width
    /// (`rayon::current_num_threads()`). Values are clamped to the chunk
    /// count — extra workers would have nothing to do.
    pub threads: Option<usize>,
    /// Seed **all** chunks on worker 0's deque instead of round-robin,
    /// so every other worker must steal everything it runs. Maximizes
    /// steal-path coverage; the determinism suite runs under this mode
    /// to show the schedule cannot leak into results.
    pub force_steal: bool,
}

impl ExecPolicy {
    /// A policy with an explicit worker count (testing and the CLI
    /// `--threads` flag).
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy {
            threads: Some(threads),
            force_steal: false,
        }
    }

    /// The worker count this policy resolves to before chunk clamping.
    pub fn requested_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(rayon::current_num_threads)
            .max(1)
    }
}

/// A balanced partition of `0..len` into contiguous chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Half-open `(lo, hi)` index ranges, in order, covering `0..len`.
    pub spans: Vec<(usize, usize)>,
}

impl ChunkPlan {
    /// Split `len` items into `min(len, threads × OVERSUBSCRIPTION)`
    /// contiguous chunks whose sizes differ by at most one (the first
    /// `len % chunks` chunks take the extra item). A single-threaded
    /// plan is one chunk — chunking buys nothing without concurrency.
    pub fn balanced(len: usize, threads: usize) -> ChunkPlan {
        if len == 0 {
            return ChunkPlan { spans: Vec::new() };
        }
        let chunks = if threads <= 1 {
            1
        } else {
            len.min(threads * OVERSUBSCRIPTION)
        };
        let base = len / chunks;
        let rem = len % chunks;
        let mut spans = Vec::with_capacity(chunks);
        let mut lo = 0;
        for c in 0..chunks {
            let size = base + usize::from(c < rem);
            spans.push((lo, lo + size));
            lo += size;
        }
        debug_assert_eq!(lo, len);
        ChunkPlan { spans }
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the plan is empty (zero items).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Chunk sizes in chunk-index order (the run-report form).
    pub fn sizes(&self) -> Vec<u64> {
        self.spans.iter().map(|&(lo, hi)| (hi - lo) as u64).collect()
    }
}

/// One worker's straggler accounting: where its wall time went and how
/// many chunks it ran versus stole.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Time executing chunks.
    pub busy_ns: u64,
    /// Time sweeping victim deques (successful or failed).
    pub steal_ns: u64,
    /// Time between this worker running out of work and the slowest
    /// worker finishing (the join barrier).
    pub idle_ns: u64,
    /// Chunks executed (own + stolen).
    pub chunks_executed: u64,
    /// Of those, chunks popped from another worker's deque.
    pub chunks_stolen: u64,
}

/// Everything a stealing run reports besides the per-chunk results: the
/// plan it executed, per-worker accounting, and the per-worker
/// `exec.busy`/`exec.steal`/`exec.idle` span tracks.
#[derive(Debug, Clone)]
pub struct StealReport {
    /// Workers the run used (after clamping to the chunk count).
    pub threads: usize,
    /// Whether forced-steal seeding was active.
    pub forced_steal: bool,
    /// The chunk plan executed.
    pub plan: ChunkPlan,
    /// Per-worker accounting, indexed by worker.
    pub workers: Vec<WorkerReport>,
    /// Per-worker span timelines (busy/steal/idle), for the trace
    /// exporter's worker tracks. Indexed by worker.
    pub worker_tracks: Vec<Vec<TraceEvent>>,
    /// Wall time of the whole run, by the injected clock.
    pub wall_ns: u64,
}

impl StealReport {
    /// The `straggler` section of `kmatch.run_report/v1` for this run.
    pub fn straggler_section(&self) -> StragglerSection {
        StragglerSection {
            threads: self.threads as u64,
            forced_steal: self.forced_steal,
            chunk_sizes: self.plan.sizes(),
            workers: self
                .workers
                .iter()
                .map(|w| StragglerWorker {
                    worker: w.worker as u64,
                    busy_ns: w.busy_ns,
                    steal_ns: w.steal_ns,
                    idle_ns: w.idle_ns,
                    chunks_executed: w.chunks_executed,
                    chunks_stolen: w.chunks_stolen,
                })
                .collect(),
        }
    }

    /// Total chunks executed across workers (= the plan's chunk count).
    pub fn chunks_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.chunks_executed).sum()
    }

    /// Total chunks that moved between workers.
    pub fn chunks_stolen(&self) -> u64 {
        self.workers.iter().map(|w| w.chunks_stolen).sum()
    }
}

fn event(kind: EventKind, name: &'static str, ts_ns: u64, arg: u64) -> TraceEvent {
    TraceEvent {
        kind,
        name,
        ts_ns,
        arg,
    }
}

/// Run `work(chunk_index, (lo, hi))` for every chunk of `plan` across a
/// work-stealing pool of scoped threads, returning the results **in
/// chunk-index order** plus the [`StealReport`].
///
/// Each chunk is claimed exactly once: workers pop their own deque from
/// the front and steal from victims' backs; chunks are never re-queued,
/// so a full failed sweep of every deque means the run is draining its
/// last chunks and the worker exits to the join barrier. `work` must
/// derive its result from the chunk alone (own workspace, own shard) —
/// that is what makes the output independent of the steal schedule.
///
/// With one worker (or one chunk) the loop degenerates to an in-place
/// serial drain in chunk order — no threads are spawned, which is also
/// the deterministic reference the differential tests compare against.
pub fn run_chunks<R, C, F>(
    plan: &ChunkPlan,
    policy: &ExecPolicy,
    clock: &C,
    work: F,
) -> (Vec<R>, StealReport)
where
    R: Send,
    C: Clock + Sync,
    F: Fn(usize, (usize, usize)) -> R + Sync,
{
    let chunks = plan.len();
    let threads = policy.requested_threads().min(chunks.max(1));
    let start_ns = clock.now_ns();
    if chunks == 0 {
        return (
            Vec::new(),
            StealReport {
                threads,
                forced_steal: policy.force_steal,
                plan: plan.clone(),
                workers: vec![WorkerReport::default()],
                worker_tracks: vec![Vec::new()],
                wall_ns: 0,
            },
        );
    }

    // Per-worker deques of chunk indices. Round-robin seeding spreads
    // the (balanced) chunks evenly; forced-steal seeding front-loads
    // worker 0 so everyone else exercises the steal path.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let seed: VecDeque<usize> = (0..chunks)
                .filter(|c| {
                    if policy.force_steal {
                        w == 0
                    } else {
                        c % threads == w
                    }
                })
                .collect();
            Mutex::new(seed)
        })
        .collect();

    let work = &work;
    let run_worker = |w: usize| {
        let mut results: Vec<(usize, R)> = Vec::new();
        let mut rep = WorkerReport {
            worker: w,
            ..WorkerReport::default()
        };
        let mut track: Vec<TraceEvent> = Vec::new();
        let run_one = |c: usize,
                           rep: &mut WorkerReport,
                           track: &mut Vec<TraceEvent>,
                           results: &mut Vec<(usize, R)>| {
            let t0 = clock.now_ns();
            track.push(event(EventKind::Begin, span::EXEC_BUSY, t0, c as u64));
            let r = work(c, plan.spans[c]);
            let t1 = clock.now_ns();
            track.push(event(EventKind::End, span::EXEC_BUSY, t1, c as u64));
            rep.busy_ns += t1.saturating_sub(t0);
            rep.chunks_executed += 1;
            results.push((c, r));
        };
        loop {
            let own = deques[w].lock().expect("chunk deque poisoned").pop_front();
            if let Some(c) = own {
                run_one(c, &mut rep, &mut track, &mut results);
                continue;
            }
            // Own deque empty: sweep victims back-to-front. Chunks are
            // never re-queued, so a completely empty sweep means no
            // unclaimed work exists anywhere and the worker is done.
            let t0 = clock.now_ns();
            let mut found = None;
            for offset in 1..threads {
                let victim = (w + offset) % threads;
                if let Some(c) = deques[victim]
                    .lock()
                    .expect("chunk deque poisoned")
                    .pop_back()
                {
                    found = Some(c);
                    break;
                }
            }
            let t1 = clock.now_ns();
            rep.steal_ns += t1.saturating_sub(t0);
            match found {
                Some(c) => {
                    track.push(event(EventKind::Begin, span::EXEC_STEAL, t0, c as u64));
                    track.push(event(EventKind::End, span::EXEC_STEAL, t1, c as u64));
                    rep.chunks_stolen += 1;
                    run_one(c, &mut rep, &mut track, &mut results);
                }
                None => break,
            }
        }
        (results, rep, track, clock.now_ns())
    };

    // (slotted results, report, span track, exit timestamp) per worker.
    type WorkerRun<R> = (Vec<(usize, R)>, WorkerReport, Vec<TraceEvent>, u64);
    let mut per_worker: Vec<WorkerRun<R>> =
        if threads <= 1 {
            vec![run_worker(0)]
        } else {
            let run_worker = &run_worker;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| scope.spawn(move || run_worker(w)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("steal worker panicked"))
                    .collect()
            })
        };

    let end_ns = clock.now_ns();
    let wall_ns = end_ns.saturating_sub(start_ns);
    // Idle = the stretch between a worker running dry and the join
    // barrier releasing — the straggler signal. Computed here because a
    // worker cannot know when the *last* worker finishes.
    for (_, rep, track, exit_ns) in &mut per_worker {
        rep.idle_ns = end_ns.saturating_sub(*exit_ns);
        if rep.idle_ns > 0 {
            track.push(event(
                EventKind::Begin,
                span::EXEC_IDLE,
                *exit_ns,
                rep.worker as u64,
            ));
            track.push(event(EventKind::End, span::EXEC_IDLE, end_ns, rep.worker as u64));
        }
    }

    let mut slots: Vec<Option<R>> = (0..chunks).map(|_| None).collect();
    let mut workers = Vec::with_capacity(threads);
    let mut worker_tracks = Vec::with_capacity(threads);
    for (chunk_results, rep, track, _) in per_worker {
        for (c, r) in chunk_results {
            debug_assert!(slots[c].is_none(), "chunk {c} executed twice");
            slots[c] = Some(r);
        }
        workers.push(rep);
        worker_tracks.push(track);
    }
    let results: Vec<R> = slots
        .into_iter()
        .map(|r| r.expect("every chunk executed exactly once"))
        .collect();
    (
        results,
        StealReport {
            threads,
            forced_steal: policy.force_steal,
            plan: plan.clone(),
            workers,
            worker_tracks,
            wall_ns,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_obs::ManualClock;
    use kmatch_trace::check_well_formed;

    #[test]
    fn balanced_plan_sizes_differ_by_at_most_one() {
        for len in [0usize, 1, 2, 3, 9, 10, 16, 97, 1000] {
            for threads in [1usize, 2, 3, 4, 7, 16] {
                let plan = ChunkPlan::balanced(len, threads);
                if len == 0 {
                    assert!(plan.is_empty());
                    continue;
                }
                // Coverage: contiguous, in order, exactly 0..len.
                let mut next = 0;
                for &(lo, hi) in &plan.spans {
                    assert_eq!(lo, next);
                    assert!(hi > lo, "no empty chunks");
                    next = hi;
                }
                assert_eq!(next, len);
                let sizes = plan.sizes();
                let max = *sizes.iter().max().unwrap();
                let min = *sizes.iter().min().unwrap();
                assert!(
                    max - min <= 1,
                    "len={len} threads={threads}: sizes {sizes:?} not balanced"
                );
                let expected = if threads <= 1 {
                    1
                } else {
                    len.min(threads * OVERSUBSCRIPTION)
                };
                assert_eq!(plan.len(), expected);
            }
        }
    }

    #[test]
    fn div_ceil_tail_imbalance_is_gone() {
        // The motivating case: 9 items on 4 threads. The old
        // `div_ceil` fan-out made chunks of 3/3/3 with a worker idle;
        // 10 on 4 made 3/3/3/1. Balanced plans never have a chunk more
        // than one item larger than another.
        let plan = ChunkPlan::balanced(10, 4);
        let sizes = plan.sizes();
        assert!(
            sizes.iter().all(|&s| s == 1),
            "oversubscribed 10 items / 16 slots: {sizes:?}"
        );
        // Below the oversubscription ceiling the rounding slack spreads
        // instead of landing on the tail: 100 items on 8 threads is 32
        // chunks of 3/3/…/4, never 4/4/…/0.
        let plan = ChunkPlan::balanced(100, 8);
        let sizes = plan.sizes();
        assert_eq!(sizes.len(), 32);
        assert_eq!(sizes.iter().sum::<u64>(), 100);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4), "{sizes:?}");
    }

    #[test]
    fn results_come_back_in_chunk_index_order() {
        let clock = ManualClock::new();
        let plan = ChunkPlan::balanced(23, 2);
        for policy in [
            ExecPolicy::default(),
            ExecPolicy::with_threads(1),
            ExecPolicy::with_threads(3),
            ExecPolicy {
                threads: Some(3),
                force_steal: true,
            },
        ] {
            let (results, report) = run_chunks(&plan, &policy, &clock, |c, (lo, hi)| {
                (c, lo, hi)
            });
            assert_eq!(results.len(), plan.len());
            for (i, &(c, lo, hi)) in results.iter().enumerate() {
                assert_eq!(c, i);
                assert_eq!((lo, hi), plan.spans[i]);
            }
            assert_eq!(report.chunks_executed(), plan.len() as u64);
            assert_eq!(report.plan, plan);
        }
    }

    #[test]
    fn forced_steal_seeds_everything_on_worker_zero() {
        // With forced-steal seeding, any chunk a worker other than 0
        // executes must have been stolen.
        let clock = ManualClock::new();
        let plan = ChunkPlan::balanced(64, 4);
        let policy = ExecPolicy {
            threads: Some(4),
            force_steal: true,
        };
        let (_, report) = run_chunks(&plan, &policy, &clock, |_, _| ());
        assert_eq!(report.threads, 4);
        assert!(report.forced_steal);
        for w in &report.workers[1..] {
            assert_eq!(
                w.chunks_stolen, w.chunks_executed,
                "worker {} ran a chunk it never stole",
                w.worker
            );
        }
        assert_eq!(report.chunks_executed(), plan.len() as u64);
    }

    #[test]
    fn empty_plan_runs_nothing() {
        let clock = ManualClock::new();
        let plan = ChunkPlan::balanced(0, 4);
        let (results, report) = run_chunks(&plan, &ExecPolicy::default(), &clock, |_, _| 7u32);
        assert!(results.is_empty());
        assert_eq!(report.chunks_executed(), 0);
        assert_eq!(report.straggler_section().chunk_sizes, Vec::<u64>::new());
    }

    #[test]
    fn worker_tracks_are_well_formed_spans() {
        let clock = ManualClock::new();
        let plan = ChunkPlan::balanced(40, 3);
        let policy = ExecPolicy {
            threads: Some(3),
            force_steal: true,
        };
        let (_, report) = run_chunks(&plan, &policy, &clock, |_, _| ());
        assert_eq!(report.worker_tracks.len(), 3);
        for track in &report.worker_tracks {
            check_well_formed(track, false).expect("balanced begin/end per worker track");
        }
        // Every executed chunk shows up as exactly one exec.busy span
        // across the tracks.
        let busy_begins = report
            .worker_tracks
            .iter()
            .flatten()
            .filter(|e| e.name == span::EXEC_BUSY && e.kind == EventKind::Begin)
            .count();
        assert_eq!(busy_begins, plan.len());
    }

    #[test]
    fn straggler_section_mirrors_worker_reports() {
        let clock = ManualClock::new();
        let plan = ChunkPlan::balanced(10, 2);
        let (_, report) = run_chunks(
            &plan,
            &ExecPolicy::with_threads(2),
            &clock,
            |_, (lo, hi)| hi - lo,
        );
        let section = report.straggler_section();
        assert_eq!(section.threads, report.threads as u64);
        assert_eq!(section.chunk_sizes, plan.sizes());
        assert_eq!(section.workers.len(), report.workers.len());
        for (row, rep) in section.workers.iter().zip(&report.workers) {
            assert_eq!(row.worker, rep.worker as u64);
            assert_eq!(row.chunks_executed, rep.chunks_executed);
            assert_eq!(row.chunks_stolen, rep.chunks_stolen);
        }
    }
}
