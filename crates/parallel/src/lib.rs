//! # kmatch-parallel — parallel binding execution and PRAM cost models
//!
//! §IV-C of the paper: "pairwise matching in the original GS algorithm is
//! difficult to parallelize … However, parallelization at the binding tree
//! level is feasible." Two bindings can run concurrently when their gender
//! pairs are disjoint, so a parallel plan is an edge coloring of the
//! binding tree (see `kmatch_graph::schedule`).
//!
//! This crate provides:
//!
//! * [`executor`] — a real shared-memory executor on the rayon work-stealing
//!   pool: independent `GS(i, j)` bindings of each schedule round run
//!   concurrently. Its output is bit-identical to the sequential
//!   Algorithm 1 (GS is deterministic per edge and edges touch disjoint
//!   data), which the tests enforce.
//! * [`batch`] — a throughput front-end: [`solve_batch`] fans many
//!   independent bipartite instances across the pool, giving each worker
//!   thread one reusable `GsWorkspace` so the per-instance allocation cost
//!   is just the returned matchings.
//! * [`roommates`] — the same front-end for Irving's stable-roommates
//!   solver (one reusable `RoommatesWorkspace` per worker), feeding the
//!   solvability sweeps.
//! * [`steal`] — the work-stealing chunk executor under the batch
//!   front-ends: balanced chunk plans (no `div_ceil` tail imbalance),
//!   deque-based stealing with oversubscription, deterministic
//!   chunk-index reduction order, and per-worker straggler accounting
//!   rendered as the `straggler` section of `kmatch.run_report/v1`.
//! * [`pram`] — the paper's own cost model, implemented as an explicit
//!   simulator: EREW round accounting reproducing Corollary 1
//!   (`≤ Δ·n²` iterations with `k − 1` processors), the 2-round even–odd
//!   path schedule of Corollary 2 / Fig. 4, and the `⌈log₂ Δ⌉`-round data
//!   replication that lets EREW emulate CREW.
//!
//! The host machine for this reproduction has a single core, so wall-clock
//! speedups are reported by the PRAM model (the paper's metric) while the
//! rayon executor is validated for correctness and scales on real
//! multicore hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cached;
pub mod executor;
pub mod pram;
pub mod roommates;
pub mod scratch;
pub mod steal;

pub use batch::{
    batch_path, batch_stats, solve_batch, solve_batch_metered, solve_batch_metered_with,
    solve_batch_traced, solve_batch_traced_with, ChunkTrace,
};
pub use cached::{solve_batch_cached, CachedBatchOutcome};
pub use executor::{
    parallel_bind, parallel_bind_metered, parallel_bind_scheduled, ParallelBindingOutcome,
};
pub use pram::{
    crew_cost, erew_cost, replication_rounds, rounds_consistent_with_pram, PramCost, PramModel,
};
pub use scratch::WorkerScratch;
pub use steal::{
    run_chunks, ChunkPlan, ExecPolicy, StealReport, WorkerReport, OVERSUBSCRIPTION,
};
