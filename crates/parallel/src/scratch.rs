//! Per-worker scratch buffers shared by every parallel front-end.
//!
//! Each worker thread owns one [`WorkerScratch`] for the duration of a
//! job: the GS solver workspace plus a CSR arena that snapshots strided
//! preference views (e.g. [`kmatch_prefs::KPartitePairView`]) into
//! contiguous rows before solving. Both only grow, so a thread allocates
//! scratch once and reuses it for every edge or instance it processes.
//! The binding executor, the batch front-ends, and the incremental batch
//! path all share this one type instead of growing private copies.

use kmatch_gs::GsWorkspace;
use kmatch_prefs::CsrPrefs;

/// Reusable per-worker solver state: a [`GsWorkspace`] and a [`CsrPrefs`]
/// snapshot arena.
#[derive(Default)]
pub struct WorkerScratch {
    /// The zero-allocation GS engine workspace.
    pub ws: GsWorkspace,
    /// CSR arena for snapshotting strided views into contiguous rows.
    pub csr: CsrPrefs,
}

impl WorkerScratch {
    /// Fresh scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }
}
