//! Batch throughput front-end for the stable-roommates solver.
//!
//! The solvability experiments behind `roommates_solvability.csv` (and the
//! Mertens-style scaling studies the ROADMAP aims at) need thousands of
//! independent Irving solves per data point. Like [`crate::batch`] for
//! Gale–Shapley, [`solve_batch`] fans the instances across the
//! work-stealing chunk executor ([`crate::steal`]) with one reusable
//! [`RoommatesWorkspace`] per chunk, so the steady-state cost per
//! instance is the solve itself — the only per-instance allocation is the
//! partner array owned by each stable matching (unsolvable instances
//! allocate nothing at all). Roommates batches are where stealing earns
//! its keep: an unsolvable instance aborts in phase 1 while a solvable
//! one runs full rotation elimination, so equal-count chunks are far from
//! equal-work chunks.
//!
//! Results are returned in input order and are identical to calling
//! [`kmatch_roommates::solve`] on each instance serially (Irving's
//! algorithm with a fixed seed policy is deterministic and instances share
//! no state).

use kmatch_obs::{BatchRegistry, Clock, Metrics, SolverMetrics};
use kmatch_prefs::RoommatesPrefs;
use kmatch_roommates::{RoommatesOutcome, RoommatesWorkspace};
use kmatch_trace::{span, FlightRecorder, SpanSink};

use crate::batch::ChunkTrace;
use crate::steal::{run_chunks, ChunkPlan, ExecPolicy, StealReport};

/// Solve every roommates instance with the zero-allocation Irving fast
/// path, fanning the batch across the work-stealing executor with one
/// reusable [`RoommatesWorkspace`] per chunk.
///
/// Output order matches input order, and each outcome equals the one
/// [`kmatch_roommates::solve`] would produce for that instance.
///
/// ```
/// use kmatch_parallel::roommates::solve_batch;
/// use kmatch_prefs::gen::uniform::uniform_roommates;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let batch: Vec<_> = (0..32).map(|_| uniform_roommates(16, &mut rng)).collect();
/// let outcomes = solve_batch(&batch);
/// assert_eq!(outcomes.len(), 32);
/// ```
pub fn solve_batch<R: RoommatesPrefs + Sync>(instances: &[R]) -> Vec<RoommatesOutcome> {
    if crate::batch::batch_path() == "serial" {
        let mut ws = RoommatesWorkspace::new();
        return instances.iter().map(|inst| ws.solve(inst)).collect();
    }
    struct NullClock;
    impl Clock for NullClock {
        #[inline]
        fn now_ns(&self) -> u64 {
            0
        }
    }
    let plan = ChunkPlan::balanced(instances.len(), ExecPolicy::default().requested_threads());
    let (per_chunk, _) = run_chunks(&plan, &ExecPolicy::default(), &NullClock, |_, (lo, hi)| {
        let mut ws = RoommatesWorkspace::new();
        instances[lo..hi]
            .iter()
            .map(|inst| ws.solve(inst))
            .collect::<Vec<RoommatesOutcome>>()
    });
    per_chunk.into_iter().flatten().collect()
}

/// [`solve_batch`] with sharded metrics and per-solve wall timing.
///
/// Mirrors [`crate::batch::solve_batch_metered`]: each chunk solves
/// through its own [`RoommatesWorkspace`] and chunk-private
/// [`SolverMetrics`] shard (no atomics or locks on the hot path); shards
/// are absorbed into `registry` in chunk-index order after the run, so
/// registry state is independent of the steal schedule; per-solve wall
/// time is sampled from the injected `clock` at this front-end so the
/// engine stays clock-free.
pub fn solve_batch_metered<R: RoommatesPrefs + Sync, C: Clock + Sync>(
    instances: &[R],
    registry: &BatchRegistry,
    clock: &C,
) -> Vec<RoommatesOutcome> {
    solve_batch_metered_with(instances, registry, clock, &ExecPolicy::default()).0
}

/// [`solve_batch_metered`] under an explicit [`ExecPolicy`], returning
/// the executor's [`StealReport`] alongside the outcomes.
pub fn solve_batch_metered_with<R: RoommatesPrefs + Sync, C: Clock + Sync>(
    instances: &[R],
    registry: &BatchRegistry,
    clock: &C,
    policy: &ExecPolicy,
) -> (Vec<RoommatesOutcome>, StealReport) {
    let plan = ChunkPlan::balanced(instances.len(), policy.requested_threads());
    let (per_chunk, report) = run_chunks(&plan, policy, clock, |_, (lo, hi)| {
        let mut ws = RoommatesWorkspace::new();
        let mut shard = SolverMetrics::new();
        let outs: Vec<RoommatesOutcome> = instances[lo..hi]
            .iter()
            .map(|inst| {
                let t0 = clock.now_ns();
                let out = ws.solve_metered(inst, &mut shard);
                shard.solve_ns(clock.now_ns().saturating_sub(t0));
                out
            })
            .collect();
        (outs, shard)
    });
    let mut outs = Vec::with_capacity(instances.len());
    for (chunk_outs, shard) in per_chunk {
        outs.extend(chunk_outs);
        registry.absorb(shard);
    }
    (outs, report)
}

/// [`solve_batch_metered`] that additionally records a span timeline per
/// chunk — the roommates mirror of
/// [`crate::batch::solve_batch_traced`]. Each chunk's [`FlightRecorder`]
/// (capacity `flight_capacity`, preallocated, never allocating while
/// recording) wraps the chunk in a `batch.chunk` span around the
/// per-solve `irving.*` spans; the returned [`ChunkTrace`]s feed
/// `kmatch_trace::TraceTrack::workers` directly.
pub fn solve_batch_traced<R: RoommatesPrefs + Sync, C: Clock + Sync>(
    instances: &[R],
    registry: &BatchRegistry,
    clock: &C,
    flight_capacity: usize,
) -> (Vec<RoommatesOutcome>, Vec<ChunkTrace>) {
    let (outs, traces, _) =
        solve_batch_traced_with(instances, registry, clock, flight_capacity, &ExecPolicy::default());
    (outs, traces)
}

/// [`solve_batch_traced`] under an explicit [`ExecPolicy`], returning the
/// executor's [`StealReport`] as well.
pub fn solve_batch_traced_with<R: RoommatesPrefs + Sync, C: Clock + Sync>(
    instances: &[R],
    registry: &BatchRegistry,
    clock: &C,
    flight_capacity: usize,
    policy: &ExecPolicy,
) -> (Vec<RoommatesOutcome>, Vec<ChunkTrace>, StealReport) {
    let len = instances.len();
    if len == 0 {
        let plan = ChunkPlan::balanced(0, policy.requested_threads());
        let (_, report) = run_chunks(&plan, policy, clock, |_, _| ());
        return (Vec::new(), Vec::new(), report);
    }
    let plan = ChunkPlan::balanced(len, policy.requested_threads());
    let (per_chunk, report) = run_chunks(&plan, policy, clock, |c, (lo, hi)| {
        let mut ws = RoommatesWorkspace::new();
        let mut shard = SolverMetrics::new();
        let mut rec = FlightRecorder::new(clock, flight_capacity);
        rec.begin(span::BATCH_CHUNK, c as u64);
        let outs: Vec<RoommatesOutcome> = instances[lo..hi]
            .iter()
            .map(|inst| {
                let t0 = clock.now_ns();
                let out = ws.solve_spanned(inst, &mut shard, &mut rec);
                shard.solve_ns(clock.now_ns().saturating_sub(t0));
                out
            })
            .collect();
        rec.end(span::BATCH_CHUNK);
        let trace = ChunkTrace {
            worker: c,
            dropped: rec.dropped(),
            events: rec.events(),
        };
        (outs, shard, trace)
    });
    let mut outs = Vec::with_capacity(len);
    let mut traces = Vec::with_capacity(plan.len());
    for (chunk_outs, shard, trace) in per_chunk {
        outs.extend(chunk_outs);
        registry.absorb(shard);
        traces.push(trace);
    }
    (outs, traces, report)
}

/// Aggregate statistics of a solved roommates batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoommatesBatchStats {
    /// Number of instances that have a stable matching.
    pub solvable: usize,
    /// Total phase-1 proposals across the batch.
    pub proposals: u64,
    /// Total phase-2 rotations eliminated across the batch.
    pub rotations: u64,
}

/// Sum the instrumentation counters of a batch and count the solvable
/// instances (`solvable / outcomes.len()` is the solvability estimate the
/// sweeps report).
pub fn batch_stats(outcomes: &[RoommatesOutcome]) -> RoommatesBatchStats {
    let mut agg = RoommatesBatchStats::default();
    for out in outcomes {
        let stats = out.stats();
        agg.solvable += usize::from(out.is_stable());
        agg.proposals += stats.proposals;
        agg.rotations += u64::from(stats.rotations);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_prefs::gen::uniform::uniform_roommates;
    use kmatch_prefs::RoommatesInstance;
    use kmatch_roommates::solve;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn batch_equals_serial() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let batch: Vec<RoommatesInstance> =
            (0..200).map(|_| uniform_roommates(20, &mut rng)).collect();
        let par = solve_batch(&batch);
        assert_eq!(par.len(), batch.len());
        for (inst, out) in batch.iter().zip(&par) {
            let seq = solve(inst);
            assert_eq!(out.matching(), seq.matching());
            assert_eq!(out.stats(), seq.stats());
        }
    }

    #[test]
    fn mixed_sizes_do_not_leak_workspace_state() {
        let mut rng = ChaCha8Rng::seed_from_u64(62);
        let sizes = [30usize, 2, 15, 48, 3, 48, 2, 25];
        let batch: Vec<RoommatesInstance> = sizes
            .iter()
            .cycle()
            .take(64)
            .map(|&n| uniform_roommates(n, &mut rng))
            .collect();
        let par = solve_batch(&batch);
        for (inst, out) in batch.iter().zip(&par) {
            let seq = solve(inst);
            assert_eq!(out.matching(), seq.matching());
            assert_eq!(out.stats(), seq.stats());
        }
    }

    #[test]
    fn metered_batch_equals_plain_and_counts_solvability() {
        use kmatch_obs::{BatchRegistry, ManualClock};
        let mut rng = ChaCha8Rng::seed_from_u64(64);
        let batch: Vec<RoommatesInstance> =
            (0..100).map(|_| uniform_roommates(12, &mut rng)).collect();
        let registry = BatchRegistry::new();
        let metered = solve_batch_metered(&batch, &registry, &ManualClock::new());
        let plain = solve_batch(&batch);
        for (a, b) in metered.iter().zip(&plain) {
            assert_eq!(a.matching(), b.matching());
            assert_eq!(a.stats(), b.stats());
        }
        let agg = batch_stats(&plain);
        let merged = registry.take();
        assert_eq!(merged.solves, 100);
        assert_eq!(merged.solvable, agg.solvable as u64);
        assert_eq!(merged.unsolvable, 100 - agg.solvable as u64);
        assert_eq!(merged.proposals, agg.proposals);
        assert_eq!(merged.phase2_rotations, agg.rotations);
        assert_eq!(merged.solve_wall_ns.count(), 100);
    }

    #[test]
    fn forced_steal_matches_serial_reference() {
        use kmatch_obs::{BatchRegistry, ManualClock};
        let mut rng = ChaCha8Rng::seed_from_u64(65);
        let batch: Vec<RoommatesInstance> =
            (0..80).map(|_| uniform_roommates(14, &mut rng)).collect();
        let registry = BatchRegistry::new();
        let policy = ExecPolicy {
            threads: Some(4),
            force_steal: true,
        };
        let (outs, report) =
            solve_batch_metered_with(&batch, &registry, &ManualClock::new(), &policy);
        assert_eq!(report.threads, 4);
        assert_eq!(report.chunks_executed(), report.plan.len() as u64);
        for (inst, out) in batch.iter().zip(&outs) {
            let seq = solve(inst);
            assert_eq!(out.matching(), seq.matching());
            assert_eq!(out.stats(), seq.stats());
        }
        // Registry absorbed one shard per chunk, in chunk order.
        assert_eq!(registry.shards_absorbed(), report.plan.len() as u64);
        assert_eq!(registry.take().solves, 80);
    }

    #[test]
    fn stats_count_solvable_and_counters() {
        let mut rng = ChaCha8Rng::seed_from_u64(63);
        let batch: Vec<RoommatesInstance> =
            (0..40).map(|_| uniform_roommates(10, &mut rng)).collect();
        let out = solve_batch(&batch);
        let agg = batch_stats(&out);
        assert_eq!(agg.solvable, out.iter().filter(|o| o.is_stable()).count());
        assert_eq!(
            agg.proposals,
            out.iter().map(|o| o.stats().proposals).sum::<u64>()
        );
        assert!(agg.solvable > 0, "most even instances are solvable");
        assert_eq!(batch_stats(&[]), RoommatesBatchStats::default());
    }
}
