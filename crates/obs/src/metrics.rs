//! The metric hook set and its two instantiations.
//!
//! [`Metrics`] mirrors the `Tracer`/`NoTrace` discipline of the engine
//! crates: solvers take a `&mut M: Metrics` and the compiler monomorphizes
//! the hot loop once per implementation. [`NoMetrics`] is the unit impl —
//! every hook is an empty `#[inline(always)]` body, so the untraced,
//! unmetered instantiation (what `GsWorkspace::solve` and
//! `RoommatesWorkspace::solve` compile to) is bit-for-bit the PR 1/2 fast
//! path. [`SolverMetrics`] is the production impl: plain `u64` counters
//! and [`Log2Histogram`]s, increments only — no locks, no atomics, no
//! allocation, measured < 5% overhead on the n = 2000 batch workload.

use crate::histogram::Log2Histogram;
use serde::Value;

/// Compile-time metric hook set.
///
/// Engines call the counter hooks from their hot loops; front-ends (batch
/// drivers, the CLI, benches) call the per-solve hooks — including
/// [`Metrics::solve_ns`], which is fed from a [`crate::Clock`] *outside*
/// the engine so engines stay clock-free.
pub trait Metrics {
    /// Whether hooks observe anything (lets callers skip setup work, the
    /// way `Tracer::ENABLED` gates removed-entry collection).
    const ENABLED: bool;

    // ---- engine hot-loop hooks ----
    /// One proposal was issued (GS proposal or Irving phase-1 proposal).
    fn proposal(&mut self);
    /// A proposer was rejected (GS: pushed back to the free list).
    fn rejection(&mut self);
    /// A responder traded up, displacing its provisional holder (GS), or a
    /// participant's held proposal was displaced (Irving phase 1).
    fn holder_swap(&mut self);
    /// One synchronous GS proposal round completed.
    fn round(&mut self);
    /// An Irving phase-1 truncation tightened a rank threshold.
    fn phase1_truncation(&mut self);
    /// An Irving phase-2 rotation was eliminated.
    fn phase2_rotation(&mut self);

    // ---- per-solve hooks (front-end and engine epilogue) ----
    /// A workspace was prepared for a solve; `fresh` means its participant
    /// tables had to grow (allocate) rather than being reused.
    fn workspace(&mut self, fresh: bool);
    /// A solve finished: whether a matching exists and how many proposals
    /// it took.
    fn solve_done(&mut self, solvable: bool, proposals: u64);
    /// Wall time of one solve, measured by the front-end's clock.
    fn solve_ns(&mut self, ns: u64);

    // ---- k-ary binding hooks ----
    /// One binding edge `GS(i, j)` completed with this many proposals.
    fn binding_edge(&mut self, proposals: u64);
    /// A full binding run finished with `total` proposals against the
    /// Theorem-3 bound `(k−1)·n²`.
    fn theorem3_check(&mut self, total: u64, bound: u64);

    // ---- incremental-solving hooks ----
    /// The solve cache was consulted; `hit` means a stored matching was
    /// returned without solving.
    fn cache_lookup(&mut self, hit: bool) {
        let _ = hit;
    }
    /// A cached matching was evicted to make room.
    fn cache_eviction(&mut self) {}
    /// An incremental rebind classified one binding edge; `dirty` means
    /// its preference rows changed and it was re-solved (clean edges reuse
    /// the previous pairs and execute zero proposals).
    fn binding_edge_reuse(&mut self, dirty: bool) {
        let _ = dirty;
    }
    /// A warm-start re-solve ran, re-freeing `refreed` proposers instead
    /// of all n.
    fn warm_resolve(&mut self, refreed: u64) {
        let _ = refreed;
    }
    /// A warm-start request could not reuse prior state and fell back to a
    /// cold solve.
    fn warm_fallback(&mut self) {}
}

/// Zero-sized metrics sink: every hook is erased at compile time. The
/// default solver entry points use this, so enabling the metrics layer
/// costs nothing unless a metered entry point is called.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMetrics;

impl Metrics for NoMetrics {
    const ENABLED: bool = false;
    #[inline(always)]
    fn proposal(&mut self) {}
    #[inline(always)]
    fn rejection(&mut self) {}
    #[inline(always)]
    fn holder_swap(&mut self) {}
    #[inline(always)]
    fn round(&mut self) {}
    #[inline(always)]
    fn phase1_truncation(&mut self) {}
    #[inline(always)]
    fn phase2_rotation(&mut self) {}
    #[inline(always)]
    fn workspace(&mut self, _fresh: bool) {}
    #[inline(always)]
    fn solve_done(&mut self, _solvable: bool, _proposals: u64) {}
    #[inline(always)]
    fn solve_ns(&mut self, _ns: u64) {}
    #[inline(always)]
    fn binding_edge(&mut self, _proposals: u64) {}
    #[inline(always)]
    fn theorem3_check(&mut self, _total: u64, _bound: u64) {}
}

/// Always-on production metrics: plain counters plus log₂ histograms.
///
/// A `SolverMetrics` is one shard — thread-private in the batch
/// front-ends, merged into a [`crate::BatchRegistry`] when the batch
/// completes. All fields are public so reports and tests can read them
/// directly; [`SolverMetrics::merge`] is element-wise addition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverMetrics {
    /// Solves completed.
    pub solves: u64,
    /// Solves that produced a matching.
    pub solvable: u64,
    /// Solves with no stable matching.
    pub unsolvable: u64,
    /// Proposals issued (the paper's "iterations of the matching
    /// process"; Theorem 3 bounds these per binding run).
    pub proposals: u64,
    /// Rejections (GS proposers sent back to the free list).
    pub rejections: u64,
    /// Holder displacements (a responder trading up / a held proposal
    /// being displaced).
    pub holder_swaps: u64,
    /// Synchronous GS rounds — the PRAM cost unit of §IV-C.
    pub rounds: u64,
    /// Irving phase-1 threshold tightenings (each stands for a batch of
    /// implicit pair deletions the fast path never executes).
    pub phase1_truncations: u64,
    /// Irving phase-2 rotations eliminated.
    pub phase2_rotations: u64,
    /// Solves that reused already-grown workspace buffers.
    pub workspace_reused: u64,
    /// Solves that had to grow (allocate) workspace buffers.
    pub workspace_fresh: u64,
    /// Binding edges executed by the k-ary driver.
    pub binding_edges: u64,
    /// Theorem-3 bound checks performed (one per binding run).
    pub theorem3_checks: u64,
    /// Theorem-3 bound violations observed (must stay 0; a nonzero value
    /// falsifies the paper's bound or flags an engine bug).
    pub theorem3_violations: u64,
    /// Solve-cache lookups that returned a stored matching.
    pub cache_hits: u64,
    /// Solve-cache lookups that had to solve.
    pub cache_misses: u64,
    /// Cached matchings evicted to respect the capacity bound.
    pub cache_evictions: u64,
    /// Incremental-rebind edges whose preference rows changed (re-solved).
    pub edges_dirty: u64,
    /// Incremental-rebind edges reused verbatim (zero proposals).
    pub edges_clean: u64,
    /// Warm-start re-solves that reused prior engine state.
    pub warm_solves: u64,
    /// Warm-start requests that fell back to a cold solve.
    pub warm_fallbacks: u64,
    /// Proposers re-freed by warm-start re-solves (cold solves re-free
    /// all n; the warm path's advantage is keeping this small).
    pub refreed_proposers: u64,
    /// Proposals per solve.
    pub proposals_per_solve: Log2Histogram,
    /// Proposals per binding edge (the per-edge `n²` component of
    /// Theorem 3).
    pub proposals_per_edge: Log2Histogram,
    /// Per-solve wall time in nanoseconds (front-end clock).
    pub solve_wall_ns: Log2Histogram,
}

impl Metrics for SolverMetrics {
    const ENABLED: bool = true;
    #[inline(always)]
    fn proposal(&mut self) {
        self.proposals += 1;
    }
    #[inline(always)]
    fn rejection(&mut self) {
        self.rejections += 1;
    }
    #[inline(always)]
    fn holder_swap(&mut self) {
        self.holder_swaps += 1;
    }
    #[inline(always)]
    fn round(&mut self) {
        self.rounds += 1;
    }
    #[inline(always)]
    fn phase1_truncation(&mut self) {
        self.phase1_truncations += 1;
    }
    #[inline(always)]
    fn phase2_rotation(&mut self) {
        self.phase2_rotations += 1;
    }
    #[inline(always)]
    fn workspace(&mut self, fresh: bool) {
        if fresh {
            self.workspace_fresh += 1;
        } else {
            self.workspace_reused += 1;
        }
    }
    #[inline]
    fn solve_done(&mut self, solvable: bool, proposals: u64) {
        self.solves += 1;
        if solvable {
            self.solvable += 1;
        } else {
            self.unsolvable += 1;
        }
        self.proposals_per_solve.observe(proposals);
    }
    #[inline]
    fn solve_ns(&mut self, ns: u64) {
        self.solve_wall_ns.observe(ns);
    }
    #[inline]
    fn binding_edge(&mut self, proposals: u64) {
        self.binding_edges += 1;
        self.proposals_per_edge.observe(proposals);
    }
    #[inline]
    fn theorem3_check(&mut self, total: u64, bound: u64) {
        self.theorem3_checks += 1;
        if total > bound {
            self.theorem3_violations += 1;
        }
    }
    #[inline]
    fn cache_lookup(&mut self, hit: bool) {
        if hit {
            self.cache_hits += 1;
        } else {
            self.cache_misses += 1;
        }
    }
    #[inline(always)]
    fn cache_eviction(&mut self) {
        self.cache_evictions += 1;
    }
    #[inline]
    fn binding_edge_reuse(&mut self, dirty: bool) {
        if dirty {
            self.edges_dirty += 1;
        } else {
            self.edges_clean += 1;
        }
    }
    #[inline]
    fn warm_resolve(&mut self, refreed: u64) {
        self.warm_solves += 1;
        self.refreed_proposers += refreed;
    }
    #[inline(always)]
    fn warm_fallback(&mut self) {
        self.warm_fallbacks += 1;
    }
}

/// The scalar counter names and `# HELP` texts in serialization order —
/// the single naming authority shared by the JSON renderer, the
/// Prometheus renderer, the process-lifetime [`crate::LiveRegistry`],
/// and the run-ledger rows, so the exposition surfaces can't drift.
pub const SCALAR_COUNTERS: [(&str, &str); 22] = [
    ("solves", "Solves completed"),
    ("solvable", "Solves that produced a matching"),
    ("unsolvable", "Solves with no stable matching"),
    ("proposals", "Proposals issued"),
    ("rejections", "Proposers rejected back to the free list"),
    ("holder_swaps", "Provisional holders displaced"),
    ("rounds", "Synchronous GS proposal rounds"),
    ("phase1_truncations", "Irving phase-1 threshold tightenings"),
    ("phase2_rotations", "Irving phase-2 rotations eliminated"),
    ("workspace_reused", "Solves reusing grown workspace buffers"),
    ("workspace_fresh", "Solves that grew workspace buffers"),
    ("binding_edges", "Binding edges executed by the k-ary driver"),
    ("theorem3_checks", "Theorem-3 proposal-bound checks"),
    ("theorem3_violations", "Theorem-3 bound violations (must stay 0)"),
    ("cache_hits", "Solve-cache lookups returning a stored matching"),
    ("cache_misses", "Solve-cache lookups that had to solve"),
    ("cache_evictions", "Cached matchings evicted for capacity"),
    ("edges_dirty", "Incremental-rebind edges re-solved"),
    ("edges_clean", "Incremental-rebind edges reused verbatim"),
    ("warm_solves", "Warm-start re-solves reusing prior state"),
    ("warm_fallbacks", "Warm-start requests falling back to cold"),
    ("refreed_proposers", "Proposers re-freed by warm re-solves"),
];

/// The scalar counters in serialization order, shared by the JSON and
/// Prometheus renderers (name, value, `# HELP` text).
fn counter_rows(m: &SolverMetrics) -> [(&'static str, u64, &'static str); SCALAR_COUNTERS.len()] {
    let values = m.scalar_values();
    std::array::from_fn(|i| (SCALAR_COUNTERS[i].0, values[i], SCALAR_COUNTERS[i].1))
}

impl SolverMetrics {
    /// A zeroed metrics shard.
    pub fn new() -> Self {
        SolverMetrics::default()
    }

    /// The scalar counter values in [`SCALAR_COUNTERS`] order — the
    /// value column of every naming surface (JSON, Prometheus, live
    /// registry, ledger rows).
    pub fn scalar_values(&self) -> [u64; SCALAR_COUNTERS.len()] {
        [
            self.solves,
            self.solvable,
            self.unsolvable,
            self.proposals,
            self.rejections,
            self.holder_swaps,
            self.rounds,
            self.phase1_truncations,
            self.phase2_rotations,
            self.workspace_reused,
            self.workspace_fresh,
            self.binding_edges,
            self.theorem3_checks,
            self.theorem3_violations,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.edges_dirty,
            self.edges_clean,
            self.warm_solves,
            self.warm_fallbacks,
            self.refreed_proposers,
        ]
    }

    /// Element-wise merge of `other` into `self` — the registry's
    /// shard-merge operation.
    pub fn merge(&mut self, other: &SolverMetrics) {
        self.solves += other.solves;
        self.solvable += other.solvable;
        self.unsolvable += other.unsolvable;
        self.proposals += other.proposals;
        self.rejections += other.rejections;
        self.holder_swaps += other.holder_swaps;
        self.rounds += other.rounds;
        self.phase1_truncations += other.phase1_truncations;
        self.phase2_rotations += other.phase2_rotations;
        self.workspace_reused += other.workspace_reused;
        self.workspace_fresh += other.workspace_fresh;
        self.binding_edges += other.binding_edges;
        self.theorem3_checks += other.theorem3_checks;
        self.theorem3_violations += other.theorem3_violations;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.edges_dirty += other.edges_dirty;
        self.edges_clean += other.edges_clean;
        self.warm_solves += other.warm_solves;
        self.warm_fallbacks += other.warm_fallbacks;
        self.refreed_proposers += other.refreed_proposers;
        self.proposals_per_solve.merge(&other.proposals_per_solve);
        self.proposals_per_edge.merge(&other.proposals_per_edge);
        self.solve_wall_ns.merge(&other.solve_wall_ns);
    }

    /// JSON form: an object with a `counters` object and a `histograms`
    /// object (see [`Log2Histogram::to_json`]).
    pub fn to_json(&self) -> Value {
        let counters = counter_rows(self)
            .iter()
            .map(|&(name, v, _help)| (name.to_string(), Value::Number(v as f64)))
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            (
                "histograms".into(),
                Value::Object(vec![
                    (
                        "proposals_per_solve".into(),
                        self.proposals_per_solve.to_json(),
                    ),
                    (
                        "proposals_per_edge".into(),
                        self.proposals_per_edge.to_json(),
                    ),
                    ("solve_wall_ns".into(), self.solve_wall_ns.to_json()),
                ]),
            ),
        ])
    }

    /// Prometheus text exposition format, metric names prefixed
    /// `kmatch_…` and carrying `labels` verbatim (e.g. `kind="gs"`; pass
    /// `""` for none). Label *pairs* are passed through as given — build
    /// them from untrusted values with [`crate::prom::label_pair`], which
    /// escapes per the exposition format. Every family gets a `# HELP` /
    /// `# TYPE` header.
    pub fn to_prometheus(&self, labels: &str) -> String {
        use std::fmt::Write;
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let mut out = String::new();
        for (name, v, help) in counter_rows(self) {
            crate::prom::write_family_header(&mut out, &format!("kmatch_{name}_total"), "counter", help);
            let _ = writeln!(out, "kmatch_{name}_total{braces} {v}");
        }
        self.proposals_per_solve.render_prometheus(
            "kmatch_proposals_per_solve",
            "Proposals per solve",
            labels,
            &mut out,
        );
        self.proposals_per_edge.render_prometheus(
            "kmatch_proposals_per_edge",
            "Proposals per binding edge",
            labels,
            &mut out,
        );
        self.solve_wall_ns.render_prometheus(
            "kmatch_solve_wall_ns",
            "Per-solve wall time in nanoseconds",
            labels,
            &mut out,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SolverMetrics {
        let mut m = SolverMetrics::new();
        m.proposal();
        m.proposal();
        m.rejection();
        m.holder_swap();
        m.round();
        m.phase1_truncation();
        m.phase2_rotation();
        m.workspace(true);
        m.workspace(false);
        m.solve_done(true, 2);
        m.solve_ns(1500);
        m.binding_edge(2);
        m.theorem3_check(2, 16);
        m.cache_lookup(true);
        m.cache_lookup(false);
        m.cache_eviction();
        m.binding_edge_reuse(true);
        m.binding_edge_reuse(false);
        m.warm_resolve(3);
        m.warm_fallback();
        m
    }

    #[test]
    fn hooks_increment_counters() {
        let m = sample();
        assert_eq!(m.proposals, 2);
        assert_eq!(m.rejections, 1);
        assert_eq!(m.holder_swaps, 1);
        assert_eq!(m.rounds, 1);
        assert_eq!(m.phase1_truncations, 1);
        assert_eq!(m.phase2_rotations, 1);
        assert_eq!(m.workspace_fresh, 1);
        assert_eq!(m.workspace_reused, 1);
        assert_eq!(m.solves, 1);
        assert_eq!(m.solvable, 1);
        assert_eq!(m.unsolvable, 0);
        assert_eq!(m.binding_edges, 1);
        assert_eq!(m.theorem3_checks, 1);
        assert_eq!(m.theorem3_violations, 0);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_evictions, 1);
        assert_eq!(m.edges_dirty, 1);
        assert_eq!(m.edges_clean, 1);
        assert_eq!(m.warm_solves, 1);
        assert_eq!(m.warm_fallbacks, 1);
        assert_eq!(m.refreed_proposers, 3);
        assert_eq!(m.proposals_per_solve.count(), 1);
        assert_eq!(m.solve_wall_ns.sum(), 1500);
    }

    #[test]
    fn theorem3_violation_is_counted() {
        let mut m = SolverMetrics::new();
        m.theorem3_check(17, 16);
        assert_eq!(m.theorem3_violations, 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.proposals, 4);
        assert_eq!(a.solves, 2);
        assert_eq!(a.cache_hits, 2);
        assert_eq!(a.edges_clean, 2);
        assert_eq!(a.warm_solves, 2);
        assert_eq!(a.refreed_proposers, 6);
        assert_eq!(a.solve_wall_ns.count(), 2);
        assert_eq!(a.proposals_per_edge.count(), 2);
    }

    #[test]
    fn json_has_counters_and_histograms() {
        let v = sample().to_json();
        let counters = v.get("counters").expect("counters object");
        assert_eq!(counters.get("proposals"), Some(&Value::Number(2.0)));
        let hists = v.get("histograms").expect("histograms object");
        assert!(hists.get("solve_wall_ns").is_some());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample().to_prometheus("kind=\"gs\"");
        assert!(text.contains("# TYPE kmatch_proposals_total counter"));
        assert!(text.contains("# HELP kmatch_proposals_total Proposals issued"));
        // Every # TYPE line is preceded by its # HELP line.
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split(' ').next().unwrap();
                assert!(
                    i > 0 && lines[i - 1].starts_with(&format!("# HELP {name} ")),
                    "missing HELP before {line}"
                );
            }
        }
        assert!(text.contains("kmatch_proposals_total{kind=\"gs\"} 2"));
        assert!(text.contains("kmatch_solve_wall_ns_count{kind=\"gs\"} 1"));
        // Unlabelled form omits braces entirely.
        let plain = sample().to_prometheus("");
        assert!(plain.contains("kmatch_proposals_total 2"));
    }

    #[test]
    fn nometrics_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoMetrics>(), 0);
        const { assert!(!NoMetrics::ENABLED) };
        const { assert!(SolverMetrics::ENABLED) };
    }
}
