//! Prometheus text-exposition helpers shared by the counter, histogram,
//! and run-report serializers: label-value escaping per the exposition
//! format and the `# HELP` / `# TYPE` family header pair.
//!
//! The exposition format requires backslash, double-quote, and newline
//! inside label values to be written `\\`, `\"`, and `\n`; `# HELP` text
//! escapes backslash and newline only. Values arriving from outside the
//! crate (the run `kind`, CLI-provided names) go through
//! [`label_pair`], so a hostile string can never break a sample line
//! into two or forge extra labels.

/// Escape a label *value* for the text exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape_label_value`] — the direction a scraper (or the
/// round-trip tests) applies when reading a label back.
pub fn unescape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            // Unknown escape: keep it verbatim rather than guessing.
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Sanitize a metric *name* to the exposition charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Names — unlike label values — have no
/// escape syntax, so out-of-charset characters (from e.g. a
/// prefs-backend string baked into a family name) are replaced with
/// `_`; a leading digit gets a `_` prefix and an empty input becomes
/// `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    sanitize_name(name, true)
}

/// Sanitize a label *name* to `[a-zA-Z_][a-zA-Z0-9_]*` (label names,
/// unlike metric names, may not contain `:`). Same replacement rules as
/// [`sanitize_metric_name`].
pub fn sanitize_label_name(name: &str) -> String {
    sanitize_name(name, false)
}

fn sanitize_name(name: &str, allow_colon: bool) -> String {
    let valid = |c: char, first: bool| {
        c.is_ascii_alphabetic()
            || c == '_'
            || (allow_colon && c == ':')
            || (!first && c.is_ascii_digit())
    };
    let mut out = String::with_capacity(name.len().max(1));
    for c in name.chars() {
        if valid(c, out.is_empty()) {
            out.push(c);
        } else if out.is_empty() && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render `name="value"` with the name sanitized (names have no escape
/// syntax in the exposition format) and the value escaped.
pub fn label_pair(name: &str, value: &str) -> String {
    format!(
        "{}=\"{}\"",
        sanitize_label_name(name),
        escape_label_value(value)
    )
}

/// Escape `# HELP` docstring text (backslash and newline only, per the
/// format).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Append the `# HELP` / `# TYPE` header pair of one metric family.
/// `kind` is the exposition metric type (`counter`, `gauge`,
/// `histogram`).
pub fn write_family_header(out: &mut String, name: &str, kind: &str, help: &str) {
    use std::fmt::Write;
    let name = sanitize_metric_name(name);
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_hostile_strings() {
        let hostile = [
            "plain",
            "back\\slash",
            "quo\"te",
            "new\nline",
            "\\\"\n",
            "mix \\n of \"all\" three\n\\",
            "",
        ];
        for s in hostile {
            let escaped = escape_label_value(s);
            assert!(!escaped.contains('\n'), "escaped form is single-line: {escaped:?}");
            assert_eq!(unescape_label_value(&escaped), s, "round trip of {s:?}");
        }
    }

    #[test]
    fn label_pair_neutralizes_quote_injection() {
        // A value trying to close the quote and smuggle a second label.
        let pair = label_pair("kind", "gs\",evil=\"1");
        assert_eq!(pair, "kind=\"gs\\\",evil=\\\"1\"");
        // Exactly one unescaped quote pair survives.
        let unescaped_quotes = pair.matches('"').count() - pair.matches("\\\"").count();
        assert_eq!(unescaped_quotes, 2);
    }

    #[test]
    fn family_header_shape() {
        let mut out = String::new();
        write_family_header(&mut out, "kmatch_x_total", "counter", "multi\nline help");
        assert_eq!(
            out,
            "# HELP kmatch_x_total multi\\nline help\n# TYPE kmatch_x_total counter\n"
        );
    }

    #[test]
    fn sanitized_names_stay_in_charset() {
        let hostile = [
            "plain_name",
            "prefs-backend/random",
            "9starts_with_digit",
            "spaces and\ttabs",
            "quo\"te{inject=\"1\"}",
            "new\nline",
            "",
            "ünïcödé",
        ];
        let metric_ok = |c: char, first: bool| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (!first && c.is_ascii_digit())
        };
        for s in hostile {
            let m = sanitize_metric_name(s);
            assert!(!m.is_empty(), "never empty for {s:?}");
            for (i, c) in m.chars().enumerate() {
                assert!(metric_ok(c, i == 0), "bad char {c:?} in {m:?} from {s:?}");
            }
            let l = sanitize_label_name(s);
            assert!(!l.contains(':'), "label names may not contain colons: {l:?}");
        }
        // Already-valid names pass through unchanged.
        assert_eq!(sanitize_metric_name("kmatch_proposals_total"), "kmatch_proposals_total");
        assert_eq!(sanitize_metric_name("ns:sub_total"), "ns:sub_total");
        assert_eq!(sanitize_label_name("kind"), "kind");
        // Specific rewrites.
        assert_eq!(sanitize_metric_name("prefs-backend/random"), "prefs_backend_random");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn hostile_name_and_value_round_trip_as_one_sample_line() {
        // A backend string attacking both positions at once: used as a
        // label *name* it must be sanitized (no escape syntax exists);
        // used as a label *value* it must be escaped and recoverable.
        let hostile = "rand-om\"}\nbackend\\v2";
        let pair = label_pair(hostile, hostile);
        let line = format!("kmatch_run_info{{{pair}}} 1");
        assert_eq!(line.lines().count(), 1, "stays a single sample line");
        let (name, rest) = pair.split_once("=\"").expect("name=\"value\" shape");
        assert_eq!(name, sanitize_label_name(hostile));
        assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        let escaped = rest.strip_suffix('"').expect("closing quote");
        assert_eq!(unescape_label_value(escaped), hostile, "value survives byte-for-byte");
        // Family headers sanitize hostile family names too.
        let mut out = String::new();
        write_family_header(&mut out, hostile, "gauge", "help");
        assert!(out.starts_with("# HELP rand_om___backend_v2 "), "{out}");
    }

    #[test]
    fn unknown_escapes_pass_through() {
        assert_eq!(unescape_label_value("a\\tb"), "a\\tb");
        assert_eq!(unescape_label_value("trail\\"), "trail\\");
    }
}
