//! Prometheus text-exposition helpers shared by the counter, histogram,
//! and run-report serializers: label-value escaping per the exposition
//! format and the `# HELP` / `# TYPE` family header pair.
//!
//! The exposition format requires backslash, double-quote, and newline
//! inside label values to be written `\\`, `\"`, and `\n`; `# HELP` text
//! escapes backslash and newline only. Values arriving from outside the
//! crate (the run `kind`, CLI-provided names) go through
//! [`label_pair`], so a hostile string can never break a sample line
//! into two or forge extra labels.

/// Escape a label *value* for the text exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape_label_value`] — the direction a scraper (or the
/// round-trip tests) applies when reading a label back.
pub fn unescape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            // Unknown escape: keep it verbatim rather than guessing.
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Render `name="value"` with the value escaped.
pub fn label_pair(name: &str, value: &str) -> String {
    format!("{name}=\"{}\"", escape_label_value(value))
}

/// Escape `# HELP` docstring text (backslash and newline only, per the
/// format).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Append the `# HELP` / `# TYPE` header pair of one metric family.
/// `kind` is the exposition metric type (`counter`, `gauge`,
/// `histogram`).
pub fn write_family_header(out: &mut String, name: &str, kind: &str, help: &str) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_hostile_strings() {
        let hostile = [
            "plain",
            "back\\slash",
            "quo\"te",
            "new\nline",
            "\\\"\n",
            "mix \\n of \"all\" three\n\\",
            "",
        ];
        for s in hostile {
            let escaped = escape_label_value(s);
            assert!(!escaped.contains('\n'), "escaped form is single-line: {escaped:?}");
            assert_eq!(unescape_label_value(&escaped), s, "round trip of {s:?}");
        }
    }

    #[test]
    fn label_pair_neutralizes_quote_injection() {
        // A value trying to close the quote and smuggle a second label.
        let pair = label_pair("kind", "gs\",evil=\"1");
        assert_eq!(pair, "kind=\"gs\\\",evil=\\\"1\"");
        // Exactly one unescaped quote pair survives.
        let unescaped_quotes = pair.matches('"').count() - pair.matches("\\\"").count();
        assert_eq!(unescaped_quotes, 2);
    }

    #[test]
    fn family_header_shape() {
        let mut out = String::new();
        write_family_header(&mut out, "kmatch_x_total", "counter", "multi\nline help");
        assert_eq!(
            out,
            "# HELP kmatch_x_total multi\\nline help\n# TYPE kmatch_x_total counter\n"
        );
    }

    #[test]
    fn unknown_escapes_pass_through() {
        assert_eq!(unescape_label_value("a\\tb"), "a\\tb");
        assert_eq!(unescape_label_value("trail\\"), "trail\\");
    }
}
