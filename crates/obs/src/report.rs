//! Structured run reports.
//!
//! A [`RunReport`] is the per-run artifact the CLI (`--metrics-out`) and
//! the bench emitters write next to the BENCH files: instance shape, seed,
//! outcome summary, the full counter/histogram set, and timing
//! percentiles. JSON is the primary form; the Prometheus text exposition
//! form is for scrape endpoints and CI smoke checks.

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize, Value};

use crate::metrics::SolverMetrics;

/// Schema tag carried by every report, bumped on breaking layout changes.
pub const RUN_REPORT_SCHEMA: &str = "kmatch.run_report/v1";

/// Timing percentiles of one run, in nanoseconds, derived from the
/// `solve_wall_ns` histogram (percentiles are log₂-bucket upper bounds
/// clamped by the exact max; count/sum/min/max are exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingSummary {
    /// Timed solves.
    pub count: u64,
    /// Total solve wall time.
    pub sum_ns: u64,
    /// Fastest solve.
    pub min_ns: u64,
    /// Slowest solve.
    pub max_ns: u64,
    /// Median (bucket upper bound).
    pub p50_ns: u64,
    /// 90th percentile (bucket upper bound).
    pub p90_ns: u64,
    /// 99th percentile (bucket upper bound).
    pub p99_ns: u64,
}

serde::impl_json_struct!(TimingSummary {
    count,
    sum_ns,
    min_ns,
    max_ns,
    p50_ns,
    p90_ns,
    p99_ns,
});

impl TimingSummary {
    /// Summarize a wall-time histogram.
    pub fn from_metrics(m: &SolverMetrics) -> Self {
        let h = &m.solve_wall_ns;
        TimingSummary {
            count: h.count(),
            sum_ns: h.sum(),
            min_ns: h.min(),
            max_ns: h.max(),
            p50_ns: h.value_at_quantile(0.50),
            p90_ns: h.value_at_quantile(0.90),
            p99_ns: h.value_at_quantile(0.99),
        }
    }
}

/// One worker's straggler-accounting row from the work-stealing batch
/// executor: how its wall time split across running chunks (`busy_ns`),
/// sweeping victim deques (`steal_ns`), and waiting at the final barrier
/// for slower workers (`idle_ns`) — a worker with large `idle_ns` was
/// starved, a worker whose `busy_ns` dominates the batch wall time is the
/// straggler everyone else waited on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StragglerWorker {
    /// Worker index, `0..threads`.
    pub worker: u64,
    /// Time spent executing chunks.
    pub busy_ns: u64,
    /// Time spent in steal sweeps (successful or not).
    pub steal_ns: u64,
    /// Time between this worker finishing and the whole batch finishing.
    pub idle_ns: u64,
    /// Chunks this worker executed (own + stolen).
    pub chunks_executed: u64,
    /// Of those, chunks taken from another worker's deque.
    pub chunks_stolen: u64,
}

serde::impl_json_struct!(StragglerWorker {
    worker,
    busy_ns,
    steal_ns,
    idle_ns,
    chunks_executed,
    chunks_stolen,
});

/// The `straggler` section of a run report: the chunk plan the
/// work-stealing executor ran (sizes in chunk-index order — balanced, so
/// they differ by at most one) and one [`StragglerWorker`] row per
/// worker. Attached by the batch front-ends via
/// [`RunReport::with_straggler`]; absent for workloads that never went
/// through the executor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StragglerSection {
    /// Workers the executor ran.
    pub threads: u64,
    /// Whether the forced-steal stress mode (all chunks seeded on worker
    /// 0) was active.
    pub forced_steal: bool,
    /// Instances per chunk, in chunk-index order.
    pub chunk_sizes: Vec<u64>,
    /// Per-worker accounting rows, in worker order.
    pub workers: Vec<StragglerWorker>,
}

serde::impl_json_struct!(StragglerSection {
    threads,
    forced_steal,
    chunk_sizes,
    workers,
});

/// One named instrumentation-overhead measurement attached to a run
/// report: wall time of the same workload with a piece of
/// instrumentation off (`plain_ns`) and on (`instrumented_ns`), plus
/// the derived percentage. The bench emitters attach
/// `metrics_overhead`- and `trace_overhead`-style rows so the committed
/// reports pin the cost of leaving metrics or the flight recorder armed.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// Row name, e.g. `"trace_overhead"`.
    pub name: String,
    /// Instances in the measured workload.
    pub instances: u64,
    /// Members per side.
    pub n: u64,
    /// Wall time with the instrumentation off.
    pub plain_ns: f64,
    /// Wall time with the instrumentation on.
    pub instrumented_ns: f64,
    /// `(instrumented_ns / plain_ns - 1) * 100`.
    pub overhead_pct: f64,
}

/// Structured description of one observed run (a batch, a single solve
/// loop, or a k-ary binding).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Always [`RUN_REPORT_SCHEMA`].
    pub schema: String,
    /// Workload kind: `"gs"`, `"roommates"`, or `"kary"`.
    pub kind: String,
    /// Members per side (bipartite/roommates) or per gender (k-ary).
    pub n: u64,
    /// Instances solved in this run.
    pub instances: u64,
    /// RNG seed that generated the workload (0 when not applicable).
    pub seed: u64,
    /// Worker threads available to the run.
    pub threads: u64,
    /// Wall time of the whole run (front-end clock).
    pub wall_ns: u64,
    /// Theorem-3 proposal bound `(k−1)·n²` for k-ary runs, absent
    /// otherwise.
    pub theorem3_bound: Option<u64>,
    /// Timing percentiles over the per-solve wall times.
    pub timing: TimingSummary,
    /// The full merged counter/histogram set.
    pub metrics: SolverMetrics,
    /// Named instrumentation-overhead rows (empty unless attached via
    /// [`RunReport::with_overhead`]).
    pub overheads: Vec<OverheadReport>,
    /// Work-stealing executor straggler accounting (absent unless
    /// attached via [`RunReport::with_straggler`]).
    pub straggler: Option<StragglerSection>,
}

impl RunReport {
    /// Assemble a report from merged metrics.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: &str,
        n: usize,
        instances: usize,
        seed: u64,
        threads: usize,
        wall_ns: u64,
        metrics: SolverMetrics,
        theorem3_bound: Option<u64>,
    ) -> Self {
        RunReport {
            schema: RUN_REPORT_SCHEMA.to_string(),
            kind: kind.to_string(),
            n: n as u64,
            instances: instances as u64,
            seed,
            threads: threads as u64,
            wall_ns,
            theorem3_bound,
            timing: TimingSummary::from_metrics(&metrics),
            metrics,
            overheads: Vec::new(),
            straggler: None,
        }
    }

    /// Attach a named instrumentation-overhead row (builder style).
    pub fn with_overhead(
        mut self,
        name: &str,
        instances: usize,
        n: usize,
        plain_ns: f64,
        instrumented_ns: f64,
    ) -> Self {
        self.overheads.push(OverheadReport {
            name: name.to_string(),
            instances: instances as u64,
            n: n as u64,
            plain_ns,
            instrumented_ns,
            overhead_pct: (instrumented_ns / plain_ns - 1.0) * 100.0,
        });
        self
    }

    /// Attach the work-stealing executor's straggler section (builder
    /// style).
    pub fn with_straggler(mut self, section: StragglerSection) -> Self {
        self.straggler = Some(section);
        self
    }

    /// Pretty-printed JSON text (trailing newline included).
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serialization is infallible");
        s.push('\n');
        s
    }

    /// Prometheus text exposition form: run-level gauges plus the full
    /// counter/histogram set, all labelled `kind="…"` with the kind
    /// escaped per the exposition format (it arrives from CLI/bench
    /// callers, so a hostile value must not break a sample line).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let labels = crate::prom::label_pair("kind", &self.kind);
        let mut out = String::new();
        for (name, v, help) in [
            ("kmatch_run_n", self.n, "Members per side (or per gender)"),
            ("kmatch_run_instances", self.instances, "Instances solved in this run"),
            ("kmatch_run_seed", self.seed, "RNG seed that generated the workload"),
            ("kmatch_run_threads", self.threads, "Worker threads available to the run"),
            ("kmatch_run_wall_ns", self.wall_ns, "Wall time of the whole run"),
        ] {
            crate::prom::write_family_header(&mut out, name, "gauge", help);
            let _ = writeln!(out, "{name}{{{labels}}} {v}");
        }
        if let Some(bound) = self.theorem3_bound {
            crate::prom::write_family_header(
                &mut out,
                "kmatch_run_theorem3_bound",
                "gauge",
                "Theorem-3 proposal bound (k-1)*n^2",
            );
            let _ = writeln!(out, "kmatch_run_theorem3_bound{{{labels}}} {bound}");
        }
        out.push_str(&self.metrics.to_prometheus(&labels));
        out
    }

    /// Write the report to `path` in the requested format (`"json"` or
    /// `"prom"`), creating parent directories as needed.
    pub fn write(&self, path: &Path, format: &str) -> io::Result<()> {
        let text = match format {
            "json" => self.to_json_string(),
            "prom" => self.to_prometheus(),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unknown metrics format: {other} (expected json|prom)"),
                ))
            }
        };
        write_text_file(path, &text)
    }

    /// Validate that `text` parses as JSON and carries the required
    /// [`RunReport`] keys (the CI smoke contract). Returns the parsed
    /// value tree on success.
    pub fn validate_json_str(text: &str) -> Result<Value, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let schema = match v.get("schema") {
            Some(Value::String(s)) => s.clone(),
            _ => return Err("missing `schema` key".to_string()),
        };
        if schema != RUN_REPORT_SCHEMA {
            return Err(format!(
                "schema mismatch: got {schema:?}, expected {RUN_REPORT_SCHEMA:?}"
            ));
        }
        for key in ["kind", "n", "instances", "seed", "threads", "wall_ns", "timing", "metrics"] {
            if v.get(key).is_none() {
                return Err(format!("missing `{key}` key"));
            }
        }
        let metrics = v.get("metrics").expect("checked above");
        let counters = metrics
            .get("counters")
            .ok_or("missing `metrics.counters` object")?;
        for key in ["solves", "proposals", "rejections"] {
            if counters.get(key).is_none() {
                return Err(format!("missing `metrics.counters.{key}` key"));
            }
        }
        if metrics.get("histograms").is_none() {
            return Err("missing `metrics.histograms` object".to_string());
        }
        for key in ["count", "p50_ns", "p99_ns"] {
            if v.get("timing").and_then(|t| t.get(key)).is_none() {
                return Err(format!("missing `timing.{key}` key"));
            }
        }
        // The straggler section is optional, but when present it must be
        // well-formed (the CI smoke check greps its keys out of batch
        // reports).
        if let Some(straggler) = v.get("straggler") {
            if !matches!(straggler, Value::Null) {
                crate::report::StragglerSection::from_value(straggler)
                    .map_err(|e| format!("malformed `straggler` section: {e}"))?;
            }
        }
        Ok(v)
    }
}

impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".into(), Value::String(self.schema.clone())),
            ("kind".into(), Value::String(self.kind.clone())),
            ("n".into(), Value::Number(self.n as f64)),
            ("instances".into(), Value::Number(self.instances as f64)),
            ("seed".into(), Value::Number(self.seed as f64)),
            ("threads".into(), Value::Number(self.threads as f64)),
            ("wall_ns".into(), Value::Number(self.wall_ns as f64)),
            (
                "theorem3_bound".into(),
                match self.theorem3_bound {
                    Some(b) => Value::Number(b as f64),
                    None => Value::Null,
                },
            ),
            ("timing".into(), self.timing.to_value()),
            ("metrics".into(), self.metrics.to_json()),
            (
                "overheads".into(),
                Value::Object(
                    self.overheads
                        .iter()
                        .map(|o| {
                            (
                                o.name.clone(),
                                Value::Object(vec![
                                    ("instances".into(), Value::Number(o.instances as f64)),
                                    ("n".into(), Value::Number(o.n as f64)),
                                    ("plain_ns".into(), Value::Number(o.plain_ns)),
                                    (
                                        "instrumented_ns".into(),
                                        Value::Number(o.instrumented_ns),
                                    ),
                                    ("overhead_pct".into(), Value::Number(o.overhead_pct)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("straggler".into(), self.straggler.to_value()),
        ])
    }
}

/// Write any serializable value as pretty JSON (plus trailing newline) to
/// `path` — the single JSON-writing funnel shared by the bench emitters.
pub fn write_json_file<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_text_file(path, &(json + "\n"))
}

/// Write text to `path`, creating parent directories first — the
/// output-file funnel behind every `--*-out` flag, so a nested path that
/// doesn't exist yet works and an unwritable one surfaces as a plain
/// `io::Error` (never a panic).
pub fn write_text_file(path: &Path, text: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn sample_report() -> RunReport {
        let mut m = SolverMetrics::new();
        for i in 0..10u64 {
            m.proposal();
            m.rejection();
            m.solve_done(i % 2 == 0, i);
            m.solve_ns(100 * (i + 1));
        }
        RunReport::new("gs", 64, 10, 42, 1, 12345, m, None)
    }

    #[test]
    fn json_roundtrip_validates() {
        let text = sample_report().to_json_string();
        let v = RunReport::validate_json_str(&text).expect("valid report");
        assert_eq!(v.get("kind"), Some(&Value::String("gs".into())));
    }

    #[test]
    fn validation_rejects_garbage_and_missing_keys() {
        assert!(RunReport::validate_json_str("not json").is_err());
        assert!(RunReport::validate_json_str("{}").is_err());
        let wrong_schema = r#"{"schema": "other/v9"}"#;
        let err = RunReport::validate_json_str(wrong_schema).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        // Drop a required key and the validator names it.
        let text = sample_report().to_json_string();
        let broken = text.replace("\"timing\"", "\"ximing\"");
        let err = RunReport::validate_json_str(&broken).unwrap_err();
        assert!(err.contains("timing"), "{err}");
    }

    #[test]
    fn timing_summary_tracks_histogram() {
        let r = sample_report();
        assert_eq!(r.timing.count, 10);
        assert_eq!(r.timing.min_ns, 100);
        assert_eq!(r.timing.max_ns, 1000);
        assert!(r.timing.p50_ns >= 500 && r.timing.p50_ns <= 1000);
    }

    #[test]
    fn prometheus_form_carries_run_gauges() {
        let text = sample_report().to_prometheus();
        assert!(text.contains("kmatch_run_instances{kind=\"gs\"} 10"));
        assert!(text.contains("kmatch_proposals_total{kind=\"gs\"} 10"));
        assert!(!text.contains("theorem3_bound{"), "absent for non-kary runs");
        let mut m = SolverMetrics::new();
        m.theorem3_check(5, 32);
        let kary = RunReport::new("kary", 4, 1, 0, 1, 10, m, Some(32));
        assert!(kary
            .to_prometheus()
            .contains("kmatch_run_theorem3_bound{kind=\"kary\"} 32"));
    }

    #[test]
    fn hostile_kind_label_round_trips() {
        // A kind value that tries all three escapes plus a fake label
        // closer — must neither split a sample line nor forge labels.
        let hostile = "g\"s\\evil\nkind\"}x";
        let mut m = SolverMetrics::new();
        m.proposal();
        let r = RunReport::new(hostile, 4, 1, 0, 1, 10, m, None);
        let text = r.to_prometheus();
        // Every non-comment line still parses as `name{...} value`.
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines from a raw newline");
            if line.starts_with('#') {
                continue;
            }
            assert!(
                line.contains("{kind=\"") || line.contains(",le=\""),
                "sample line keeps its label block: {line}"
            );
        }
        // Scan the escaped value back out of a sample line and unescape:
        // must recover the original byte-for-byte.
        let line = text
            .lines()
            .find(|l| l.starts_with("kmatch_run_n{kind=\""))
            .expect("run gauge present");
        let tail = &line["kmatch_run_n{kind=\"".len()..];
        let mut escaped = String::new();
        let mut chars = tail.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => {
                    escaped.push(c);
                    escaped.push(chars.next().expect("escape has a payload"));
                }
                '"' => break,
                c => escaped.push(c),
            }
        }
        assert_eq!(crate::prom::unescape_label_value(&escaped), hostile);
    }

    #[test]
    fn overhead_rows_serialize_under_their_names() {
        let r = sample_report()
            .with_overhead("trace_overhead", 32, 2000, 1_000_000.0, 1_030_000.0);
        assert_eq!(r.overheads.len(), 1);
        assert!((r.overheads[0].overhead_pct - 3.0).abs() < 1e-9);
        let text = r.to_json_string();
        let v = RunReport::validate_json_str(&text).expect("still a valid report");
        let row = v
            .get("overheads")
            .and_then(|o| o.get("trace_overhead"))
            .expect("row keyed by name");
        assert_eq!(row.get("instances"), Some(&Value::Number(32.0)));
        assert!(row.get("plain_ns").is_some());
        assert!(row.get("instrumented_ns").is_some());
        assert!(row.get("overhead_pct").is_some());
        // Reports without rows still carry the (empty) section.
        let bare = sample_report().to_json_string();
        assert!(RunReport::validate_json_str(&bare)
            .unwrap()
            .get("overheads")
            .is_some());
    }

    #[test]
    fn straggler_section_serializes_and_validates() {
        let section = StragglerSection {
            threads: 2,
            forced_steal: true,
            chunk_sizes: vec![3, 3, 2],
            workers: vec![
                StragglerWorker {
                    worker: 0,
                    busy_ns: 100,
                    steal_ns: 0,
                    idle_ns: 20,
                    chunks_executed: 2,
                    chunks_stolen: 0,
                },
                StragglerWorker {
                    worker: 1,
                    busy_ns: 80,
                    steal_ns: 10,
                    idle_ns: 0,
                    chunks_executed: 1,
                    chunks_stolen: 1,
                },
            ],
        };
        let text = sample_report().with_straggler(section.clone()).to_json_string();
        let v = RunReport::validate_json_str(&text).expect("valid with straggler");
        let s = v.get("straggler").expect("section present");
        assert_eq!(s.get("threads"), Some(&Value::Number(2.0)));
        assert_eq!(s.get("forced_steal"), Some(&Value::Bool(true)));
        assert_eq!(
            StragglerSection::from_value(s).expect("round-trips"),
            section
        );
        // Reports without the section validate (key serializes as null).
        let bare = sample_report().to_json_string();
        RunReport::validate_json_str(&bare).expect("absent section is fine");
        // A malformed section is rejected.
        let broken = text.replace("\"busy_ns\"", "\"fuzzy_ns\"");
        let err = RunReport::validate_json_str(&broken).unwrap_err();
        assert!(err.contains("straggler"), "{err}");
    }

    #[test]
    fn write_and_validate_files() {
        let dir = std::env::temp_dir().join("kmatch-obs-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("report.json");
        let prom_path = dir.join("report.prom");
        let r = sample_report();
        r.write(&json_path, "json").unwrap();
        r.write(&prom_path, "prom").unwrap();
        assert!(r.write(&dir.join("x"), "yaml").is_err());
        let text = std::fs::read_to_string(&json_path).unwrap();
        RunReport::validate_json_str(&text).expect("written file validates");
        assert!(std::fs::read_to_string(&prom_path)
            .unwrap()
            .contains("kmatch_run_wall_ns"));
    }
}
