//! Monotonic clocks, injected at the front-end.
//!
//! Engines never read time: the batch drivers, CLI, and benches sample a
//! [`Clock`] around each solve and feed the delta to
//! [`crate::Metrics::solve_ns`]. Production uses [`StdClock`]
//! (`std::time::Instant`); tests use [`ManualClock`] to make timing
//! histograms deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock {
    /// Nanoseconds since an arbitrary fixed origin; never decreases.
    fn now_ns(&self) -> u64;
}

/// Production clock: `Instant`-backed, origin at construction.
#[derive(Debug)]
pub struct StdClock {
    origin: Instant,
}

impl StdClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        StdClock {
            origin: Instant::now(),
        }
    }
}

impl Default for StdClock {
    fn default() -> Self {
        StdClock::new()
    }
}

impl Clock for StdClock {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic test clock advanced by hand. `Sync` so it can drive the
/// parallel batch front-ends.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advance the clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }

    /// Set the absolute time.
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_clock_is_monotonic() {
        let c = StdClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now_ns(), 15);
        c.set(3);
        assert_eq!(c.now_ns(), 3);
    }
}
