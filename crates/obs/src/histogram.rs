//! Fixed-size log₂-bucket histograms.
//!
//! The bucket layout follows the operation-count analyses the counters
//! exist to check (proposal counts spread over orders of magnitude, solve
//! times likewise): bucket `0` holds the value `0`, bucket `i ≥ 1` holds
//! values in `[2^{i−1}, 2^i − 1]`, so `observe` is a `leading_zeros` plus
//! one array increment — no allocation, no branches beyond the zero test.
//! Exact `min`/`max`/`sum` ride along so reports can bound the bucket
//! approximation.

use serde::Value;

/// Number of buckets: the zero bucket plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

/// A log₂-bucket histogram of `u64` samples.
///
/// ```
/// use kmatch_obs::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// for v in [0, 1, 2, 3, 4, 1000] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.sum(), 1010);
/// assert_eq!(h.max(), 1000);
/// assert!(h.value_at_quantile(0.5) <= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    /// `counts[0]` = zeros; `counts[i]` = samples in `[2^{i−1}, 2^i − 1]`.
    counts: [u64; BUCKETS],
    /// Total samples.
    count: u64,
    /// Sum of all samples (saturating).
    sum: u64,
    /// Smallest sample seen (`u64::MAX` while empty).
    min: u64,
    /// Largest sample seen (`0` while empty).
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of `v`: `0` for zero, else `ilog2(v) + 1`.
#[inline(always)]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`2^i − 1`, saturating at the top).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// Record one sample.
    #[inline(always)]
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `0` if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or `0` if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts (`counts[0]` = zeros, `counts[i]` covers
    /// `[2^{i−1}, 2^i − 1]`).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Upper bound of the value at quantile `q ∈ [0, 1]`: the inclusive
    /// upper edge of the bucket holding the `⌈q·count⌉`-th smallest
    /// sample, clamped by the exact maximum. Returns `0` for an empty
    /// histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Element-wise merge of `other` into `self` (the shard-merge
    /// operation of [`crate::BatchRegistry`]).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Index of the highest non-empty bucket, or `None` if empty — lets
    /// serializers stop at the observed range.
    pub fn highest_bucket(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// JSON form: exact scalars plus the non-empty prefix of buckets as
    /// `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> Value {
        let end = self.highest_bucket().map_or(0, |i| i + 1);
        let buckets: Vec<Value> = (0..end)
            .map(|i| {
                Value::Array(vec![
                    Value::Number(bucket_upper_bound(i) as f64),
                    Value::Number(self.counts[i] as f64),
                ])
            })
            .collect();
        Value::Object(vec![
            ("count".into(), Value::Number(self.count as f64)),
            ("sum".into(), Value::Number(self.sum as f64)),
            ("min".into(), Value::Number(self.min() as f64)),
            ("max".into(), Value::Number(self.max as f64)),
            ("p50".into(), Value::Number(self.value_at_quantile(0.50) as f64)),
            ("p90".into(), Value::Number(self.value_at_quantile(0.90) as f64)),
            ("p99".into(), Value::Number(self.value_at_quantile(0.99) as f64)),
            ("buckets".into(), Value::Array(buckets)),
        ])
    }

    /// Append the Prometheus text-exposition form of this histogram under
    /// `name` (with optional `labels`, e.g. `kind="gs"`): a `# HELP` /
    /// `# TYPE` header, cumulative `_bucket{le=…}` lines over the
    /// observed range, then `+Inf`, `_sum` and `_count`. `labels` is a
    /// pre-rendered pair list — build pairs from untrusted values with
    /// [`crate::prom::label_pair`].
    pub fn render_prometheus(&self, name: &str, help: &str, labels: &str, out: &mut String) {
        use std::fmt::Write;
        let sep = if labels.is_empty() { "" } else { "," };
        crate::prom::write_family_header(out, name, "histogram", help);
        let mut cumulative = 0u64;
        let end = self.highest_bucket().map_or(0, |i| i + 1);
        for i in 0..end {
            cumulative += self.counts[i];
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
                bucket_upper_bound(i)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", self.count);
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let _ = writeln!(out, "{name}_sum{braces} {}", self.sum);
        let _ = writeln!(out, "{name}_count{braces} {}", self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn scalars_are_exact() {
        let mut h = Log2Histogram::new();
        for v in [5u64, 0, 17, 2] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 24);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 17);
        assert!((h.mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.highest_bucket(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let mut h = Log2Histogram::new();
        // 90 small samples, 10 large ones.
        for _ in 0..90 {
            h.observe(3);
        }
        for _ in 0..10 {
            h.observe(1000);
        }
        assert_eq!(h.value_at_quantile(0.5), 3);
        assert_eq!(h.value_at_quantile(0.9), 3);
        // p99 lands in the 1000 bucket; clamped by the exact max.
        assert_eq!(h.value_at_quantile(0.99), 1000);
        assert_eq!(h.value_at_quantile(1.0), 1000);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.observe(1);
        a.observe(100);
        b.observe(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 108);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
        let empty = Log2Histogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_for_any_q() {
        let h = Log2Histogram::new();
        for q in [-1.0, 0.0, 0.25, 0.5, 0.99, 1.0, 2.0] {
            assert_eq!(h.value_at_quantile(q), 0, "q = {q}");
        }
    }

    #[test]
    fn single_sample_pins_every_quantile_to_it() {
        let mut h = Log2Histogram::new();
        h.observe(777);
        assert_eq!(h.min(), h.max());
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            // The bucket bound (1023) is clamped by the exact max.
            assert_eq!(h.value_at_quantile(q), 777, "q = {q}");
        }
    }

    #[test]
    fn top_bucket_saturates_at_u64_max() {
        let mut h = Log2Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX - 1);
        h.observe(1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 1);
        // The sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 2);
        assert_eq!(h.highest_bucket(), Some(BUCKETS - 1));
        assert_eq!(h.value_at_quantile(1.0), u64::MAX);
        // JSON renders the top bucket with its saturated bound.
        let v = h.to_json();
        match v.get("buckets") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), BUCKETS);
                match items.last() {
                    Some(Value::Array(pair)) => {
                        assert_eq!(pair[0], Value::Number(u64::MAX as f64));
                        assert_eq!(pair[1], Value::Number(2.0));
                    }
                    other => panic!("expected [bound, count], got {other:?}"),
                }
            }
            other => panic!("expected bucket array, got {other:?}"),
        }
    }

    #[test]
    fn disjoint_merge_keeps_the_exact_envelope() {
        let mut a = Log2Histogram::new();
        for v in [1u64, 2, 3] {
            a.observe(v);
        }
        let mut b = Log2Histogram::new();
        b.observe(1 << 40);
        b.observe(1 << 41);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1 << 41);
        assert_eq!(a.sum(), 6 + (1u64 << 40) + (1u64 << 41));
        // Bucket ranges stay disjoint: nothing lands between them.
        assert_eq!(a.bucket_counts()[10..41].iter().sum::<u64>(), 0);
        assert_eq!(a.value_at_quantile(0.5), 3);
        assert_eq!(a.value_at_quantile(1.0), 1 << 41);
        // Merging into an empty histogram reproduces the source exactly.
        let mut fresh = Log2Histogram::new();
        fresh.merge(&b);
        assert_eq!(fresh, b);
        assert_eq!(fresh.min(), 1 << 40);
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let mut h = Log2Histogram::new();
        h.observe(1);
        h.observe(2);
        h.observe(2);
        let mut out = String::new();
        h.render_prometheus("test_ns", "test timings", "kind=\"gs\"", &mut out);
        assert!(out.contains("# HELP test_ns test timings"));
        assert!(out.contains("# TYPE test_ns histogram"));
        assert!(out.contains("test_ns_bucket{kind=\"gs\",le=\"1\"} 1"));
        assert!(out.contains("test_ns_bucket{kind=\"gs\",le=\"3\"} 3"));
        assert!(out.contains("test_ns_bucket{kind=\"gs\",le=\"+Inf\"} 3"));
        assert!(out.contains("test_ns_sum{kind=\"gs\"} 5"));
        assert!(out.contains("test_ns_count{kind=\"gs\"} 3"));
    }

    #[test]
    fn json_form_has_percentiles_and_buckets() {
        let mut h = Log2Histogram::new();
        h.observe(4);
        let v = h.to_json();
        assert_eq!(v.get("count"), Some(&Value::Number(1.0)));
        assert_eq!(v.get("p50"), Some(&Value::Number(4.0)));
        match v.get("buckets") {
            Some(Value::Array(items)) => assert_eq!(items.len(), 4),
            other => panic!("expected bucket array, got {other:?}"),
        }
    }
}
