//! Process-lifetime live telemetry: the atomics-based gauge/counter
//! layer behind the `kmatch serve` scrape endpoint.
//!
//! The observability stack keeps three tiers, slowest-changing first:
//!
//! 1. engine hot paths increment a thread-private [`SolverMetrics`]
//!    shard — plain `u64`s, no atomics, no locks;
//! 2. the sharded [`crate::BatchRegistry`] absorbs each shard once, at
//!    its chunk boundary, under one short mutex;
//! 3. a registry built with [`crate::BatchRegistry::with_live`] forwards
//!    every absorbed shard into a shared [`LiveRegistry`] — ~22 relaxed
//!    atomic adds per *chunk*, never per solve — which a scrape server
//!    can render at any moment without stopping the run.
//!
//! The live layer carries the scalar counters (named by
//! [`SCALAR_COUNTERS`], the same authority the JSON/Prometheus report
//! renderers use), executor straggler aggregates, per-backend run
//! counters, and the two paper-conformance gauges:
//!
//! * `kmatch_theorem3_ratio` — observed binding-run proposals divided by
//!   the Theorem-3 bound `(k−1)·n²`; the paper guarantees ≤ 1.
//! * `kmatch_proposals_vs_nlogn` — observed GS proposals divided by
//!   Mertens' expectation of ~`n ln n` for uniformly random instances; a
//!   healthy random workload sits near 1, a degenerate oracle drifts
//!   toward `n / ln n`.
//!
//! Histograms stay in the per-run [`crate::RunReport`]s — merging log₂
//! buckets atomically would put contention back on the absorb path for
//! data the scrape endpoint can already get from `/report`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::{SolverMetrics, SCALAR_COUNTERS};
use crate::report::StragglerSection;

/// Observed proposals of a binding run against the Theorem-3 bound
/// `(k−1)·n²`, as a ratio (`None` when the bound is degenerate). The
/// shared formula behind the `kmatch_theorem3_ratio` gauge and the
/// ledger's `theorem3_ratio` column.
pub fn theorem3_ratio(total_proposals: u64, bound: u64) -> Option<f64> {
    if bound == 0 {
        return None;
    }
    Some(total_proposals as f64 / bound as f64)
}

/// Observed GS proposals against Mertens' ~`n ln n` expectation for
/// `instances` uniformly random instances of size `n`, as a ratio
/// (`None` when `n < 2` or nothing was solved — `ln n` would be zero or
/// the ratio meaningless). The shared formula behind the
/// `kmatch_proposals_vs_nlogn` gauge and the ledger's
/// `proposals_vs_nlogn` column.
pub fn nlogn_ratio(proposals: u64, n: u64, instances: u64) -> Option<f64> {
    if n < 2 || instances == 0 {
        return None;
    }
    let expected = instances as f64 * n as f64 * (n as f64).ln();
    Some(proposals as f64 / expected)
}

/// Executor straggler aggregates mirrored into the live layer: the
/// worker-summed `exec.busy` / `exec.steal` / `exec.idle` span names as
/// monotonic nanosecond counters.
#[derive(Debug, Default)]
struct ExecTotals {
    busy_ns: AtomicU64,
    steal_ns: AtomicU64,
    idle_ns: AtomicU64,
    chunks: AtomicU64,
    chunks_stolen: AtomicU64,
}

const RATIO_UNSET: u64 = u64::MAX;

/// Process-lifetime scrape registry: every counter and gauge is an
/// atomic, so one shared instance can be read by a scrape server thread
/// while batch drivers keep absorbing — no locks on either side (the
/// only mutex guards the rarely-touched per-backend name list).
///
/// ```
/// use kmatch_obs::{LiveRegistry, Metrics, SolverMetrics};
///
/// let live = LiveRegistry::new();
/// let mut shard = SolverMetrics::new();
/// shard.proposal();
/// live.absorb(&shard);                     // chunk boundary, not hot path
/// assert_eq!(live.counter("proposals"), Some(1));
/// assert!(live.to_prometheus().contains("kmatch_proposals_total 1"));
/// ```
#[derive(Debug, Default)]
pub struct LiveRegistry {
    counters: [AtomicU64; SCALAR_COUNTERS.len()],
    shards_absorbed: AtomicU64,
    runs: AtomicU64,
    last_run_wall_ns: AtomicU64,
    exec: ExecTotals,
    /// `f64` bits; `RATIO_UNSET` until first observation.
    theorem3: AtomicU64,
    /// `f64` bits; `RATIO_UNSET` until first observation.
    nlogn: AtomicU64,
    /// Per-backend run counters. The *family name* is derived from the
    /// backend string (`kmatch_backend_<name>_runs_total`), so it is
    /// sanitized once at insert via
    /// [`crate::prom::sanitize_metric_name`].
    backend_runs: Mutex<Vec<(String, u64)>>,
}

impl LiveRegistry {
    /// An empty registry. Typically wrapped in an `Arc` and shared
    /// between the scrape server and the batch drivers.
    pub fn new() -> Self {
        let reg = LiveRegistry::default();
        reg.theorem3.store(RATIO_UNSET, Ordering::Relaxed);
        reg.nlogn.store(RATIO_UNSET, Ordering::Relaxed);
        reg
    }

    /// Add one completed [`SolverMetrics`] shard into the live counters.
    /// Called from [`crate::BatchRegistry::absorb`] (when attached) or
    /// directly by single-solve front-ends — always at a chunk/run
    /// boundary, never from a solver hot loop, and never allocating.
    pub fn absorb(&self, shard: &SolverMetrics) {
        let values = shard.scalar_values();
        for (slot, v) in self.counters.iter().zip(values) {
            if v != 0 {
                slot.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.shards_absorbed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one completed run: bumps the total and per-backend run
    /// counters and the last-run wall-time gauge.
    pub fn observe_run(&self, backend: &str, wall_ns: u64) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.last_run_wall_ns.store(wall_ns, Ordering::Relaxed);
        let family = format!(
            "kmatch_backend_{}_runs_total",
            crate::prom::sanitize_metric_name(backend)
        );
        let mut by_backend = self.backend_runs.lock().expect("live registry poisoned");
        match by_backend.iter_mut().find(|(name, _)| *name == family) {
            Some((_, count)) => *count += 1,
            None => by_backend.push((family, 1)),
        }
    }

    /// Fold one executor straggler section into the `exec.*` totals.
    pub fn absorb_straggler(&self, section: &StragglerSection) {
        let mut busy = 0u64;
        let mut steal = 0u64;
        let mut idle = 0u64;
        let mut chunks = 0u64;
        let mut stolen = 0u64;
        for w in &section.workers {
            busy += w.busy_ns;
            steal += w.steal_ns;
            idle += w.idle_ns;
            chunks += w.chunks_executed;
            stolen += w.chunks_stolen;
        }
        self.exec.busy_ns.fetch_add(busy, Ordering::Relaxed);
        self.exec.steal_ns.fetch_add(steal, Ordering::Relaxed);
        self.exec.idle_ns.fetch_add(idle, Ordering::Relaxed);
        self.exec.chunks.fetch_add(chunks, Ordering::Relaxed);
        self.exec.chunks_stolen.fetch_add(stolen, Ordering::Relaxed);
    }

    /// Set the `kmatch_theorem3_ratio` gauge from a binding run's
    /// observed proposals and its `(k−1)·n²` bound. Degenerate bounds
    /// leave the gauge untouched.
    pub fn observe_theorem3(&self, total_proposals: u64, bound: u64) {
        if let Some(r) = theorem3_ratio(total_proposals, bound) {
            self.theorem3.store(r.to_bits(), Ordering::Relaxed);
        }
    }

    /// Set the `kmatch_proposals_vs_nlogn` gauge from a GS run's
    /// observed proposals. Degenerate shapes leave the gauge untouched.
    pub fn observe_nlogn(&self, proposals: u64, n: u64, instances: u64) {
        if let Some(r) = nlogn_ratio(proposals, n, instances) {
            self.nlogn.store(r.to_bits(), Ordering::Relaxed);
        }
    }

    /// Read one scalar counter back by its [`SCALAR_COUNTERS`] name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        SCALAR_COUNTERS
            .iter()
            .position(|(n, _)| *n == name)
            .map(|i| self.counters[i].load(Ordering::Relaxed))
    }

    /// Shards absorbed into the live layer so far.
    pub fn shards_absorbed(&self) -> u64 {
        self.shards_absorbed.load(Ordering::Relaxed)
    }

    /// Completed runs observed so far.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Current Theorem-3 conformance ratio, if any run set it.
    pub fn theorem3(&self) -> Option<f64> {
        ratio_load(&self.theorem3)
    }

    /// Current `n ln n` conformance ratio, if any run set it.
    pub fn nlogn(&self) -> Option<f64> {
        ratio_load(&self.nlogn)
    }

    /// Render the whole live layer as Prometheus text exposition. The
    /// scalar counter families reuse the report renderer's
    /// `kmatch_<name>_total` names (unlabelled: these are process
    /// totals); conformance gauges render `NaN` until first observed so
    /// scrapers always see the family.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, (name, help)) in SCALAR_COUNTERS.iter().enumerate() {
            let family = format!("kmatch_{name}_total");
            crate::prom::write_family_header(&mut out, &family, "counter", help);
            let _ = writeln!(out, "{family} {}", self.counters[i].load(Ordering::Relaxed));
        }
        let gauges: [(&str, &str, u64); 2] = [
            (
                "kmatch_live_last_run_wall_ns",
                "Wall time of the most recent completed run",
                self.last_run_wall_ns.load(Ordering::Relaxed),
            ),
            (
                "kmatch_live_shards_absorbed",
                "Metric shards absorbed into the live layer",
                self.shards_absorbed.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, v) in gauges {
            crate::prom::write_family_header(&mut out, name, "gauge", help);
            let _ = writeln!(out, "{name} {v}");
        }
        crate::prom::write_family_header(
            &mut out,
            "kmatch_live_runs_total",
            "counter",
            "Completed runs observed by the live layer",
        );
        let _ = writeln!(out, "kmatch_live_runs_total {}", self.runs.load(Ordering::Relaxed));
        let exec_rows: [(&str, &str, u64); 5] = [
            ("kmatch_exec_busy_ns_total", "Worker time executing chunks", self.exec.busy_ns.load(Ordering::Relaxed)),
            ("kmatch_exec_steal_ns_total", "Worker time in steal sweeps", self.exec.steal_ns.load(Ordering::Relaxed)),
            ("kmatch_exec_idle_ns_total", "Worker time waiting at the batch barrier", self.exec.idle_ns.load(Ordering::Relaxed)),
            ("kmatch_exec_chunks_total", "Chunks executed by the work-stealing pool", self.exec.chunks.load(Ordering::Relaxed)),
            ("kmatch_exec_chunks_stolen_total", "Chunks taken from another worker's deque", self.exec.chunks_stolen.load(Ordering::Relaxed)),
        ];
        for (name, help, v) in exec_rows {
            crate::prom::write_family_header(&mut out, name, "counter", help);
            let _ = writeln!(out, "{name} {v}");
        }
        let conformance: [(&str, &str, Option<f64>); 2] = [
            (
                "kmatch_theorem3_ratio",
                "Observed binding-run proposals / Theorem-3 bound (k-1)*n^2 (paper guarantees <= 1)",
                self.theorem3(),
            ),
            (
                "kmatch_proposals_vs_nlogn",
                "Observed GS proposals / Mertens ~n ln n expectation for random instances",
                self.nlogn(),
            ),
        ];
        for (name, help, v) in conformance {
            crate::prom::write_family_header(&mut out, name, "gauge", help);
            match v {
                Some(r) => {
                    let _ = writeln!(out, "{name} {r}");
                }
                None => {
                    let _ = writeln!(out, "{name} NaN");
                }
            }
        }
        let by_backend = self.backend_runs.lock().expect("live registry poisoned");
        for (family, count) in by_backend.iter() {
            crate::prom::write_family_header(
                &mut out,
                family,
                "counter",
                "Completed runs through this prefs backend",
            );
            let _ = writeln!(out, "{family} {count}");
        }
        out
    }
}

fn ratio_load(slot: &AtomicU64) -> Option<f64> {
    let bits = slot.load(Ordering::Relaxed);
    if bits == RATIO_UNSET {
        None
    } else {
        Some(f64::from_bits(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::report::StragglerWorker;
    use std::sync::Arc;

    #[test]
    fn absorb_accumulates_scalar_counters() {
        let live = LiveRegistry::new();
        let mut shard = SolverMetrics::new();
        shard.proposal();
        shard.proposal();
        shard.solve_done(true, 2);
        live.absorb(&shard);
        live.absorb(&shard);
        assert_eq!(live.counter("proposals"), Some(4));
        assert_eq!(live.counter("solves"), Some(2));
        assert_eq!(live.counter("nonsense"), None);
        assert_eq!(live.shards_absorbed(), 2);
    }

    #[test]
    fn conformance_formulas() {
        assert_eq!(theorem3_ratio(50, 100), Some(0.5));
        assert_eq!(theorem3_ratio(5, 0), None);
        assert_eq!(nlogn_ratio(10, 1, 1), None);
        assert_eq!(nlogn_ratio(10, 100, 0), None);
        let r = nlogn_ratio(1000, 100, 2).unwrap();
        assert!((r - 1000.0 / (2.0 * 100.0 * (100.0f64).ln())).abs() < 1e-12);
    }

    #[test]
    fn gauges_render_nan_until_observed() {
        let live = LiveRegistry::new();
        assert_eq!(live.theorem3(), None);
        let text = live.to_prometheus();
        assert!(text.contains("kmatch_theorem3_ratio NaN"));
        assert!(text.contains("kmatch_proposals_vs_nlogn NaN"));
        live.observe_theorem3(50, 200);
        live.observe_nlogn(800, 64, 3);
        assert_eq!(live.theorem3(), Some(0.25));
        assert!(live.nlogn().unwrap() > 0.0);
        let text = live.to_prometheus();
        assert!(text.contains("kmatch_theorem3_ratio 0.25"), "{text}");
        assert!(!text.contains("kmatch_theorem3_ratio NaN"));
        // Degenerate observations do not clobber a set gauge.
        live.observe_theorem3(1, 0);
        assert_eq!(live.theorem3(), Some(0.25));
    }

    #[test]
    fn straggler_aggregates_sum_workers() {
        let live = LiveRegistry::new();
        let section = StragglerSection {
            threads: 2,
            forced_steal: false,
            chunk_sizes: vec![2, 2],
            workers: vec![
                StragglerWorker {
                    worker: 0,
                    busy_ns: 100,
                    steal_ns: 5,
                    idle_ns: 0,
                    chunks_executed: 1,
                    chunks_stolen: 0,
                },
                StragglerWorker {
                    worker: 1,
                    busy_ns: 60,
                    steal_ns: 10,
                    idle_ns: 40,
                    chunks_executed: 1,
                    chunks_stolen: 1,
                },
            ],
        };
        live.absorb_straggler(&section);
        live.absorb_straggler(&section);
        let text = live.to_prometheus();
        assert!(text.contains("kmatch_exec_busy_ns_total 320"), "{text}");
        assert!(text.contains("kmatch_exec_steal_ns_total 30"));
        assert!(text.contains("kmatch_exec_idle_ns_total 80"));
        assert!(text.contains("kmatch_exec_chunks_total 4"));
        assert!(text.contains("kmatch_exec_chunks_stolen_total 2"));
    }

    #[test]
    fn backend_families_are_sanitized() {
        let live = LiveRegistry::new();
        live.observe_run("random", 123);
        live.observe_run("random", 456);
        live.observe_run("csr/mat-erialized\n", 1);
        assert_eq!(live.runs(), 3);
        let text = live.to_prometheus();
        assert!(text.contains("kmatch_backend_random_runs_total 2"), "{text}");
        assert!(text.contains("kmatch_backend_csr_mat_erialized__runs_total 1"), "{text}");
        assert!(text.contains("kmatch_live_runs_total 3"));
        assert!(text.contains("kmatch_live_last_run_wall_ns 1"));
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once(' ').expect("sample shape");
            assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'), "{name}");
            assert!(value.parse::<f64>().is_ok() || value == "NaN", "{value}");
        }
    }

    #[test]
    fn counter_families_end_in_total() {
        // The Prometheus convention the satellite audit pins: every
        // `# TYPE ... counter` family name must end in `_total`.
        let live = LiveRegistry::new();
        live.observe_run("random", 1);
        for line in live.to_prometheus().lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap();
                if parts.next() == Some("counter") {
                    assert!(name.ends_with("_total"), "counter family {name} lacks _total");
                }
            }
        }
    }

    #[test]
    fn concurrent_scrape_and_absorb() {
        let live = Arc::new(LiveRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let live = Arc::clone(&live);
                scope.spawn(move || {
                    for _ in 0..50 {
                        let mut shard = SolverMetrics::new();
                        shard.proposal();
                        live.absorb(&shard);
                    }
                });
            }
            let live = Arc::clone(&live);
            scope.spawn(move || {
                for _ in 0..20 {
                    let _ = live.to_prometheus();
                }
            });
        });
        assert_eq!(live.counter("proposals"), Some(200));
        assert_eq!(live.shards_absorbed(), 200);
    }
}
