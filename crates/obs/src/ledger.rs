//! The persistent run ledger: append-only JSONL provenance.
//!
//! Every solve/batch/bind/delta run can append one `kmatch.ledger/v1`
//! row to a ledger file (`--ledger-out` in the CLI): workload identity
//! (kind, content fingerprint, prefs backend, shape, seed), execution
//! context (threads, wall time), the merged scalar counters, executor
//! straggler aggregates, and the two paper-conformance ratios. Rows are
//! one compact JSON object per line, so the file greps, tails, and
//! appends like a log while each line validates like a
//! [`crate::RunReport`].
//!
//! Because solves are deterministic, two rows with the same fingerprint
//! produced by the same workload must carry identical counters — the
//! `kmatch ledger diff` subcommand (and [`diff_counters`] here) turns
//! that into a drift check: any nonzero counter delta between
//! same-fingerprint rows means the engines changed behaviour between
//! the two runs.

use std::io::{self, Write};
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize, Value};

use crate::metrics::{SolverMetrics, SCALAR_COUNTERS};
use crate::report::StragglerSection;

/// Schema tag carried by every ledger row.
pub const LEDGER_SCHEMA: &str = "kmatch.ledger/v1";

/// Executor straggler aggregates flattened for a ledger row: sums over
/// the per-worker accounting of one run's [`StragglerSection`], plus
/// the slowest worker's busy time (the straggler itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerStraggler {
    /// Workers the executor ran.
    pub threads: u64,
    /// Whether forced-steal stress mode was active.
    pub forced_steal: bool,
    /// Chunks executed (own + stolen) across all workers.
    pub chunks: u64,
    /// Of those, chunks stolen from another worker's deque.
    pub chunks_stolen: u64,
    /// Summed worker busy time.
    pub busy_ns: u64,
    /// Summed worker steal-sweep time.
    pub steal_ns: u64,
    /// Summed worker barrier-wait time.
    pub idle_ns: u64,
    /// Busy time of the slowest worker.
    pub max_busy_ns: u64,
}

serde::impl_json_struct!(LedgerStraggler {
    threads,
    forced_steal,
    chunks,
    chunks_stolen,
    busy_ns,
    steal_ns,
    idle_ns,
    max_busy_ns,
});

impl LedgerStraggler {
    /// Aggregate a run report's straggler section.
    pub fn from_section(section: &StragglerSection) -> Self {
        let mut agg = LedgerStraggler {
            threads: section.threads,
            forced_steal: section.forced_steal,
            ..LedgerStraggler::default()
        };
        for w in &section.workers {
            agg.chunks += w.chunks_executed;
            agg.chunks_stolen += w.chunks_stolen;
            agg.busy_ns += w.busy_ns;
            agg.steal_ns += w.steal_ns;
            agg.idle_ns += w.idle_ns;
            agg.max_busy_ns = agg.max_busy_ns.max(w.busy_ns);
        }
        agg
    }
}

/// One provenance row of the run ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRow {
    /// Always [`LEDGER_SCHEMA`].
    pub schema: String,
    /// Append time, milliseconds since the Unix epoch.
    pub ts_unix_ms: u64,
    /// Workload kind: `"gs"`, `"roommates"`, `"kary"`, `"delta"`, …
    pub kind: String,
    /// Content fingerprint of the workload (hex; two 64-bit lanes), or a
    /// descriptor fingerprint for implicit-oracle workloads whose rows
    /// are never materialized.
    pub fingerprint: String,
    /// Preference backend the run solved through (`"csr"`, `"random"`,
    /// `"score"`, …).
    pub backend: String,
    /// Members per side (or per gender).
    pub n: u64,
    /// Instances solved.
    pub instances: u64,
    /// RNG seed of the workload (0 when not applicable).
    pub seed: u64,
    /// Worker threads available to the run.
    pub threads: u64,
    /// Wall time of the whole run.
    pub wall_ns: u64,
    /// Merged scalar counters in [`SCALAR_COUNTERS`] order, serialized
    /// as a JSON object keyed by counter name.
    pub counters: Vec<(String, u64)>,
    /// Observed / Theorem-3 bound, for binding runs.
    pub theorem3_ratio: Option<f64>,
    /// Observed / Mertens ~`n ln n`, for GS runs.
    pub proposals_vs_nlogn: Option<f64>,
    /// Executor straggler aggregates, for batch runs.
    pub straggler: Option<LedgerStraggler>,
}

impl LedgerRow {
    /// Assemble a row from merged run metrics. The timestamp is stamped
    /// here from the system clock.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: &str,
        fingerprint: &str,
        backend: &str,
        n: u64,
        instances: u64,
        seed: u64,
        threads: u64,
        wall_ns: u64,
        metrics: &SolverMetrics,
    ) -> Self {
        let values = metrics.scalar_values();
        LedgerRow {
            schema: LEDGER_SCHEMA.to_string(),
            ts_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            kind: kind.to_string(),
            fingerprint: fingerprint.to_string(),
            backend: backend.to_string(),
            n,
            instances,
            seed,
            threads,
            wall_ns,
            counters: SCALAR_COUNTERS
                .iter()
                .zip(values)
                .map(|((name, _), v)| (name.to_string(), v))
                .collect(),
            theorem3_ratio: None,
            proposals_vs_nlogn: None,
            straggler: None,
        }
    }

    /// Attach the conformance ratios (builder style).
    pub fn with_conformance(mut self, theorem3: Option<f64>, nlogn: Option<f64>) -> Self {
        self.theorem3_ratio = theorem3;
        self.proposals_vs_nlogn = nlogn;
        self
    }

    /// Attach executor straggler aggregates (builder style).
    pub fn with_straggler(mut self, section: &StragglerSection) -> Self {
        self.straggler = Some(LedgerStraggler::from_section(section));
        self
    }

    /// Read one counter back by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The row as one compact JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("ledger serialization is infallible")
    }
}

impl Serialize for LedgerRow {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".into(), Value::String(self.schema.clone())),
            ("ts_unix_ms".into(), Value::Number(self.ts_unix_ms as f64)),
            ("kind".into(), Value::String(self.kind.clone())),
            ("fingerprint".into(), Value::String(self.fingerprint.clone())),
            ("backend".into(), Value::String(self.backend.clone())),
            ("n".into(), Value::Number(self.n as f64)),
            ("instances".into(), Value::Number(self.instances as f64)),
            ("seed".into(), Value::Number(self.seed as f64)),
            ("threads".into(), Value::Number(self.threads as f64)),
            ("wall_ns".into(), Value::Number(self.wall_ns as f64)),
            (
                "counters".into(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(name, v)| (name.clone(), Value::Number(*v as f64)))
                        .collect(),
                ),
            ),
            ("theorem3_ratio".into(), self.theorem3_ratio.to_value()),
            (
                "proposals_vs_nlogn".into(),
                self.proposals_vs_nlogn.to_value(),
            ),
            ("straggler".into(), self.straggler.to_value()),
        ])
    }
}

impl Deserialize for LedgerRow {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| serde::Error::msg(format!("missing field `{key}` in LedgerRow")))
        };
        let counters = match field("counters")? {
            Value::Object(fields) => fields
                .iter()
                .map(|(name, fv)| {
                    u64::from_value(fv)
                        .map(|v| (name.clone(), v))
                        .map_err(|e| serde::Error::msg(format!("counter `{name}`: {e}")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            other => {
                return Err(serde::Error::msg(format!(
                    "expected `counters` object, got {other:?}"
                )))
            }
        };
        let num = |key: &str| -> Result<u64, serde::Error> {
            u64::from_value(field(key)?)
                .map_err(|e| serde::Error::msg(format!("field `{key}` of LedgerRow: {e}")))
        };
        Ok(LedgerRow {
            schema: String::from_value(field("schema")?)?,
            ts_unix_ms: num("ts_unix_ms")?,
            kind: String::from_value(field("kind")?)?,
            fingerprint: String::from_value(field("fingerprint")?)?,
            backend: String::from_value(field("backend")?)?,
            n: num("n")?,
            instances: num("instances")?,
            seed: num("seed")?,
            threads: num("threads")?,
            wall_ns: num("wall_ns")?,
            counters,
            theorem3_ratio: Option::<f64>::from_value(field("theorem3_ratio")?)?,
            proposals_vs_nlogn: Option::<f64>::from_value(field("proposals_vs_nlogn")?)?,
            straggler: Option::<LedgerStraggler>::from_value(field("straggler")?)?,
        })
    }
}

/// Validate one JSONL line as a `kmatch.ledger/v1` row: JSON shape,
/// schema tag, non-empty fingerprint, and the numeric-field sanity the
/// shared number parser enforces (negative or overflowing counters and
/// nanosecond accounting are rejected at `u64` conversion).
pub fn validate_line(line: &str) -> Result<LedgerRow, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    match v.get("schema") {
        Some(Value::String(s)) if s == LEDGER_SCHEMA => {}
        Some(Value::String(s)) => {
            return Err(format!("schema mismatch: got {s:?}, expected {LEDGER_SCHEMA:?}"))
        }
        _ => return Err("missing `schema` key".to_string()),
    }
    let row = LedgerRow::from_value(&v).map_err(|e| e.to_string())?;
    if row.fingerprint.is_empty() {
        return Err("empty `fingerprint`".to_string());
    }
    if let Some(s) = &row.straggler {
        let span = s.busy_ns.checked_add(s.steal_ns).and_then(|x| x.checked_add(s.idle_ns));
        if span.is_none() {
            return Err("straggler accounting overflows u64".to_string());
        }
        if s.max_busy_ns > s.busy_ns {
            return Err(format!(
                "straggler max_busy_ns {} exceeds summed busy_ns {}",
                s.max_busy_ns, s.busy_ns
            ));
        }
        if s.chunks_stolen > s.chunks {
            return Err(format!(
                "straggler chunks_stolen {} exceeds chunks {}",
                s.chunks_stolen, s.chunks
            ));
        }
    }
    Ok(row)
}

/// Read and validate a whole ledger file, skipping blank lines. Errors
/// carry the 1-based line number.
pub fn read_ledger(path: &Path) -> Result<Vec<LedgerRow>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        rows.push(validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(rows)
}

/// Append one row to the ledger at `path`, creating parent directories
/// as needed. The write is a single `write_all` of one line, so
/// concurrent appenders interleave at line granularity on POSIX
/// append-mode files.
pub fn append_row(path: &Path, row: &LedgerRow) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut line = row.to_jsonl();
    line.push('\n');
    file.write_all(line.as_bytes())
}

/// Counter drift between two rows: `(name, b - a)` for every counter
/// whose value differs (counters present in only one row count as drift
/// from zero). Empty means the rows agree — the expected outcome for
/// two runs of the same fingerprint.
pub fn diff_counters(a: &LedgerRow, b: &LedgerRow) -> Vec<(String, i128)> {
    let mut out: Vec<(String, i128)> = Vec::new();
    for (name, av) in &a.counters {
        let bv = b.counter(name).unwrap_or(0);
        if bv != *av {
            out.push((name.clone(), bv as i128 - *av as i128));
        }
    }
    for (name, bv) in &b.counters {
        if a.counter(name).is_none() && *bv != 0 {
            out.push((name.clone(), *bv as i128));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::report::StragglerWorker;

    fn sample_metrics() -> SolverMetrics {
        let mut m = SolverMetrics::new();
        m.proposal();
        m.proposal();
        m.solve_done(true, 2);
        m
    }

    fn sample_row() -> LedgerRow {
        LedgerRow::new("gs", "deadbeef01234567", "csr", 16, 50, 1, 2, 987654, &sample_metrics())
    }

    #[test]
    fn row_round_trips_through_jsonl() {
        let section = StragglerSection {
            threads: 2,
            forced_steal: false,
            chunk_sizes: vec![25, 25],
            workers: vec![
                StragglerWorker {
                    worker: 0,
                    busy_ns: 500,
                    steal_ns: 10,
                    idle_ns: 0,
                    chunks_executed: 1,
                    chunks_stolen: 0,
                },
                StragglerWorker {
                    worker: 1,
                    busy_ns: 300,
                    steal_ns: 0,
                    idle_ns: 200,
                    chunks_executed: 1,
                    chunks_stolen: 1,
                },
            ],
        };
        let row = sample_row()
            .with_conformance(Some(0.25), Some(1.1))
            .with_straggler(&section);
        let line = row.to_jsonl();
        assert_eq!(line.lines().count(), 1, "one row is one line");
        let back = validate_line(&line).expect("round trip");
        assert_eq!(back, row);
        assert_eq!(back.counter("proposals"), Some(2));
        let agg = back.straggler.unwrap();
        assert_eq!(agg.busy_ns, 800);
        assert_eq!(agg.max_busy_ns, 500);
        assert_eq!(agg.chunks, 2);
        assert_eq!(agg.chunks_stolen, 1);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        assert!(validate_line("not json").is_err());
        let err = validate_line("{}").unwrap_err();
        assert!(err.contains("schema"), "{err}");
        let wrong = sample_row().to_jsonl().replace(LEDGER_SCHEMA, "kmatch.ledger/v9");
        assert!(validate_line(&wrong).unwrap_err().contains("mismatch"));
        // Negative accounting is rejected by the numeric parser.
        let row = sample_row();
        let negative = row.to_jsonl().replace("\"wall_ns\":987654", "\"wall_ns\":-5");
        let err = validate_line(&negative).unwrap_err();
        assert!(err.contains("wall_ns"), "{err}");
        let neg_counter = row.to_jsonl().replace("\"proposals\":2", "\"proposals\":-2");
        assert!(validate_line(&neg_counter).is_err());
        // Empty fingerprints are meaningless provenance.
        let blank = row.to_jsonl().replace("deadbeef01234567", "");
        assert!(validate_line(&blank).unwrap_err().contains("fingerprint"));
    }

    #[test]
    fn append_and_read_ledger() {
        let dir = std::env::temp_dir().join("kmatch-obs-ledger-test");
        let _ = std::fs::remove_dir_all(&dir);
        // Parent directories are created on demand.
        let path = dir.join("nested").join("runs.jsonl");
        append_row(&path, &sample_row()).unwrap();
        append_row(&path, &sample_row().with_conformance(None, Some(0.9))).unwrap();
        let rows = read_ledger(&path).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].proposals_vs_nlogn, Some(0.9));
        // A corrupt line is reported with its line number.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{\"schema\": \"garbage\"}\n")
            .unwrap();
        let err = read_ledger(&path).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_reports_counter_drift() {
        let a = sample_row();
        let b = sample_row();
        assert!(diff_counters(&a, &b).is_empty(), "identical rows have zero drift");
        let mut m = sample_metrics();
        m.proposal();
        let c = LedgerRow::new("gs", "deadbeef01234567", "csr", 16, 50, 1, 2, 987654, &m);
        let drift = diff_counters(&a, &c);
        assert_eq!(drift, vec![("proposals".to_string(), 1)]);
        let back = diff_counters(&c, &a);
        assert_eq!(back, vec![("proposals".to_string(), -1)]);
    }
}
