//! # kmatch-obs — zero-overhead solver observability
//!
//! PR 1/2 erased tracing from the hot paths via `Tracer`/`NoTrace`
//! monomorphization, which also made the paper's cost quantities —
//! Theorem 3's `(k−1)·n²` proposal bound, Irving's phase-1/phase-2
//! operation counts — invisible unless the slow traced path is run. This
//! crate restores visibility the standard production way: cheap always-on
//! counters and histograms with a compile-time zero-cost off switch.
//!
//! * [`Metrics`] — the hook set engines are generic over, monomorphized
//!   exactly like `Tracer`: the [`NoMetrics`] unit impl erases every call
//!   site (the default solver entry points use it, so their codegen is
//!   unchanged), while [`SolverMetrics`] is a plain struct of `u64`
//!   counters plus [`Log2Histogram`]s — increments only, no locks, no
//!   atomics, no allocation.
//! * [`BatchRegistry`] — the shard/merge discipline for the parallel batch
//!   front-ends: each worker accumulates into a private [`SolverMetrics`]
//!   shard and the shards are merged under one short lock **after** the
//!   batch completes, keeping the hot path free of synchronization.
//! * [`Clock`] — monotonic time injected at the front-end ([`StdClock`]
//!   in production, [`ManualClock`] in tests) so the engines themselves
//!   never read a clock.
//! * [`RunReport`] — the structured per-run artifact (instance shape,
//!   seed, outcome, counters, timing percentiles) the CLI and the bench
//!   emitters write, serialized to JSON or Prometheus text exposition
//!   format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod histogram;
pub mod metrics;
pub mod prom;
pub mod registry;
pub mod report;

pub use clock::{Clock, ManualClock, StdClock};
pub use histogram::Log2Histogram;
pub use metrics::{Metrics, NoMetrics, SolverMetrics};
pub use prom::{escape_label_value, label_pair, unescape_label_value};
pub use registry::BatchRegistry;
pub use report::{
    OverheadReport, RunReport, StragglerSection, StragglerWorker, TimingSummary, RUN_REPORT_SCHEMA,
};
