//! # kmatch-obs — zero-overhead solver observability
//!
//! PR 1/2 erased tracing from the hot paths via `Tracer`/`NoTrace`
//! monomorphization, which also made the paper's cost quantities —
//! Theorem 3's `(k−1)·n²` proposal bound, Irving's phase-1/phase-2
//! operation counts — invisible unless the slow traced path is run. This
//! crate restores visibility the standard production way: cheap always-on
//! counters and histograms with a compile-time zero-cost off switch.
//!
//! * [`Metrics`] — the hook set engines are generic over, monomorphized
//!   exactly like `Tracer`: the [`NoMetrics`] unit impl erases every call
//!   site (the default solver entry points use it, so their codegen is
//!   unchanged), while [`SolverMetrics`] is a plain struct of `u64`
//!   counters plus [`Log2Histogram`]s — increments only, no locks, no
//!   atomics, no allocation.
//! * [`BatchRegistry`] — the shard/merge discipline for the parallel batch
//!   front-ends: each worker accumulates into a private [`SolverMetrics`]
//!   shard and the shards are merged under one short lock **after** the
//!   batch completes, keeping the hot path free of synchronization.
//! * [`Clock`] — monotonic time injected at the front-end ([`StdClock`]
//!   in production, [`ManualClock`] in tests) so the engines themselves
//!   never read a clock.
//! * [`RunReport`] — the structured per-run artifact (instance shape,
//!   seed, outcome, counters, timing percentiles) the CLI and the bench
//!   emitters write, serialized to JSON or Prometheus text exposition
//!   format.
//! * [`LiveRegistry`] — the process-lifetime scrape layer: atomic
//!   counters/gauges a [`BatchRegistry`] built with
//!   [`BatchRegistry::with_live`] mirrors into at chunk boundaries, plus
//!   the Theorem-3 and Mertens `n ln n` conformance gauges the
//!   `kmatch serve` endpoint exports.
//! * [`ledger`] — the append-only `kmatch.ledger/v1` JSONL provenance
//!   log: one validated row per run, with counter-drift diffing between
//!   same-fingerprint rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod histogram;
pub mod ledger;
pub mod live;
pub mod metrics;
pub mod prom;
pub mod registry;
pub mod report;

pub use clock::{Clock, ManualClock, StdClock};
pub use histogram::Log2Histogram;
pub use ledger::{
    append_row, diff_counters, read_ledger, validate_line, LedgerRow, LedgerStraggler,
    LEDGER_SCHEMA,
};
pub use live::{nlogn_ratio, theorem3_ratio, LiveRegistry};
pub use metrics::{Metrics, NoMetrics, SolverMetrics, SCALAR_COUNTERS};
pub use prom::{
    escape_label_value, label_pair, sanitize_label_name, sanitize_metric_name,
    unescape_label_value,
};
pub use registry::BatchRegistry;
pub use report::{
    OverheadReport, RunReport, StragglerSection, StragglerWorker, TimingSummary, RUN_REPORT_SCHEMA,
};
