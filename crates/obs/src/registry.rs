//! Sharded metric aggregation for batch front-ends.
//!
//! The parallel batch drivers give every worker a thread-private
//! [`SolverMetrics`] shard; the hot path therefore performs plain `u64`
//! increments with **no atomics and no locks**. When a worker finishes its
//! chunk, the shard is absorbed into the registry under one short mutex —
//! synchronization cost is O(threads) per batch, not O(solves).

use std::sync::{Arc, Mutex};

use crate::live::LiveRegistry;
use crate::metrics::SolverMetrics;

/// Aggregation point for per-thread metric shards.
///
/// A registry is reusable across batches: counters keep accumulating until
/// [`BatchRegistry::take`] resets them. It is `Sync`, so batch drivers can
/// share one by reference across workers.
///
/// ```
/// use kmatch_obs::{BatchRegistry, Metrics, SolverMetrics};
///
/// let registry = BatchRegistry::new();
/// let mut shard = SolverMetrics::new();   // thread-private in a driver
/// shard.proposal();
/// registry.absorb(shard);                 // once, at batch completion
/// assert_eq!(registry.snapshot().proposals, 1);
/// ```
#[derive(Debug, Default)]
pub struct BatchRegistry {
    inner: Mutex<Inner>,
    /// Optional process-lifetime mirror: every absorbed shard is also
    /// added (relaxed atomics, still only at chunk boundaries) into the
    /// attached [`LiveRegistry`], so a scrape endpoint can watch the
    /// run without the hot path ever seeing an atomic.
    live: Option<Arc<LiveRegistry>>,
}

#[derive(Debug, Default)]
struct Inner {
    merged: SolverMetrics,
    shards_absorbed: u64,
}

impl BatchRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BatchRegistry::default()
    }

    /// A registry that forwards every absorbed shard into `live` — the
    /// scrape server's process-lifetime counters stay current at chunk
    /// granularity while [`BatchRegistry::take`] keeps its per-run
    /// drain semantics (taking does *not* reset the live mirror).
    pub fn with_live(live: Arc<LiveRegistry>) -> Self {
        BatchRegistry {
            live: Some(live),
            ..BatchRegistry::default()
        }
    }

    /// Merge a completed worker shard into the registry. Called once per
    /// worker per batch, after the worker's chunk is done — never from the
    /// solve hot path.
    pub fn absorb(&self, shard: SolverMetrics) {
        if let Some(live) = &self.live {
            live.absorb(&shard);
        }
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.merged.merge(&shard);
        inner.shards_absorbed += 1;
    }

    /// A copy of the merged metrics so far.
    pub fn snapshot(&self) -> SolverMetrics {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .merged
            .clone()
    }

    /// Drain the registry: returns the merged metrics and resets it to
    /// zero (for reuse across measurement windows).
    pub fn take(&self) -> SolverMetrics {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.shards_absorbed = 0;
        std::mem::take(&mut inner.merged)
    }

    /// Number of worker shards absorbed since creation or the last
    /// [`BatchRegistry::take`].
    pub fn shards_absorbed(&self) -> u64 {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .shards_absorbed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn absorb_merges_shards() {
        let reg = BatchRegistry::new();
        for _ in 0..3 {
            let mut shard = SolverMetrics::new();
            shard.proposal();
            shard.solve_done(true, 1);
            reg.absorb(shard);
        }
        let merged = reg.snapshot();
        assert_eq!(merged.proposals, 3);
        assert_eq!(merged.solves, 3);
        assert_eq!(reg.shards_absorbed(), 3);
    }

    #[test]
    fn take_drains_and_resets() {
        let reg = BatchRegistry::new();
        let mut shard = SolverMetrics::new();
        shard.proposal();
        reg.absorb(shard);
        let drained = reg.take();
        assert_eq!(drained.proposals, 1);
        assert_eq!(reg.snapshot(), SolverMetrics::default());
        assert_eq!(reg.shards_absorbed(), 0);
    }

    #[test]
    fn attached_live_registry_mirrors_absorbs() {
        let live = Arc::new(LiveRegistry::new());
        let reg = BatchRegistry::with_live(Arc::clone(&live));
        for _ in 0..3 {
            let mut shard = SolverMetrics::new();
            shard.proposal();
            shard.solve_done(true, 1);
            reg.absorb(shard);
        }
        assert_eq!(live.counter("proposals"), Some(3));
        assert_eq!(live.shards_absorbed(), 3);
        // Draining the batch registry leaves the process-lifetime
        // mirror untouched.
        let drained = reg.take();
        assert_eq!(drained.proposals, 3);
        assert_eq!(live.counter("proposals"), Some(3));
        // The next batch keeps accumulating in the mirror.
        let mut shard = SolverMetrics::new();
        shard.proposal();
        reg.absorb(shard);
        assert_eq!(live.counter("proposals"), Some(4));
        assert_eq!(reg.snapshot().proposals, 1);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = BatchRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut shard = SolverMetrics::new();
                    for _ in 0..100 {
                        shard.proposal();
                    }
                    reg.absorb(shard);
                });
            }
        });
        assert_eq!(reg.snapshot().proposals, 400);
        assert_eq!(reg.shards_absorbed(), 4);
    }
}
