//! Contract tests for the `straggler` section of `kmatch.run_report/v1`
//! and its aggregation into the live scrape layer.
//!
//! The section is produced by the work-stealing executor
//! (`kmatch-parallel`), but its schema lives here — these tests pin the
//! wire format: serde round-trip fidelity, validator rejection of
//! physically impossible idle accounting (negative or u64-overflowing
//! nanosecond values), and the worker-summed merge into
//! [`LiveRegistry`] across different worker counts.

use kmatch_obs::{
    LiveRegistry, RunReport, SolverMetrics, StragglerSection, StragglerWorker,
};
use serde::{Deserialize, Serialize};

/// A section with `threads` workers and recognizable per-worker values.
fn section(threads: u64) -> StragglerSection {
    StragglerSection {
        threads,
        forced_steal: threads > 1,
        chunk_sizes: (0..threads).map(|i| 8 + i).collect(),
        workers: (0..threads)
            .map(|i| StragglerWorker {
                worker: i,
                busy_ns: 100 * (i + 1),
                steal_ns: 10 * (i + 1),
                idle_ns: 5 * (i + 1),
                chunks_executed: 2 + i,
                chunks_stolen: i % 2,
            })
            .collect(),
    }
}

fn report_with_straggler(threads: u64) -> RunReport {
    let mut metrics = SolverMetrics::new();
    metrics.proposals = 37;
    RunReport::new("gs", 16, 4, 7, threads as usize, 424_242, metrics, None)
        .with_straggler(section(threads))
}

#[test]
fn straggler_section_round_trips_through_value_tree() {
    for threads in [1, 2, 7] {
        let original = section(threads);
        let back = StragglerSection::from_value(&original.to_value())
            .expect("straggler section must round-trip");
        assert_eq!(back, original, "threads={threads}");
    }
}

#[test]
fn straggler_section_round_trips_inside_a_run_report() {
    let report = report_with_straggler(2);
    let text = report.to_json_string();
    let tree = RunReport::validate_json_str(&text).expect("report must validate");
    let straggler = tree.get("straggler").expect("straggler key present");
    let back = StragglerSection::from_value(straggler).unwrap();
    assert_eq!(back, section(2));
}

#[test]
fn validator_rejects_negative_idle_accounting() {
    let text = report_with_straggler(1).to_json_string();
    // Worker 0 idle accounting is 5 * (0 + 1) = 5 ns; a negative value
    // is physically impossible and must fail u64 conversion.
    let hostile = text.replace("\"idle_ns\": 5", "\"idle_ns\": -5");
    assert_ne!(hostile, text, "substitution must have matched");
    let err = RunReport::validate_json_str(&hostile).unwrap_err();
    assert!(err.contains("straggler"), "{err}");
    assert!(err.contains("-5"), "{err}");
}

#[test]
fn validator_rejects_overflowing_idle_accounting() {
    let text = report_with_straggler(1).to_json_string();
    // ~9.9e19 exceeds u64::MAX (~1.8e19): the JSON parses (numbers are
    // f64) but the u64 field conversion must refuse it.
    let hostile = text.replace("\"idle_ns\": 5", "\"idle_ns\": 98765432109876543210");
    assert_ne!(hostile, text, "substitution must have matched");
    let err = RunReport::validate_json_str(&hostile).unwrap_err();
    assert!(err.contains("straggler"), "{err}");
}

#[test]
fn validator_accepts_reports_without_a_straggler_section() {
    let mut report = report_with_straggler(1);
    report.straggler = None;
    RunReport::validate_json_str(&report.to_json_string())
        .expect("the section is optional");
}

#[test]
fn live_registry_merges_sections_across_worker_counts() {
    let live = LiveRegistry::new();
    let mut want_busy = 0u64;
    let mut want_steal = 0u64;
    let mut want_idle = 0u64;
    let mut want_chunks = 0u64;
    let mut want_stolen = 0u64;
    for threads in [1u64, 2, 7] {
        let s = section(threads);
        for w in &s.workers {
            want_busy += w.busy_ns;
            want_steal += w.steal_ns;
            want_idle += w.idle_ns;
            want_chunks += w.chunks_executed;
            want_stolen += w.chunks_stolen;
        }
        live.absorb_straggler(&s);
    }
    let prom = live.to_prometheus();
    for (family, want) in [
        ("kmatch_exec_busy_ns_total", want_busy),
        ("kmatch_exec_steal_ns_total", want_steal),
        ("kmatch_exec_idle_ns_total", want_idle),
        ("kmatch_exec_chunks_total", want_chunks),
        ("kmatch_exec_chunks_stolen_total", want_stolen),
    ] {
        let line = format!("{family} {want}");
        assert!(prom.contains(&line), "missing {line:?} in:\n{prom}");
    }
}
