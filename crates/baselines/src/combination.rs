//! Combination-preference three-dimensional stable matching.
//!
//! "In (ref. 4), the preference order is defined as one gender against the
//! combination of all the remaining genders … each member of a gender has
//! a preference order for all combination of the other two genders, which
//! have n² combinations" (§I). Deciding existence is NP-complete (refs. 4, 5);
//! we store the n² rankings densely and solve exactly by enumeration for
//! small `n` — the baseline against which the paper's always-solvable
//! model is compared (experiment T16).
//!
//! Note the representational cost alone: each member stores `n²` entries
//! versus the paper's `2n` ("separate orders … one for each gender",
//! §I) — quadratic versus linear per member.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::triple::{for_each_matching, TripleMatching};

/// A combination-preference instance: every member of each gender ranks
/// all `n²` ordered pairs of the other two genders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinationInstance {
    n: usize,
    /// `rank_a[a][b * n + c]` — rank of pair `(b, c)` for A-member `a`.
    rank_a: Vec<u32>,
    /// `rank_b[b][a * n + c]` — rank of pair `(a, c)` for B-member `b`.
    rank_b: Vec<u32>,
    /// `rank_c[c][a * n + b]` — rank of pair `(a, b)` for C-member `c`.
    rank_c: Vec<u32>,
}

impl CombinationInstance {
    /// Build from per-member pair orders: `a_lists[a]` is a permutation of
    /// pair codes `b·n + c`, and analogously for the other genders.
    pub fn from_lists(a_lists: &[Vec<u32>], b_lists: &[Vec<u32>], c_lists: &[Vec<u32>]) -> Self {
        let n = a_lists.len();
        assert!(
            n > 0 && b_lists.len() == n && c_lists.len() == n,
            "balanced instance"
        );
        let invert = |lists: &[Vec<u32>]| -> Vec<u32> {
            let mut rank = vec![0u32; n * n * n];
            for (i, list) in lists.iter().enumerate() {
                assert_eq!(list.len(), n * n, "pair lists have n^2 entries");
                for (r, &code) in list.iter().enumerate() {
                    rank[i * n * n + code as usize] = r as u32;
                }
            }
            rank
        };
        CombinationInstance {
            n,
            rank_a: invert(a_lists),
            rank_b: invert(b_lists),
            rank_c: invert(c_lists),
        }
    }

    /// Uniform-random instance.
    pub fn random(n: usize, rng: &mut impl Rng) -> Self {
        let fam = |rng: &mut dyn rand::RngCore| -> Vec<Vec<u32>> {
            (0..n)
                .map(|_| {
                    let mut v: Vec<u32> = (0..(n * n) as u32).collect();
                    v.shuffle(rng);
                    v
                })
                .collect()
        };
        let (a, b, c) = (fam(rng), fam(rng), fam(rng));
        CombinationInstance::from_lists(&a, &b, &c)
    }

    /// Members per gender.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn code(&self, x: u32, y: u32) -> usize {
        x as usize * self.n + y as usize
    }

    /// Rank A-member `a` assigns to partner pair `(b, c)`.
    #[inline]
    pub fn rank_a(&self, a: u32, b: u32, c: u32) -> u32 {
        self.rank_a[a as usize * self.n * self.n + self.code(b, c)]
    }

    /// Rank B-member `b` assigns to partner pair `(a, c)`.
    #[inline]
    pub fn rank_b(&self, b: u32, a: u32, c: u32) -> u32 {
        self.rank_b[b as usize * self.n * self.n + self.code(a, c)]
    }

    /// Rank C-member `c` assigns to partner pair `(a, b)`.
    #[inline]
    pub fn rank_c(&self, c: u32, a: u32, b: u32) -> u32 {
        self.rank_c[c as usize * self.n * self.n + self.code(a, b)]
    }
}

/// Find a blocking triple: `(a, b, c)` not currently a triple where every
/// member strictly prefers the new pair of partners to its current pair.
pub fn find_combination_blocking_triple(
    inst: &CombinationInstance,
    m: &TripleMatching,
) -> Option<(u32, u32, u32)> {
    let n = inst.n() as u32;
    for a in 0..n {
        let (cur_b, cur_c) = (m.b_of_a[a as usize], m.c_of_a[a as usize]);
        let cur_rank_a = inst.rank_a(a, cur_b, cur_c);
        for b in 0..n {
            let a_of_b = m.a_of_b(b);
            let b_cur = (a_of_b, m.c_of_a[a_of_b as usize]);
            for c in 0..n {
                if b == cur_b && c == cur_c {
                    continue; // the existing triple
                }
                if inst.rank_a(a, b, c) >= cur_rank_a {
                    continue;
                }
                if inst.rank_b(b, a, c) >= inst.rank_b(b, b_cur.0, b_cur.1) {
                    continue;
                }
                let a_of_c = m.a_of_c(c);
                let c_cur = (a_of_c, m.b_of_a[a_of_c as usize]);
                if inst.rank_c(c, a, b) < inst.rank_c(c, c_cur.0, c_cur.1) {
                    return Some((a, b, c));
                }
            }
        }
    }
    None
}

/// Is the matching stable under combined preferences?
pub fn is_combination_stable(inst: &CombinationInstance, m: &TripleMatching) -> bool {
    find_combination_blocking_triple(inst, m).is_none()
}

/// Exact solver by enumeration of all `(n!)²` matchings; returns a stable
/// matching (or `None`) and the number of matchings inspected.
pub fn solve_combination_exact(inst: &CombinationInstance) -> (Option<TripleMatching>, u64) {
    let mut found = None;
    let mut inspected = 0u64;
    for_each_matching(inst.n(), |m| {
        inspected += 1;
        if is_combination_stable(inst, m) {
            found = Some(m.clone());
            true
        } else {
            false
        }
    });
    (found, inspected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn aligned_pairs_identity_stable() {
        // Everyone ranks pair (i, i) first when they are member i: build
        // lists where member i puts code i*n+i first, rest ascending.
        let n = 3usize;
        let fam: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let favorite = (i * n + i) as u32;
                std::iter::once(favorite)
                    .chain((0..(n * n) as u32).filter(|&x| x != favorite))
                    .collect()
            })
            .collect();
        let inst = CombinationInstance::from_lists(&fam, &fam, &fam);
        let m = TripleMatching::new(vec![0, 1, 2], vec![0, 1, 2]);
        assert!(
            is_combination_stable(&inst, &m),
            "everyone has their favorite pair"
        );
    }

    #[test]
    fn existence_usually_holds_at_small_n() {
        // NP-completeness is about worst cases; random small instances are
        // almost always solvable — measure and require a majority.
        let mut rng = ChaCha8Rng::seed_from_u64(121);
        let mut solved = 0;
        for _ in 0..20 {
            let inst = CombinationInstance::random(3, &mut rng);
            let (found, _) = solve_combination_exact(&inst);
            if let Some(m) = &found {
                assert!(is_combination_stable(&inst, m));
                solved += 1;
            }
        }
        assert!(
            solved >= 10,
            "most random n=3 instances should be solvable, got {solved}"
        );
    }

    #[test]
    fn blocking_triple_detected() {
        // Construct an instance where the identity matching is blocked:
        // a=0 ranks (1, 1) above everything, and b=1, c=1 both rank
        // pairings with 0 top.
        let n = 2usize;
        let mk = |first: u32| -> Vec<u32> {
            std::iter::once(first)
                .chain((0..(n * n) as u32).filter(|&x| x != first))
                .collect()
        };
        // Codes: (b, c) -> b*2 + c.
        let a_lists = vec![mk(3), mk(0)]; // a0 wants (1,1); a1 wants (0,0)
        let b_lists = vec![mk(0), mk(1)]; // b0 wants (a0,c0); b1 wants (a0,c1)
        let c_lists = vec![mk(0), mk(1)]; // c0 wants (a0,b0); c1 wants (a0,b1)
        let inst = CombinationInstance::from_lists(&a_lists, &b_lists, &c_lists);
        let identity = TripleMatching::new(vec![0, 1], vec![0, 1]);
        // (a0, b1, c1): a0 gets its favorite pair; b1 gets (a0, c1) = its
        // favorite; c1 gets (a0, b1) = its favorite. Blocks.
        assert_eq!(
            find_combination_blocking_triple(&inst, &identity),
            Some((0, 1, 1))
        );
    }

    #[test]
    fn inspected_counts_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(122);
        let inst = CombinationInstance::random(3, &mut rng);
        let (_, inspected) = solve_combination_exact(&inst);
        assert!(inspected <= 36, "(3!)^2 = 36");
    }
}
