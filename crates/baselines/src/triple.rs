//! Matchings of triples over three balanced genders.

/// A perfect matching of `n` triples `(a_i, b_i, c_i)`: one member of each
/// of the three genders per triple. Stored as two permutations relative to
/// gender 0: triple `i` is `(i, b_of_a[i], c_of_a[i])`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TripleMatching {
    /// Gender-1 member matched with gender-0 member `i`.
    pub b_of_a: Vec<u32>,
    /// Gender-2 member matched with gender-0 member `i`.
    pub c_of_a: Vec<u32>,
}

impl TripleMatching {
    /// Build from the two permutations, validating both.
    ///
    /// # Panics
    /// If either array is not a permutation of `0..n`.
    pub fn new(b_of_a: Vec<u32>, c_of_a: Vec<u32>) -> Self {
        let n = b_of_a.len();
        assert_eq!(c_of_a.len(), n, "arity mismatch");
        for arr in [&b_of_a, &c_of_a] {
            let mut seen = vec![false; n];
            for &x in arr.iter() {
                assert!(
                    !std::mem::replace(&mut seen[x as usize], true),
                    "not a permutation"
                );
            }
        }
        TripleMatching { b_of_a, c_of_a }
    }

    /// Number of triples.
    pub fn n(&self) -> usize {
        self.b_of_a.len()
    }

    /// Gender-0 member in the triple containing gender-1 member `b`.
    pub fn a_of_b(&self, b: u32) -> u32 {
        self.b_of_a
            .iter()
            .position(|&x| x == b)
            .expect("permutation") as u32
    }

    /// Gender-0 member in the triple containing gender-2 member `c`.
    pub fn a_of_c(&self, c: u32) -> u32 {
        self.c_of_a
            .iter()
            .position(|&x| x == c)
            .expect("permutation") as u32
    }

    /// The triples `(a, b, c)`.
    pub fn triples(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (0..self.n() as u32).map(|a| (a, self.b_of_a[a as usize], self.c_of_a[a as usize]))
    }
}

/// Visit every `TripleMatching` on `n` members per gender
/// (`(n!)²` of them — small `n` only).
pub fn for_each_matching(n: usize, mut visit: impl FnMut(&TripleMatching) -> bool) {
    let mut b: Vec<u32> = (0..n as u32).collect();
    let mut c: Vec<u32> = (0..n as u32).collect();
    // Heap's-algorithm-free approach: recursive permutation of both arrays.
    fn perms(arr: &mut [u32], i: usize, f: &mut impl FnMut(&[u32]) -> bool) -> bool {
        if i == arr.len() {
            return f(arr);
        }
        for j in i..arr.len() {
            arr.swap(i, j);
            if perms(arr, i + 1, f) {
                arr.swap(i, j);
                return true;
            }
            arr.swap(i, j);
        }
        false
    }
    let mut stop = false;
    let c_ref = &mut c;
    perms(&mut b, 0, &mut |bp: &[u32]| {
        let bp = bp.to_vec();
        perms(c_ref, 0, &mut |cp: &[u32]| {
            let m = TripleMatching {
                b_of_a: bp.clone(),
                c_of_a: cp.to_vec(),
            };
            if visit(&m) {
                stop = true;
            }
            stop
        });
        stop
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let m = TripleMatching::new(vec![1, 0], vec![0, 1]);
        assert_eq!(m.a_of_b(1), 0);
        assert_eq!(m.a_of_c(1), 1);
        assert_eq!(m.triples().collect::<Vec<_>>(), vec![(0, 1, 0), (1, 0, 1)]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_duplicates() {
        let _ = TripleMatching::new(vec![0, 0], vec![0, 1]);
    }

    #[test]
    fn enumeration_counts() {
        // (n!)² matchings.
        for (n, expected) in [(1usize, 1usize), (2, 4), (3, 36)] {
            let mut count = 0;
            for_each_matching(n, |_| {
                count += 1;
                false
            });
            assert_eq!(count, expected, "n = {n}");
        }
    }

    #[test]
    fn enumeration_early_stop() {
        let mut count = 0;
        for_each_matching(3, |_| {
            count += 1;
            count == 5
        });
        assert_eq!(count, 5, "visitor can stop the sweep");
    }
}
