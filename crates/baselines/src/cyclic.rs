//! Cyclic three-dimensional stable matching (c3sm).
//!
//! "In another variation (ref. 4), the preference rating is cyclic among
//! genders" (§I): gender A ranks only gender B, B only C, C only A. A
//! triple `(a, b, c)` **blocks** matching `M` when `a` strictly prefers
//! `b` to his current B-partner, `b` strictly prefers `c` to her current
//! C-partner, and `c` strictly prefers `a` to its current A-partner.
//!
//! Whether a stable matching always exists is a famous open problem
//! (known for `n ≤ 3`; variants NP-complete (ref. 5)). We provide an exact
//! `(n!)²` solver for small `n` and a random-restart local search used by
//! the baseline comparison experiment (T16).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::triple::{for_each_matching, TripleMatching};

/// A cyclic-preference tripartite instance: `prefs_ab[a]` is `a`'s order
/// over gender B, `prefs_bc[b]` over gender C, `prefs_ca[c]` over gender A.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CyclicInstance {
    n: usize,
    rank_ab: Vec<u32>,
    rank_bc: Vec<u32>,
    rank_ca: Vec<u32>,
}

impl CyclicInstance {
    /// Build from the three list families (each a set of `n` permutations
    /// of `0..n`).
    pub fn from_lists(ab: &[Vec<u32>], bc: &[Vec<u32>], ca: &[Vec<u32>]) -> Self {
        let n = ab.len();
        assert!(
            n > 0 && bc.len() == n && ca.len() == n,
            "balanced instance required"
        );
        let invert = |lists: &[Vec<u32>]| -> Vec<u32> {
            let mut rank = vec![0u32; n * n];
            for (i, list) in lists.iter().enumerate() {
                assert_eq!(list.len(), n, "complete lists required");
                for (r, &x) in list.iter().enumerate() {
                    rank[i * n + x as usize] = r as u32;
                }
            }
            rank
        };
        CyclicInstance {
            n,
            rank_ab: invert(ab),
            rank_bc: invert(bc),
            rank_ca: invert(ca),
        }
    }

    /// Uniform-random instance.
    pub fn random(n: usize, rng: &mut impl Rng) -> Self {
        let perm = |rng: &mut dyn rand::RngCore| {
            let mut v: Vec<u32> = (0..n as u32).collect();
            v.shuffle(rng);
            v
        };
        let fam =
            |rng: &mut dyn rand::RngCore| -> Vec<Vec<u32>> { (0..n).map(|_| perm(rng)).collect() };
        let (ab, bc, ca) = (fam(rng), fam(rng), fam(rng));
        CyclicInstance::from_lists(&ab, &bc, &ca)
    }

    /// Members per gender.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rank of B-member `b` for A-member `a` (0 = best).
    #[inline]
    pub fn rank_ab(&self, a: u32, b: u32) -> u32 {
        self.rank_ab[a as usize * self.n + b as usize]
    }

    /// Rank of C-member `c` for B-member `b`.
    #[inline]
    pub fn rank_bc(&self, b: u32, c: u32) -> u32 {
        self.rank_bc[b as usize * self.n + c as usize]
    }

    /// Rank of A-member `a` for C-member `c`.
    #[inline]
    pub fn rank_ca(&self, c: u32, a: u32) -> u32 {
        self.rank_ca[c as usize * self.n + a as usize]
    }
}

/// Find a blocking triple of `m`, scanning lexicographically.
pub fn find_cyclic_blocking_triple(
    inst: &CyclicInstance,
    m: &TripleMatching,
) -> Option<(u32, u32, u32)> {
    let n = inst.n() as u32;
    for a in 0..n {
        let cur_b = m.b_of_a[a as usize];
        for b in 0..n {
            if inst.rank_ab(a, b) >= inst.rank_ab(a, cur_b) {
                continue;
            }
            // b's current C-partner.
            let a_of_b = m.a_of_b(b);
            let cur_c = m.c_of_a[a_of_b as usize];
            for c in 0..n {
                if inst.rank_bc(b, c) >= inst.rank_bc(b, cur_c) {
                    continue;
                }
                let a_of_c = m.a_of_c(c);
                if inst.rank_ca(c, a) < inst.rank_ca(c, a_of_c) {
                    return Some((a, b, c));
                }
            }
        }
    }
    None
}

/// Is the matching stable (no cyclic blocking triple)?
pub fn is_cyclic_stable(inst: &CyclicInstance, m: &TripleMatching) -> bool {
    find_cyclic_blocking_triple(inst, m).is_none()
}

/// Exact solver: enumerate all `(n!)²` matchings and return a stable one
/// (or `None`). Also returns how many matchings were inspected.
pub fn solve_cyclic_exact(inst: &CyclicInstance) -> (Option<TripleMatching>, u64) {
    let mut found = None;
    let mut inspected = 0u64;
    for_each_matching(inst.n(), |m| {
        inspected += 1;
        if is_cyclic_stable(inst, m) {
            found = Some(m.clone());
            true
        } else {
            false
        }
    });
    (found, inspected)
}

/// Random-restart local search: start from random matchings and greedily
/// satisfy blocking triples (re-wiring the three members into one triple
/// and patching the remainder) until stable or out of budget.
pub fn local_search_cyclic(
    inst: &CyclicInstance,
    restarts: usize,
    max_steps: usize,
    rng: &mut impl Rng,
) -> Option<TripleMatching> {
    let n = inst.n();
    for _ in 0..restarts {
        let mut b: Vec<u32> = (0..n as u32).collect();
        let mut c: Vec<u32> = (0..n as u32).collect();
        b.shuffle(rng);
        c.shuffle(rng);
        let mut m = TripleMatching::new(b, c);
        for _ in 0..max_steps {
            let Some((a, bb, cc)) = find_cyclic_blocking_triple(inst, &m) else {
                return Some(m);
            };
            // Satisfy the blockers: (a, bb, cc) become one triple; the
            // displaced partners swap into the vacated slots.
            let a_of_bb = m.a_of_b(bb);
            let old_b_of_a = m.b_of_a[a as usize];
            m.b_of_a[a as usize] = bb;
            m.b_of_a[a_of_bb as usize] = old_b_of_a;
            let a_of_cc = m.a_of_c(cc);
            let old_c_of_a = m.c_of_a[a as usize];
            m.c_of_a[a as usize] = cc;
            m.c_of_a[a_of_cc as usize] = old_c_of_a;
        }
        if is_cyclic_stable(inst, &m) {
            return Some(m);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn aligned_instance_identity_is_stable() {
        // Everyone ranks by index: triples (i, i, i) are everyone's top
        // available choice — stable.
        let asc: Vec<Vec<u32>> = (0..3).map(|_| (0..3u32).collect()).collect();
        let inst = CyclicInstance::from_lists(&asc, &asc, &asc);
        let m = TripleMatching::new(vec![0, 1, 2], vec![0, 1, 2]);
        assert!(is_cyclic_stable(&inst, &m));
        // A shifted matching is blocked. First witness in scan order:
        // a=1 prefers b=1 over its current b=2; b=1 (whose triple is
        // (0, 1, 1)) prefers c=0 over c=1; c=0 (in triple (2, 0, 0))
        // prefers a=1 over a=2.
        let bad = TripleMatching::new(vec![1, 2, 0], vec![1, 2, 0]);
        assert_eq!(find_cyclic_blocking_triple(&inst, &bad), Some((1, 1, 0)));
        assert!(!is_cyclic_stable(&inst, &bad));
    }

    #[test]
    fn exact_solver_small_instances() {
        // n <= 3: stable matchings are known to always exist for cyclic
        // preferences (Boros et al.); our exhaustive search must agree.
        let mut rng = ChaCha8Rng::seed_from_u64(111);
        for n in [2usize, 3] {
            for _ in 0..20 {
                let inst = CyclicInstance::random(n, &mut rng);
                let (found, inspected) = solve_cyclic_exact(&inst);
                let m = found.expect("n <= 3 cyclic instances are always solvable");
                assert!(is_cyclic_stable(&inst, &m));
                assert!(inspected <= ((1..=n as u64).product::<u64>()).pow(2));
            }
        }
    }

    #[test]
    fn local_search_agrees_with_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(112);
        for _ in 0..10 {
            let inst = CyclicInstance::random(3, &mut rng);
            let (exact, _) = solve_cyclic_exact(&inst);
            let ls = local_search_cyclic(&inst, 20, 200, &mut rng);
            // Exact always finds one at n = 3; local search should too
            // (with this budget), and its output must be stable.
            assert!(exact.is_some());
            let m = ls.expect("local search with 20 restarts finds it");
            assert!(is_cyclic_stable(&inst, &m));
        }
    }

    #[test]
    fn local_search_output_always_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(113);
        let inst = CyclicInstance::random(5, &mut rng);
        if let Some(m) = local_search_cyclic(&inst, 10, 500, &mut rng) {
            assert!(is_cyclic_stable(&inst, &m));
            assert_eq!(m.n(), 5);
        }
    }
}
