//! # kmatch-baselines — the multi-dimensional SMP models the paper
//! contrasts with
//!
//! §I of the paper positions its k-ary model against the existing
//! three-dimensional extensions of Ng & Hirschberg (ref. 4) and Huang (ref. 5):
//!
//! * [`cyclic`] — **cyclic preferences**: gender 0 ranks only gender 1,
//!   gender 1 only gender 2, gender 2 only gender 0. A matching of
//!   triples is blocked by a triple each of whose members strictly
//!   improves along the cycle. Deciding existence is NP-complete in
//!   general (Huang); we provide an exact exponential solver for small `n`
//!   plus a restart local-search heuristic.
//! * [`combination`] — **combined preferences**: each member of a gender
//!   totally orders all `n²` *pairs* of the other two genders. Blocking
//!   triples need all three members to prefer the new triple. Also
//!   NP-complete in general; exact solver for small `n`.
//!
//! The experiment harness (table T16) contrasts both with the paper's
//! model, where stable k-ary matchings **always** exist and are found in
//! `O((k−1)n²)` time (Theorems 2–3) — the paper's core selling point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combination;
pub mod cyclic;
pub mod triple;

pub use combination::{solve_combination_exact, CombinationInstance};
pub use cyclic::{
    find_cyclic_blocking_triple, is_cyclic_stable, local_search_cyclic, solve_cyclic_exact,
    CyclicInstance,
};
pub use triple::TripleMatching;
