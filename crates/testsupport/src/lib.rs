//! Shared test-support utilities for the kmatch workspace.
//!
//! The workspace's library crates `#![forbid(unsafe_code)]`; the one
//! `unsafe` block the test and bench infrastructure legitimately needs —
//! a byte-counting [`GlobalAlloc`] wrapper — lives here exactly once.
//! The gs/roommates/trace zero-allocation suites and the JSON bench
//! emitters used to each carry their own copy (the bench bins shared one
//! by `#[path]` inclusion); now they all consume [`CountingAlloc`].
//!
//! A consumer installs the counter with two lines of *safe* code:
//!
//! ```
//! use kmatch_testsupport::{bytes_allocated_in, CountingAlloc};
//!
//! #[global_allocator]
//! static COUNTER: CountingAlloc = CountingAlloc;
//!
//! let bytes = bytes_allocated_in(&mut || drop(Vec::<u8>::with_capacity(64)));
//! assert!(bytes >= 64);
//! ```
//!
//! Declaring the `#[global_allocator]` static stays at each root (a
//! program admits only one, and not every binary in a crate wants its
//! allocator wrapped), but the `unsafe impl` is no longer duplicated.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Counting allocator: delegates to [`System`] and adds every request to
/// two thread-local *gross* tallies — bytes requested and allocation
/// events. Frees are never subtracted, so a measurement bounds peak and
/// churn together, and other threads cannot pollute it.
pub struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counters are
// plain thread-local adds that perform no allocation of their own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = BYTES.try_with(|c| c.set(c.get() + layout.size() as u64));
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = BYTES.try_with(|c| c.set(c.get() + new_size as u64));
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Gross bytes requested from the allocator by `f` on this thread — the
/// `kmatch_bench::scaling::BytesHook` shape the scaling points expect.
/// Reads zero unless a [`CountingAlloc`] is installed as the program's
/// `#[global_allocator]`.
pub fn bytes_allocated_in(f: &mut dyn FnMut()) -> u64 {
    let before = BYTES.with(Cell::get);
    f();
    BYTES.with(Cell::get) - before
}

/// [`bytes_allocated_in`] for a one-shot closure — the ergonomic form
/// the test suites use.
pub fn bytes_in(f: impl FnOnce()) -> u64 {
    let before = BYTES.with(Cell::get);
    f();
    BYTES.with(Cell::get) - before
}

/// Allocation *events* performed by `f` on this thread (the
/// zero-steady-state-allocation suites count events, not bytes: "at most
/// two allocations per solve" is the matching's two partner arrays).
pub fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}
