//! Shared n-scaling generator for the implicit-oracle substrate.
//!
//! One code path produces both the `scaling` series committed in
//! `results/BENCH_gs.json` / `results/BENCH_roommates.json` (gated by
//! `bench_diff`) and the `gs_scaling.csv` sweep behind the experiment
//! tables — so the two can never drift apart.
//!
//! Each point prepares a preference backend (unmeasured), then times
//! `reps` fresh-workspace solves and keeps the minimum wall time. The
//! first solve also runs under a byte-counting hook: allocation is
//! deterministic, so one measurement suffices, and recording it per row
//! puts the O(n) memory claim of the oracle substrate under the
//! regression gate. The byte-counting `GlobalAlloc` itself lives in the
//! bench *binaries* — this library forbids `unsafe` — and is passed in
//! as [`BytesHook`].

use std::time::Instant;

use kmatch_gs::{GsStats, GsWorkspace};
use kmatch_prefs::gen::uniform::uniform_bipartite;
use kmatch_prefs::{CsrPrefs, PrefOracle, RandomPermOracle, RoommatesOracleView, ScoreOracle};
use kmatch_roommates::RoommatesWorkspace;
use serde::impl_json_struct;

use crate::rng;

/// Runs a closure and reports the gross bytes it allocated on this
/// thread. Supplied by the binary that owns the counting allocator.
pub type BytesHook<'a> = &'a mut dyn FnMut(&mut dyn FnMut()) -> u64;

/// Preference backend of one GS scaling point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsBackend {
    /// Materialized uniform lists compiled to a CSR arena — Θ(n²) memory,
    /// the explicit-table baseline the oracles are measured against.
    Csr,
    /// Seeded Feistel random-permutation oracle — O(1) memory.
    Random,
    /// Popularity score oracle (global order + seeded tie-break) — O(n)
    /// memory. Identical lists make GS a serial dictatorship, so this
    /// backend pins the Θ(n²)-proposal corner of the substrate.
    Scores,
}

impl GsBackend {
    /// Stable row label (matches the CLI's `--prefs` values).
    pub fn name(self) -> &'static str {
        match self {
            GsBackend::Csr => "csr",
            GsBackend::Random => "random",
            GsBackend::Scores => "scores",
        }
    }
}

/// One point of the GS n-scaling series.
#[derive(Debug, Clone)]
pub struct GsScalingRow {
    /// Agents per side.
    pub n: usize,
    /// Backend label (`csr` | `random` | `scores`).
    pub backend: String,
    /// Construction seed.
    pub seed: u64,
    /// Total proposals of the solve (deterministic per backend + seed).
    pub proposals: u64,
    /// Rounds of the solve.
    pub rounds: u64,
    /// Minimum wall time over the timed reps, fresh workspace per solve.
    pub solve_ns: f64,
    /// Gross bytes allocated by one fresh-workspace solve.
    pub alloc_bytes: u64,
    /// `proposals / (n ln n)` — Mertens' asymptotic says ≈ 1 for uniform
    /// random lists; the serial-dictatorship corner (`scores`) grows
    /// like n / ln n instead.
    pub nlogn_ratio: f64,
}

impl_json_struct!(GsScalingRow {
    n,
    backend,
    seed,
    proposals,
    rounds,
    solve_ns,
    alloc_bytes,
    nlogn_ratio,
});

/// One point of the roommates n-scaling series: Irving driven through
/// the lazy §III-B [`RoommatesOracleView`] over a random-permutation
/// oracle — the doubled instance is never materialized.
#[derive(Debug, Clone)]
pub struct RoommatesScalingRow {
    /// Agents per side of the underlying bipartite oracle.
    pub n: usize,
    /// Participants in the doubled §III-B reduction (2n).
    pub participants: usize,
    /// Backend label.
    pub backend: String,
    /// Construction seed.
    pub seed: u64,
    /// Phase-1 proposals of the Irving solve.
    pub proposals: u64,
    /// Phase-2 rotations eliminated.
    pub rotations: u64,
    /// Minimum wall time over the timed reps, fresh workspace per solve.
    pub solve_ns: f64,
    /// Gross bytes allocated by one fresh-workspace solve.
    pub alloc_bytes: u64,
}

impl_json_struct!(RoommatesScalingRow {
    n,
    participants,
    backend,
    seed,
    proposals,
    rotations,
    solve_ns,
    alloc_bytes,
});

/// `n · ln n`, floored so tiny n cannot divide by ≤ 0.
pub fn nlogn(n: usize) -> f64 {
    let x = n as f64;
    x * x.ln().max(1.0)
}

/// Solve one GS scaling point. Backend construction is outside the
/// measurement; for `Random` at n ≥ 1024 the proposal count is
/// hard-checked against Mertens' ~n ln n (within [0.5×, 3×]) so a broken
/// oracle cannot silently regenerate plausible-looking baselines.
pub fn run_gs_point(
    backend: GsBackend,
    n: usize,
    seed: u64,
    reps: usize,
    bytes: BytesHook,
) -> GsScalingRow {
    let row = match backend {
        GsBackend::Csr => {
            let inst = uniform_bipartite(n, &mut rng(26_000 + seed));
            let csr = CsrPrefs::from_prefs(&inst);
            gs_point_over(backend, n, seed, reps, bytes, &csr)
        }
        GsBackend::Random => {
            gs_point_over(backend, n, seed, reps, bytes, &RandomPermOracle::new(n, seed))
        }
        GsBackend::Scores => {
            gs_point_over(backend, n, seed, reps, bytes, &ScoreOracle::popularity(n, seed))
        }
    };
    if backend == GsBackend::Random && n >= 1024 {
        assert!(
            (0.5..=3.0).contains(&row.nlogn_ratio),
            "random-oracle proposals {} at n = {n} are not ~n ln n (ratio {:.3})",
            row.proposals,
            row.nlogn_ratio
        );
    }
    row
}

fn gs_point_over<P: PrefOracle>(
    backend: GsBackend,
    n: usize,
    seed: u64,
    reps: usize,
    bytes: BytesHook,
    prefs: &P,
) -> GsScalingRow {
    assert!(reps >= 1, "need at least one timed rep");
    let mut stats = GsStats::default();
    let alloc_bytes = bytes(&mut || {
        let mut ws = GsWorkspace::new();
        stats = std::hint::black_box(ws.solve(prefs)).stats;
    });
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut ws = GsWorkspace::new();
        let t = Instant::now();
        let out = std::hint::black_box(ws.solve(prefs));
        best = best.min(t.elapsed().as_nanos() as f64);
        assert_eq!(out.stats, stats, "GS solve must be deterministic");
    }
    GsScalingRow {
        n,
        backend: backend.name().to_string(),
        seed,
        proposals: stats.proposals,
        rounds: u64::from(stats.rounds),
        solve_ns: best,
        alloc_bytes,
        nlogn_ratio: stats.proposals as f64 / nlogn(n),
    }
}

/// Solve one roommates scaling point through the lazy §III-B view over
/// a [`RandomPermOracle`] — 2n participants, zero materialized lists on
/// the way in (phase 1 walks the oracle; only the reduced table is
/// ever written down).
pub fn run_roommates_point(
    n: usize,
    seed: u64,
    reps: usize,
    bytes: BytesHook,
) -> RoommatesScalingRow {
    assert!(reps >= 1, "need at least one timed rep");
    let oracle = RandomPermOracle::new(n, seed);
    let view = RoommatesOracleView::new(&oracle);
    let mut proposals = 0u64;
    let mut rotations = 0u32;
    let alloc_bytes = bytes(&mut || {
        let out = std::hint::black_box(RoommatesWorkspace::new().solve(&view));
        let stats = out.stats();
        proposals = stats.proposals;
        rotations = stats.rotations;
        assert!(
            out.is_stable(),
            "the §III-B reduction is a marriage instance; it always solves"
        );
    });
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let out = std::hint::black_box(RoommatesWorkspace::new().solve(&view));
        best = best.min(t.elapsed().as_nanos() as f64);
        assert_eq!(out.stats().proposals, proposals, "Irving solve must be deterministic");
    }
    RoommatesScalingRow {
        n,
        participants: 2 * n,
        backend: "random_view".to_string(),
        seed,
        proposals,
        rotations: u64::from(rotations),
        solve_ns: best,
        alloc_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn null_hook(f: &mut dyn FnMut()) -> u64 {
        f();
        0
    }

    #[test]
    fn gs_points_are_deterministic_across_backends() {
        for backend in [GsBackend::Csr, GsBackend::Random, GsBackend::Scores] {
            let a = run_gs_point(backend, 64, 3, 2, &mut null_hook);
            let b = run_gs_point(backend, 64, 3, 2, &mut null_hook);
            assert_eq!(a.proposals, b.proposals);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.backend, backend.name());
        }
    }

    #[test]
    fn random_backend_tracks_mertens_at_moderate_n() {
        let row = run_gs_point(GsBackend::Random, 4096, 1, 1, &mut null_hook);
        assert!((0.5..=3.0).contains(&row.nlogn_ratio), "ratio {}", row.nlogn_ratio);
    }

    #[test]
    fn scores_backend_is_the_serial_dictatorship_corner() {
        // Identical lists: proposer i (in popularity order) makes i + 1
        // proposals, so the total is exactly n(n+1)/2.
        let row = run_gs_point(GsBackend::Scores, 128, 0, 1, &mut null_hook);
        assert_eq!(row.proposals, 128 * 129 / 2);
    }

    #[test]
    fn roommates_point_solves_the_doubled_instance() {
        let row = run_roommates_point(256, 2, 1, &mut null_hook);
        assert_eq!(row.participants, 512);
        assert!(row.proposals >= 256, "phase 1 proposes at least once per side");
    }
}
