//! The perf regression gate: compare fresh `results/BENCH_*.json` /
//! `results/REPORT_*.json` files against committed baselines with the
//! per-row tolerance rules of [`kmatch_bench::diff`], and (under
//! `--check`) exit nonzero when any row regressed. Run as a ci.sh step:
//!
//! ```text
//! bench_diff --baseline results --fresh results --check
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use kmatch_bench::diff::{diff_dirs, DiffConfig};

const USAGE: &str = "\
usage: bench_diff [--baseline DIR] [--fresh DIR] [--check]
                  [--timing-tol FRAC] [--ratio-tol FRAC] [--pct-slack POINTS]

Compares every BENCH_*.json / REPORT_*.json under --fresh (default
`results`) against its counterpart under --baseline (default `results`).
Counters must match exactly; *_ns rows may not slow beyond the timing
tolerance (default 0.30 relative, 10us absolute floor); speedup and
efficiency rows may not shrink beyond the ratio tolerance (default
0.25); *_pct rows may not grow beyond the slack (default 3.0 points).
Without --check the gate is report-only and always exits 0.";

fn main() -> ExitCode {
    let mut baseline = PathBuf::from("results");
    let mut fresh = PathBuf::from("results");
    let mut check = false;
    let mut cfg = DiffConfig::default();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let fail = |msg: String| -> ExitCode {
        eprintln!("bench_diff: {msg}\n\n{USAGE}");
        ExitCode::from(2)
    };
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> Result<&str, String> {
            i += 1;
            argv.get(i)
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let parsed = match flag {
            "--baseline" => value().map(|v| baseline = PathBuf::from(v)),
            "--fresh" => value().map(|v| fresh = PathBuf::from(v)),
            "--check" => {
                check = true;
                Ok(())
            }
            "--timing-tol" => parse_f64(flag, value()).map(|v| cfg.timing_tol = v),
            "--ratio-tol" => parse_f64(flag, value()).map(|v| cfg.ratio_tol = v),
            "--pct-slack" => parse_f64(flag, value()).map(|v| cfg.pct_slack = v),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag: {other}")),
        };
        if let Err(msg) = parsed {
            return fail(msg);
        }
        i += 1;
    }

    let rep = match diff_dirs(&baseline, &fresh, &cfg) {
        Ok(rep) => rep,
        Err(msg) => return fail(msg),
    };

    for note in &rep.notes {
        println!("note: {note}");
    }
    for reg in &rep.regressions {
        println!("REGRESSION: {reg}");
    }
    println!(
        "bench diff: {} rows compared, {} regression(s), {} note(s) [{} vs {}]",
        rep.compared,
        rep.regressions.len(),
        rep.notes.len(),
        fresh.display(),
        baseline.display(),
    );
    if rep.ok() {
        println!("bench diff: PASS");
        ExitCode::SUCCESS
    } else if check {
        println!("bench diff: FAIL (--check)");
        ExitCode::FAILURE
    } else {
        println!("bench diff: regressions found (report-only; rerun with --check to enforce)");
        ExitCode::SUCCESS
    }
}

fn parse_f64(flag: &str, value: Result<&str, String>) -> Result<f64, String> {
    let v = value?;
    v.parse()
        .map_err(|_| format!("invalid value for {flag}: {v}"))
}
