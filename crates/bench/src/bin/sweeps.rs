//! Parameter sweeps written as CSV files under `results/` — the data
//! series behind the experiment tables (plot-ready).
//!
//! ```text
//! cargo run -p kmatch-bench --bin sweeps --release [-- --quick] [--out DIR]
//! ```
//!
//! Produces:
//! * `gs_scaling.csv` — proposals/solve time/alloc bytes vs n per
//!   preference backend (csr | scores | random), through the same
//!   generator as the `scaling` series in `BENCH_gs.json`;
//! * `binding_topology.csv` — Algorithm 1 cost and EREW model vs tree;
//! * `roommates_solvability.csv` — P(stable matching exists) vs n;
//! * `weak_failure.csv` — weakened-condition failure rate of non-bitonic
//!   trees vs (k, n);
//! * `quorum_frontier.csv` — quorum-stability rate vs q;
//! * `batch_throughput.csv` — work-stealing batch executor throughput
//!   over an n × batch-size × threads grid, with per-run straggler
//!   aggregates (busy/steal/idle time, chunks stolen).

use kmatch_testsupport::CountingAlloc;

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

use kmatch_bench::scaling::{run_gs_point, GsBackend};
use kmatch_bench::{rng, sweep::Csv};
use kmatch_core::{
    bind, bind_with_stats, find_weak_blocking_family, is_quorum_stable, GenderPriorities,
};
use kmatch_graph::{random_tree, BindingTree};
use kmatch_parallel::erew_cost;
use kmatch_prefs::gen::uniform::{uniform_kpartite, uniform_roommates};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string());

    gs_scaling(quick, &out_dir);
    binding_topology(quick, &out_dir);
    roommates_solvability(quick, &out_dir);
    weak_failure(quick, &out_dir);
    quorum_frontier(quick, &out_dir);
    batch_throughput(quick, &out_dir);
    println!("sweeps written under {out_dir}/");
}

/// Backend n-scaling data series — the CSV twin of the `scaling` block
/// in `BENCH_gs.json`, produced by the same
/// [`kmatch_bench::scaling::run_gs_point`] generator. CSR stops at 4096
/// (the explicit table is the thing being scaled *away from*); the
/// implicit oracles continue to 2¹⁸ — and in the JSON series to 10⁶.
fn gs_scaling(quick: bool, out_dir: &str) {
    let mut csv = Csv::new(&[
        "n",
        "backend",
        "seed",
        "proposals",
        "rounds",
        "solve_ns",
        "alloc_bytes",
        "nlogn_ratio",
    ]);
    let mut hook = kmatch_testsupport::bytes_allocated_in;
    let sizes: &[usize] = if quick {
        &[256, 1024]
    } else {
        &[256, 1024, 4096, 16_384, 65_536]
    };
    let seeds: u64 = if quick { 1 } else { 3 };
    let mut points: Vec<(GsBackend, usize, u64, usize)> = Vec::new();
    for &n in sizes {
        for seed in 0..seeds {
            for backend in [GsBackend::Csr, GsBackend::Scores, GsBackend::Random] {
                if backend == GsBackend::Csr && n > 4096 {
                    continue; // explicit tables stop where CSR's cap looms
                }
                if backend == GsBackend::Scores && n > 16_384 {
                    continue; // the dictatorship corner is Θ(n²) proposals
                }
                points.push((backend, n, seed, if n <= 4096 { 5 } else { 3 }));
            }
        }
    }
    if !quick {
        // Implicit-only tail: sizes no materialized table could reach
        // in this container's memory budget.
        points.push((GsBackend::Random, 262_144, 1, 2));
    }
    for (backend, n, seed, reps) in points {
        let row = run_gs_point(backend, n, seed, reps, &mut hook);
        csv.row(vec![
            row.n.to_string(),
            row.backend,
            row.seed.to_string(),
            row.proposals.to_string(),
            row.rounds.to_string(),
            format!("{:.0}", row.solve_ns),
            row.alloc_bytes.to_string(),
            format!("{:.4}", row.nlogn_ratio),
        ]);
    }
    csv.write(format!("{out_dir}/gs_scaling.csv"))
        .expect("write CSV");
    println!("gs_scaling.csv: {} rows", csv.len());
}

fn binding_topology(quick: bool, out_dir: &str) {
    let mut csv = Csv::new(&[
        "k",
        "n",
        "tree",
        "delta",
        "proposals",
        "erew_iters",
        "rounds",
    ]);
    let grid: &[(usize, usize)] = if quick {
        &[(6, 32)]
    } else {
        &[(4, 64), (8, 64), (12, 64), (8, 256)]
    };
    for &(k, n) in grid {
        let inst = uniform_kpartite(k, n, &mut rng(22_000 + k as u64));
        for (name, tree) in [
            ("path", BindingTree::path(k)),
            ("balanced", BindingTree::balanced_binary(k)),
            ("star", BindingTree::star(k, 0)),
            ("random", random_tree(k, &mut rng(22_500 + k as u64))),
        ] {
            let out = bind_with_stats(&inst, &tree);
            let cost = erew_cost(&tree, &out.per_edge, None);
            csv.row(vec![
                k.to_string(),
                n.to_string(),
                name.to_string(),
                tree.max_degree().to_string(),
                out.total_proposals().to_string(),
                cost.total_iterations().to_string(),
                cost.depth().to_string(),
            ]);
        }
    }
    csv.write(format!("{out_dir}/binding_topology.csv"))
        .expect("write CSV");
    println!("binding_topology.csv: {} rows", csv.len());
}

fn roommates_solvability(quick: bool, out_dir: &str) {
    // Classic empirical curve: solvability of uniform roommates declines
    // slowly with n. Solves run through one reused workspace (the
    // zero-alloc fast path); per-point wall time is recorded so future
    // changes to this path leave a perf trail in the CSV.
    let mut csv = Csv::new(&["n", "trials", "solvable", "rate", "solve_ms", "us_per_solve"]);
    let sizes: &[usize] = if quick {
        &[4, 8]
    } else {
        &[4, 8, 16, 32, 64, 128]
    };
    let trials: u64 = if quick { 20 } else { 200 };
    let mut ws = kmatch_roommates::RoommatesWorkspace::new();
    for &n in sizes {
        let instances: Vec<_> = (0..trials)
            .map(|seed| uniform_roommates(n, &mut rng(23_000 + seed * 131 + n as u64)))
            .collect();
        let start = std::time::Instant::now();
        let solvable = instances
            .iter()
            .filter(|inst| ws.solve(inst).is_stable())
            .count() as u64;
        let elapsed = start.elapsed();
        csv.row(vec![
            n.to_string(),
            trials.to_string(),
            solvable.to_string(),
            format!("{:.3}", solvable as f64 / trials as f64),
            format!("{:.3}", elapsed.as_secs_f64() * 1e3),
            format!("{:.2}", elapsed.as_secs_f64() * 1e6 / trials as f64),
        ]);
    }
    csv.write(format!("{out_dir}/roommates_solvability.csv"))
        .expect("write CSV");
    println!("roommates_solvability.csv: {} rows", csv.len());
}

fn weak_failure(quick: bool, out_dir: &str) {
    let mut csv = Csv::new(&["k", "n", "tree", "bitonic", "trials", "weak_unstable"]);
    let trials: u64 = if quick { 20 } else { 100 };
    for (k, n) in [(4usize, 3usize), (4, 5), (5, 3)] {
        let pr = GenderPriorities::by_id(k);
        // Fig-5a shape (the highest-priority gender hangs off the lowest:
        // path k-1, 0, 1, …, k-2 — not bitonic) vs the ascending path.
        let mut edges: Vec<(u16, u16)> = vec![(k as u16 - 1, 0)];
        for i in 0..k as u16 - 2 {
            edges.push((i, i + 1));
        }
        let fig5a_like = BindingTree::new(k, edges).unwrap();
        for (name, tree) in [
            ("non_bitonic_path", fig5a_like),
            ("ascending_path", BindingTree::path(k)),
        ] {
            let mut fails = 0u64;
            for seed in 0..trials {
                let inst = uniform_kpartite(k, n, &mut rng(24_000 + seed));
                let m = bind(&inst, &tree);
                if find_weak_blocking_family(&inst, &m, &pr).is_some() {
                    fails += 1;
                }
            }
            csv.row(vec![
                k.to_string(),
                n.to_string(),
                name.to_string(),
                pr.is_bitonic_under(&tree).to_string(),
                trials.to_string(),
                fails.to_string(),
            ]);
        }
    }
    csv.write(format!("{out_dir}/weak_failure.csv"))
        .expect("write CSV");
    println!("weak_failure.csv: {} rows", csv.len());
}

/// Work-stealing batch executor throughput over an n × batch-size ×
/// threads grid — both solver kinds, one row per cell — with the
/// [`StealReport`]'s straggler aggregates alongside so imbalance is
/// visible next to the throughput it costs. Thread counts above the
/// host's core count still measure correctly (the executor spawns real
/// threads); they just time-slice.
fn batch_throughput(quick: bool, out_dir: &str) {
    use kmatch_obs::{BatchRegistry, StdClock};
    use kmatch_parallel::{ExecPolicy, StealReport};
    use kmatch_prefs::gen::uniform::uniform_bipartite;

    let mut csv = Csv::new(&[
        "kind",
        "n",
        "count",
        "threads",
        "chunks",
        "wall_ns",
        "inst_per_s",
        "busy_ns",
        "steal_ns",
        "idle_ns",
        "chunks_stolen",
    ]);
    let sizes: &[usize] = if quick { &[64] } else { &[64, 256, 1024] };
    let counts: &[usize] = if quick { &[64] } else { &[64, 256, 1024] };
    let threads: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let clock = StdClock::new();
    let mut push = |kind: &str, n: usize, count: usize, t: usize, report: &StealReport| {
        let busy: u64 = report.workers.iter().map(|w| w.busy_ns).sum();
        let steal: u64 = report.workers.iter().map(|w| w.steal_ns).sum();
        let idle: u64 = report.workers.iter().map(|w| w.idle_ns).sum();
        csv.row(vec![
            kind.to_string(),
            n.to_string(),
            count.to_string(),
            t.to_string(),
            report.plan.len().to_string(),
            report.wall_ns.to_string(),
            format!(
                "{:.1}",
                count as f64 / (report.wall_ns as f64 / 1e9).max(1e-12)
            ),
            busy.to_string(),
            steal.to_string(),
            idle.to_string(),
            report.chunks_stolen().to_string(),
        ]);
    };
    for &n in sizes {
        for &count in counts {
            let gs_batch: Vec<_> = {
                let mut r = rng(26_000 + n as u64);
                (0..count).map(|_| uniform_bipartite(n, &mut r)).collect()
            };
            let rm_batch: Vec<_> = {
                let mut r = rng(26_500 + n as u64);
                (0..count).map(|_| uniform_roommates(n, &mut r)).collect()
            };
            for &t in threads {
                let policy = ExecPolicy::with_threads(t);
                let registry = BatchRegistry::new();
                let (_, report) = kmatch_parallel::solve_batch_metered_with(
                    &gs_batch, &registry, &clock, &policy,
                );
                push("gs", n, count, t, &report);
                let registry = BatchRegistry::new();
                let (_, report) = kmatch_parallel::roommates::solve_batch_metered_with(
                    &rm_batch, &registry, &clock, &policy,
                );
                push("roommates", n, count, t, &report);
            }
        }
    }
    csv.write(format!("{out_dir}/batch_throughput.csv"))
        .expect("write CSV");
    println!("batch_throughput.csv: {} rows", csv.len());
}

fn quorum_frontier(quick: bool, out_dir: &str) {
    let mut csv = Csv::new(&["k", "n", "q", "trials", "stable"]);
    let trials: u64 = if quick { 10 } else { 50 };
    let (k, n) = (3usize, 4usize);
    let mut stable = vec![0u64; k + 1];
    for seed in 0..trials {
        let inst = uniform_kpartite(k, n, &mut rng(25_000 + seed));
        let m = bind(&inst, &BindingTree::path(k));
        for (q, slot) in stable.iter_mut().enumerate().take(k + 1).skip(1) {
            if is_quorum_stable(&inst, &m, q) {
                *slot += 1;
            }
        }
    }
    for (q, &count) in stable.iter().enumerate().take(k + 1).skip(1) {
        csv.row(vec![
            k.to_string(),
            n.to_string(),
            q.to_string(),
            trials.to_string(),
            count.to_string(),
        ]);
    }
    csv.write(format!("{out_dir}/quorum_frontier.csv"))
        .expect("write CSV");
    println!("quorum_frontier.csv: {} rows", csv.len());
}
