//! Byte-counting global allocator shared by the bench binaries through
//! `#[path]` inclusion — the `kmatch-bench` library forbids `unsafe`,
//! and binaries do not inherit that, so the `GlobalAlloc` lives here.
//!
//! Merely including this module installs the counter (it declares the
//! `#[global_allocator]`). The counter is a thread-local *gross* byte
//! tally: frees are never subtracted, so a measurement bounds peak and
//! churn together, and other threads cannot pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter is a
// plain thread-local add that performs no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = BYTES.try_with(|c| c.set(c.get() + layout.size() as u64));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = BYTES.try_with(|c| c.set(c.get() + new_size as u64));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Gross bytes requested from the allocator by `f` on this thread —
/// the [`kmatch_bench::scaling::BytesHook`] the scaling points expect.
pub fn bytes_allocated_in(f: &mut dyn FnMut()) -> u64 {
    let before = BYTES.with(Cell::get);
    f();
    BYTES.with(Cell::get) - before
}
