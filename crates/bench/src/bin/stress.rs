//! Differential stress tester: hammers every solver pair that must agree,
//! on freshly-random instances, until the time budget runs out.
//!
//! ```text
//! cargo run -p kmatch-bench --bin stress --release [-- --seconds 30] [--seed 0]
//! ```
//!
//! Checks per iteration (all fatal on disagreement):
//! 1. GS == McVitie–Wilson == distributed GS (matching + proposal count);
//! 2. Algorithm 1 output stable (pruned DFS) == naive exhaustive verdict,
//!    and rayon/scheduled/distributed executors equal sequential;
//! 3. Irving == brute force existence on small roommates instances, and
//!    the zero-alloc fast path (reused workspace) == `solve_reference`
//!    on larger ones (matching, certificate, proposal/rotation counts);
//! 4. weak-blocking DFS == naive weak enumeration;
//! 5. blossom maximum matching == greedy lower bound sanity + symmetry.

use std::time::{Duration, Instant};

use kmatch_core::theorems::acceptability_graph;
use kmatch_core::{
    bind_with_stats, find_blocking_family, find_blocking_family_naive, find_weak_blocking_family,
    find_weak_blocking_family_naive, GenderPriorities,
};
use kmatch_distsim::{distributed_bind, distributed_gale_shapley};
use kmatch_graph::{maximum_matching, random_tree, tree_edge_coloring};
use kmatch_gs::{gale_shapley, mcvitie_wilson};
use kmatch_parallel::parallel_bind;
use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_kpartite, uniform_roommates};
use kmatch_roommates::brute::stable_matching_exists_brute;
use kmatch_roommates::{solve, solve_reference, RoommatesWorkspace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seconds: u64 = args
        .iter()
        .position(|a| a == "--seconds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut iterations = 0u64;
    let mut checks = 0u64;
    // Shared across iterations so the differential check also exercises
    // workspace reuse over mixed instance sizes.
    let mut roommates_ws = RoommatesWorkspace::new();

    while Instant::now() < deadline {
        iterations += 1;

        // 1. Engine agreement on a random SMP.
        let n = rng.gen_range(1..=40);
        let smp = uniform_bipartite(n, &mut rng);
        let a = gale_shapley(&smp);
        let b = mcvitie_wilson(&smp);
        let c = distributed_gale_shapley(&smp);
        assert_eq!(a.matching, b.matching, "GS vs McVitie (n={n})");
        assert_eq!(a.matching, c.matching, "GS vs distributed (n={n})");
        assert_eq!(a.stats.proposals, c.proposals, "proposal counts (n={n})");
        checks += 3;

        // 2. Binding executors agree; DFS verdict == naive (small sizes).
        let k = rng.gen_range(2..=5);
        let kn = rng.gen_range(1..=4);
        let inst = uniform_kpartite(k, kn, &mut rng);
        let tree = random_tree(k, &mut rng);
        let seq = bind_with_stats(&inst, &tree);
        assert_eq!(
            parallel_bind(&inst, &tree).matching,
            seq.matching,
            "rayon (k={k})"
        );
        let schedule = tree_edge_coloring(&tree);
        assert_eq!(
            distributed_bind(&inst, &tree, &schedule).matching,
            seq.matching,
            "distributed bind (k={k})"
        );
        let dfs = find_blocking_family(&inst, &seq.matching).is_some();
        let naive = find_blocking_family_naive(&inst, &seq.matching).is_some();
        assert_eq!(dfs, naive, "blocking DFS vs naive (k={k}, n={kn})");
        assert!(!dfs, "Theorem 2 violated (k={k}, n={kn})");
        let pr = GenderPriorities::by_id(k);
        assert_eq!(
            find_weak_blocking_family(&inst, &seq.matching, &pr).is_some(),
            find_weak_blocking_family_naive(&inst, &seq.matching, &pr).is_some(),
            "weak DFS vs naive (k={k}, n={kn})"
        );
        checks += 5;

        // 3. Irving vs brute force on small roommates, and the linked-list
        //    fast path (through the reused workspace) vs the reference
        //    implementation on larger ones.
        let rn = rng.gen_range(1..=4) * 2;
        let rm = uniform_roommates(rn, &mut rng);
        assert_eq!(
            solve(&rm).is_stable(),
            stable_matching_exists_brute(&rm),
            "Irving vs brute (n={rn})"
        );
        let dn = rng.gen_range(2..=48);
        let diff = uniform_roommates(dn, &mut rng);
        let fast = roommates_ws.solve(&diff);
        let reference = solve_reference(&diff);
        assert_eq!(
            fast.matching(),
            reference.matching(),
            "Irving fast path vs reference matching (n={dn})"
        );
        assert_eq!(
            fast.stats(),
            reference.stats(),
            "Irving fast path vs reference stats (n={dn})"
        );
        checks += 3;

        // 4. Blossom sanity on the roommates acceptability graph.
        let g = acceptability_graph(&rm);
        let mate = maximum_matching(&g);
        for v in 0..rn as u32 {
            let m = mate[v as usize];
            if m != u32::MAX {
                assert_eq!(mate[m as usize], v, "blossom symmetry");
            }
        }
        checks += 1;
    }

    println!("stress: {iterations} iterations, {checks} checks, 0 disagreements");
}
