//! Regenerates every paper-mapped experiment table (E1–E13 in DESIGN.md).
//!
//! ```text
//! cargo run -p kmatch-bench --bin experiments --release [-- --quick]
//! ```
//!
//! Output is the source for EXPERIMENTS.md's paper-vs-measured records.

use kmatch_bench::{cells, rng, Table};
use kmatch_core::theorems::{binding_class_sizes, underbinding_unstable_instance};
use kmatch_core::{
    all_priority_trees, bind, bind_with_stats, find_weak_blocking_family, is_kary_stable,
    is_partition_stable, is_quorum_stable, is_weakly_stable, partitioned_bind, theorem1_verdict,
    GenderPartition, GenderPriorities,
};
use kmatch_graph::bitonic::{bitonic_tree_count, count_bitonic_trees};
use kmatch_graph::{
    all_trees, even_odd_path_schedule, random_tree, tree_count, tree_edge_coloring, BindingTree,
};
use kmatch_gs::{gale_shapley, mean_proposer_rank, mean_responder_rank};
use kmatch_parallel::{crew_cost, erew_cost, parallel_bind_scheduled};
use kmatch_prefs::gen::paper;
use kmatch_prefs::gen::structured::{cyclic_bipartite, identical_bipartite};
use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_kpartite};
use kmatch_roommates::brute::all_stable_roommates_matchings;
use kmatch_roommates::matching::is_roommates_stable;
use kmatch_roommates::{
    fair_stable_marriage, oriented_stable_marriage, solve, RoommatesOutcome, SmpOrientation,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    t1_gs_baseline(quick);
    t2_theorem1(quick);
    t3_section3b_traces();
    t4_fair_smp(quick);
    t5_theorem2_all_trees(quick);
    t6_theorem3_bound(quick);
    t7_theorem4_tightness();
    t8_corollary1_erew(quick);
    t9_corollary2_even_odd(quick);
    t10_crew_replication();
    t11_fig5_weak_condition(quick);
    t12_algorithm2(quick);
    t13_cayley(quick);
    t14_quorum(quick);
    t15_partitioned(quick);
    t16_baseline_models(quick);
    t17_lattice_fairness(quick);
    t18_distributed(quick);
    t19_tree_choice(quick);
    println!("\nAll experiment tables regenerated.");
}

/// T1 / E1 — GS baseline: proposal counts vs the n² bound, plus the
/// proposer-bias measurement of §II-A.
fn t1_gs_baseline(quick: bool) {
    let mut t = Table::new(&[
        "n",
        "workload",
        "proposals",
        "n^2",
        "ratio",
        "men rank",
        "women rank",
    ]);
    let sizes: &[usize] = if quick {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };
    let mut r = rng(1);
    for &n in sizes {
        let workloads: Vec<(&str, kmatch_prefs::BipartiteInstance)> = vec![
            ("uniform", uniform_bipartite(n, &mut r)),
            ("identical", identical_bipartite(n)),
            ("cyclic", cyclic_bipartite(n)),
        ];
        for (name, inst) in workloads {
            let out = gale_shapley(&inst);
            t.row(cells!(
                n,
                name,
                out.stats.proposals,
                n * n,
                format!("{:.3}", out.stats.proposals as f64 / (n * n) as f64),
                format!("{:.2}", mean_proposer_rank(&inst, &out.matching)),
                format!("{:.2}", mean_responder_rank(&inst, &out.matching))
            ));
        }
    }
    t.print("T1 (§II-A): GS proposals <= n^2; proposer bias");
}

/// T2 / E2 — Theorem 1: adversarial instances have a perfect but no stable
/// binary matching for every k > 2.
fn t2_theorem1(quick: bool) {
    let mut t = Table::new(&["k", "n", "method", "perfect?", "stable?"]);
    let grid: &[(usize, usize)] = if quick {
        &[(3, 2), (4, 2), (3, 8)]
    } else {
        &[
            (3, 2),
            (3, 4),
            (4, 1),
            (4, 2),
            (5, 2),
            (3, 16),
            (4, 16),
            (6, 16),
            (8, 32),
        ]
    };
    for &(k, n) in grid {
        if (k * n) % 2 != 0 {
            continue;
        }
        let v = theorem1_verdict(k, n);
        let method = if k * n <= 12 { "exhaustive" } else { "irving" };
        t.row(cells!(k, n, method, v.perfect_exists, v.stable_exists));
    }
    t.print("T2 (Theorem 1): no stable binary matching for k > 2");
}

/// T3 / E3 — the paper's §III-B worked traces, reproduced exactly.
fn t3_section3b_traces() {
    let mut t = Table::new(&["instance", "paper outcome", "measured outcome", "agrees"]);
    // Left lists: stable; paper's matching (m,u'), (m',w), (w',u).
    let left = paper::section3b_left();
    let out = solve(&left);
    let left_result = match &out {
        RoommatesOutcome::Stable { matching, .. } => {
            assert!(is_roommates_stable(&left, matching));
            let paper_matching =
                kmatch_roommates::matching::RoommatesMatching::new(vec![5, 2, 1, 4, 3, 0]);
            let all = all_stable_roommates_matchings(&left);
            format!(
                "stable; paper matching also stable: {}; total stable: {}",
                all.contains(&paper_matching),
                all.len()
            )
        }
        RoommatesOutcome::NoStableMatching { .. } => "NO STABLE (bug!)".to_string(),
    };
    t.row(cells!(
        "§III-B left",
        "stable: (m,u'),(m',w),(w',u)",
        left_result,
        out.is_stable()
    ));
    // Right lists: no stable matching (u's list empties).
    let right = paper::section3b_right();
    let out = solve(&right);
    t.row(cells!(
        "§III-B right",
        "no stable matching",
        if out.is_stable() {
            "stable (bug!)"
        } else {
            "no stable matching"
        },
        !out.is_stable()
    ));
    t.print("T3 (§III-B): paper trace regression");
}

/// T4 / E4 — fair SMP: the deadlock example and random markets.
fn t4_fair_smp(quick: bool) {
    let mut t = Table::new(&["solver", "men rank", "women rank", "|men-women|"]);
    let trials = if quick { 5 } else { 30 };
    let n = 64;
    let mut r = rng(4);
    let mut acc = vec![(0.0, 0.0); 4];
    for _ in 0..trials {
        let inst = uniform_bipartite(n, &mut r);
        let solutions = [
            gale_shapley(&inst).matching,
            oriented_stable_marriage(&inst, SmpOrientation::SeedFromWomen).matching,
            fair_stable_marriage(&inst).matching,
            oriented_stable_marriage(&inst, SmpOrientation::SeedFromMen).matching,
        ];
        for (i, m) in solutions.iter().enumerate() {
            acc[i].0 += mean_proposer_rank(&inst, m);
            acc[i].1 += mean_responder_rank(&inst, m);
        }
    }
    for (name, (m, w)) in [
        "GS (men propose)",
        "roommates man-opt",
        "roommates fair",
        "roommates woman-opt",
    ]
    .iter()
    .zip(acc)
    {
        let (m, w) = (m / trials as f64, w / trials as f64);
        t.row(cells!(
            name,
            format!("{m:.2}"),
            format!("{w:.2}"),
            format!("{:.2}", (m - w).abs())
        ));
    }
    t.print("T4 (§III-B end, Fig. 2): procedural fairness via roommates");
}

/// T5 / E5 — Theorem 2: every binding tree yields a stable k-ary matching.
fn t5_theorem2_all_trees(quick: bool) {
    let mut t = Table::new(&["k", "n", "trees checked", "stable", "distinct matchings"]);
    let grid: &[(usize, usize, bool)] = if quick {
        &[(3, 3, true), (4, 3, true)]
    } else {
        &[(3, 4, true), (4, 4, true), (5, 3, true), (8, 4, false)]
    };
    for &(k, n, exhaustive) in grid {
        let mut r = rng(5);
        let inst = uniform_kpartite(k, n, &mut r);
        let trees: Vec<BindingTree> = if exhaustive {
            all_trees(k, 200)
        } else {
            (0..40).map(|_| random_tree(k, &mut r)).collect()
        };
        let mut stable = 0usize;
        let mut distinct = std::collections::HashSet::new();
        for tree in &trees {
            let m = bind(&inst, tree);
            if is_kary_stable(&inst, &m) {
                stable += 1;
            }
            distinct.insert(m.to_tuples());
        }
        t.row(cells!(k, n, trees.len(), stable, distinct.len()));
    }
    t.print("T5 (Theorem 2): Algorithm 1 is stable for every binding tree");
}

/// T6 / E6 — Theorem 3: total proposals vs (k−1)·n².
fn t6_theorem3_bound(quick: bool) {
    let mut t = Table::new(&["k", "n", "workload", "proposals", "(k-1)n^2", "ratio"]);
    let grid: &[(usize, usize)] = if quick {
        &[(3, 32), (8, 32)]
    } else {
        &[(2, 64), (3, 64), (5, 64), (8, 64), (16, 64), (8, 256)]
    };
    let mut r = rng(6);
    for &(k, n) in grid {
        for workload in ["uniform", "master"] {
            let inst = match workload {
                "uniform" => uniform_kpartite(k, n, &mut r),
                _ => kmatch_prefs::gen::structured::master_list_kpartite(k, n, false),
            };
            let tree = BindingTree::path(k);
            let out = bind_with_stats(&inst, &tree);
            let bound = ((k - 1) * n * n) as u64;
            t.row(cells!(
                k,
                n,
                workload,
                out.total_proposals(),
                bound,
                format!("{:.3}", out.total_proposals() as f64 / bound as f64)
            ));
        }
    }
    t.print("T6 (Theorem 3): proposals <= (k-1) n^2; master lists approach the bound");
}

/// T7 / E7 — Theorem 4: k−1 bindings is tight.
fn t7_theorem4_tightness() {
    let mut t = Table::new(&["bindings", "edges", "class sizes", "valid k-ary matching?"]);
    let inst = paper::theorem4_cycle_tripartite();
    for (label, edges) in [
        ("k-1 = 2 (tree)", vec![(0u16, 1u16), (1, 2)]),
        ("k-1 = 2 (tree)", vec![(0, 1), (0, 2)]),
        ("k = 3 (cycle)", vec![(0, 1), (1, 2), (0, 2)]),
    ] {
        let sizes = binding_class_sizes(&inst, &edges);
        let valid = sizes.iter().all(|&s| s == 3) && sizes.len() == inst.n();
        t.row(cells!(
            label,
            format!("{edges:?}"),
            format!("{sizes:?}"),
            valid
        ));
    }
    t.print("T7a (Theorem 4): k bindings force a cycle that collapses families");

    let mut t = Table::new(&["completion", "blocked?", "blocking family"]);
    for completion in [vec![0u32, 1], vec![1, 0], vec![0, 1, 2], vec![2, 0, 1]] {
        let (inst, matching) = underbinding_unstable_instance(&completion);
        let bf = kmatch_core::find_blocking_family(&inst, &matching);
        t.row(cells!(
            format!("{completion:?}"),
            bf.is_some(),
            bf.map(|b| format!("{:?}", b.members)).unwrap_or_default()
        ));
    }
    t.print("T7b (Theorem 4): with k-2 bindings, every completion is blockable");
}

/// T8 / E8 — Corollary 1: schedule depth = Δ; EREW iterations ≤ Δ·n².
fn t8_corollary1_erew(quick: bool) {
    let mut t = Table::new(&[
        "tree",
        "k",
        "Δ",
        "rounds",
        "seq iters",
        "EREW iters",
        "Δn^2",
        "speedup",
    ]);
    let (k, n) = if quick {
        (8usize, 32usize)
    } else {
        (12usize, 64usize)
    };
    let mut r = rng(8);
    let inst = uniform_kpartite(k, n, &mut r);
    for (name, tree) in [
        ("path", BindingTree::path(k)),
        ("balanced", BindingTree::balanced_binary(k)),
        ("random", random_tree(k, &mut r)),
        ("star", BindingTree::star(k, 0)),
    ] {
        let schedule = tree_edge_coloring(&tree);
        let par = parallel_bind_scheduled(&inst, &tree, &schedule);
        let cost = erew_cost(&tree, &par.per_edge, None);
        let seq: u64 = par.per_edge.iter().map(|s| s.proposals).sum();
        t.row(cells!(
            name,
            k,
            tree.max_degree(),
            cost.depth(),
            seq,
            cost.total_iterations(),
            tree.max_degree() * n * n,
            format!("{:.2}x", seq as f64 / cost.total_iterations() as f64)
        ));
    }
    t.print("T8 (Corollary 1): EREW rounds = Δ; iterations <= Δ n^2");
}

/// T9 / E9 — Corollary 2: the even–odd path schedule is always 2 rounds
/// and the executor's matching equals the sequential one.
fn t9_corollary2_even_odd(quick: bool) {
    let mut t = Table::new(&["k", "rounds", "processors", "matches sequential"]);
    let ks: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16, 32, 64] };
    let n = 16;
    let mut r = rng(9);
    for &k in ks {
        let inst = uniform_kpartite(k, n, &mut r);
        let tree = BindingTree::path(k);
        let schedule = even_odd_path_schedule(&tree).expect("path");
        let par = parallel_bind_scheduled(&inst, &tree, &schedule);
        let seq = bind_with_stats(&inst, &tree);
        t.row(cells!(
            k,
            schedule.depth(),
            schedule.width(),
            par.matching == seq.matching
        ));
    }
    t.print("T9 (Corollary 2, Fig. 4): even-odd schedule = 2 rounds for every k");
}

/// T10 / E10 — CREW emulation: ⌈log₂ Δ⌉ replication rounds.
fn t10_crew_replication() {
    let mut t = Table::new(&[
        "k (star)",
        "Δ",
        "repl. rounds",
        "= ceil(log2 Δ)",
        "CREW iters",
    ]);
    let n = 16;
    let mut r = rng(10);
    for k in [3usize, 5, 9, 17, 33] {
        let inst = uniform_kpartite(k, n, &mut r);
        let tree = BindingTree::star(k, 0);
        let out = bind_with_stats(&inst, &tree);
        let cost = crew_cost(&tree, &out.per_edge);
        let delta = tree.max_degree();
        let expected = (delta as f64).log2().ceil() as u32;
        t.row(cells!(
            k,
            delta,
            cost.replication_rounds,
            cost.replication_rounds == expected,
            cost.total_iterations()
        ));
    }
    t.print("T10 (§IV-C): EREW emulates CREW after ceil(log2 Δ) replication rounds");
}

/// T11 / E11 — Fig. 5: non-bitonic trees admit weakened blocking families;
/// bitonic trees never do.
fn t11_fig5_weak_condition(quick: bool) {
    let trials: u64 = if quick { 30 } else { 200 };
    let (k, n) = (4usize, 3usize);
    let pr = GenderPriorities::by_id(k);
    let fig5a = BindingTree::new(4, vec![(3, 0), (0, 1), (1, 2)]).unwrap();
    let fig5b = BindingTree::new(4, vec![(1, 3), (3, 2), (2, 0)]).unwrap();
    let mut t = Table::new(&["tree", "bitonic", "weak-unstable / trials", "full-unstable"]);
    for (name, tree) in [("Fig. 5(a) 4-1-2-3", &fig5a), ("Fig. 5(b) 2-4-3-1", &fig5b)] {
        let mut weak_fail = 0;
        let mut full_fail = 0;
        for seed in 0..trials {
            let inst = uniform_kpartite(k, n, &mut rng(11_000 + seed));
            let m = bind(&inst, tree);
            if !is_kary_stable(&inst, &m) {
                full_fail += 1;
            }
            if find_weak_blocking_family(&inst, &m, &pr).is_some() {
                weak_fail += 1;
            }
        }
        t.row(cells!(
            name,
            pr.is_bitonic_under(tree),
            format!("{weak_fail} / {trials}"),
            full_fail
        ));
    }
    t.print("T11 (Fig. 5): non-bitonic binding trees fail the weakened condition");
}

/// T12 / E12 — Algorithm 2: (k−1)! bitonic trees, all weakly stable.
fn t12_algorithm2(quick: bool) {
    let mut t = Table::new(&[
        "k",
        "priority trees",
        "(k-1)!",
        "all bitonic",
        "weak-stable / checks",
    ]);
    let ks: &[usize] = if quick { &[3, 4] } else { &[3, 4, 5] };
    let n = 3;
    let instances: u64 = if quick { 5 } else { 20 };
    for &k in ks {
        let pr = GenderPriorities::by_id(k);
        let trees = all_priority_trees(&pr);
        let all_bitonic = trees.iter().all(|t| pr.is_bitonic_under(t));
        let mut ok = 0usize;
        let mut total = 0usize;
        for seed in 0..instances {
            let inst = uniform_kpartite(k, n, &mut rng(12_000 + seed));
            for tree in &trees {
                total += 1;
                if is_weakly_stable(&inst, &bind(&inst, tree), &pr) {
                    ok += 1;
                }
            }
        }
        t.row(cells!(
            k,
            trees.len(),
            bitonic_tree_count(k).unwrap(),
            all_bitonic,
            format!("{ok} / {total}")
        ));
    }
    t.print(
        "T12 (Theorem 5, Fig. 6, Alg. 2): priority trees count (k-1)! and defeat weak blocking",
    );
}

/// T13 / E13 — Cayley's formula and matching diversity across trees.
fn t13_cayley(quick: bool) {
    let mut t = Table::new(&[
        "k",
        "enumerated trees",
        "k^(k-2)",
        "bitonic trees",
        "(k-1)!",
    ]);
    let ks: &[usize] = if quick {
        &[3, 4, 5]
    } else {
        &[2, 3, 4, 5, 6, 7]
    };
    for &k in ks {
        let trees = all_trees(k, 20_000);
        let bitonic = count_bitonic_trees(k, 20_000);
        t.row(cells!(
            k,
            trees.len(),
            tree_count(k).unwrap(),
            bitonic,
            bitonic_tree_count(k).unwrap()
        ));
        assert_eq!(trees.len() as u128, tree_count(k).unwrap());
    }
    t.print("T13 (§IV-B): Cayley k^(k-2) binding trees; (k-1)! of them bitonic");
}

/// T14 — quorum-relaxed blocking (§VII future work, implemented as an
/// extension): how often is Algorithm 1's output stable as the quorum
/// shrinks from k (the paper's condition) toward 1?
fn t14_quorum(quick: bool) {
    let trials: u64 = if quick { 10 } else { 50 };
    let (k, n) = (3usize, 4usize);
    let mut t = Table::new(&["quorum q", "stable / trials", "note"]);
    let mut stable = vec![0usize; k + 1];
    for seed in 0..trials {
        let inst = uniform_kpartite(k, n, &mut rng(14_000 + seed));
        let m = bind(&inst, &BindingTree::path(k));
        #[allow(clippy::needless_range_loop)]
        for q in 1..=k {
            if is_quorum_stable(&inst, &m, q) {
                stable[q] += 1;
            }
        }
    }
    for q in (1..=k).rev() {
        let note = match q {
            q if q == k => "= paper's full condition (Theorem 2: always)",
            1 => "any single satisfied member blocks",
            _ => "",
        };
        t.row(cells!(q, format!("{} / {trials}", stable[q]), note));
    }
    t.print("T14 (§VII ext.): quorum-relaxed stability of Algorithm 1's output");
}

/// T15 — partitioned k-ary matching in k'-partite graphs (§VII future
/// work, block-partition case): c·k = n·k' families, block-local stability.
fn t15_partitioned(quick: bool) {
    let mut t = Table::new(&[
        "k'",
        "k",
        "n",
        "families c",
        "c*k = n*k'",
        "block-stable",
        "proposals",
    ]);
    let grid: &[(usize, usize, usize)] = if quick {
        &[(4, 2, 4), (6, 3, 4)]
    } else {
        &[(4, 2, 8), (6, 2, 8), (6, 3, 8), (8, 4, 8), (12, 3, 16)]
    };
    for &(k_total, k, n) in grid {
        let inst = uniform_kpartite(k_total, n, &mut rng(15_000 + k_total as u64));
        let partition = GenderPartition::contiguous(k_total, k);
        let out = partitioned_bind(&inst, &partition);
        let c = out.families.len();
        t.row(cells!(
            k_total,
            k,
            n,
            c,
            c * k == n * k_total,
            is_partition_stable(&inst, &partition, &out),
            out.total_proposals
        ));
    }
    t.print("T15 (§VII ext.): partitioned k-ary matching in k'-partite graphs");
}

/// T16 — the multi-dimensional baselines the paper contrasts with (§I):
/// cyclic and combination-preference 3DSM need exponential search and may
/// lack stable matchings; the paper's model is guaranteed and O((k-1)n²).
fn t16_baseline_models(quick: bool) {
    use kmatch_baselines::{
        solve_combination_exact, solve_cyclic_exact, CombinationInstance, CyclicInstance,
    };
    let trials: u64 = if quick { 10 } else { 40 };
    let n = 3usize;
    let mut t = Table::new(&[
        "model",
        "solvable / trials",
        "avg matchings inspected",
        "per-member prefs",
    ]);
    let mut cyc = (0u64, 0u64);
    let mut comb = (0u64, 0u64);
    let mut kary_props = 0u64;
    for seed in 0..trials {
        let mut r = rng(16_000 + seed);
        let ci = CyclicInstance::random(n, &mut r);
        let (found, inspected) = solve_cyclic_exact(&ci);
        cyc.0 += found.is_some() as u64;
        cyc.1 += inspected;
        let mi = CombinationInstance::random(n, &mut r);
        let (found, inspected) = solve_combination_exact(&mi);
        comb.0 += found.is_some() as u64;
        comb.1 += inspected;
        let inst = uniform_kpartite(3, n, &mut r);
        kary_props += bind_with_stats(&inst, &BindingTree::path(3)).total_proposals();
    }
    t.row(cells!(
        "cyclic 3DSM [4]",
        format!("{} / {trials}", cyc.0),
        format!("{:.1}", cyc.1 as f64 / trials as f64),
        "n per member"
    ));
    t.row(cells!(
        "combination 3DSM [4]",
        format!("{} / {trials}", comb.0),
        format!("{:.1}", comb.1 as f64 / trials as f64),
        "n^2 per member"
    ));
    t.row(cells!(
        "paper (Algorithm 1)",
        format!("{trials} / {trials} (Theorem 2)"),
        format!("{:.1} proposals", kary_props as f64 / trials as f64),
        "2n per member"
    ));
    t.print("T16 (§I baselines): existence & cost vs the paper's k-ary model (k = 3, n = 3)");
}

/// T17 — where §III-B's fair solver sits inside the lattice of ALL stable
/// matchings (enumerated via rotations, Gusfield–Irving machinery).
fn t17_lattice_fairness(quick: bool) {
    use kmatch_gs::rotations::enumerate_stable_lattice;
    use kmatch_roommates::fair_stable_marriage;
    let trials: u64 = if quick { 5 } else { 25 };
    let n = 12usize;
    let mut t = Table::new(&["solver", "mean men rank", "mean women rank", "mean gap"]);
    let mut acc = vec![(0.0f64, 0.0f64); 5]; // gs, fair, lattice-egal, mincut-egal, woman-opt
    let mut lattice_sizes = 0usize;
    for seed in 0..trials {
        let inst = uniform_bipartite(n, &mut rng(17_000 + seed));
        let lattice = enumerate_stable_lattice(&inst, 1_000_000).expect("within limit");
        lattice_sizes += lattice.matchings.len();
        let poly = kmatch_gs::egalitarian_stable_matching(&inst).0;
        let entries = [
            gale_shapley(&inst).matching,
            fair_stable_marriage(&inst).matching,
            lattice.egalitarian(&inst).clone(),
            poly,
            kmatch_gs::responder_optimal(&inst).matching,
        ];
        for (i, m) in entries.iter().enumerate() {
            acc[i].0 += mean_proposer_rank(&inst, m);
            acc[i].1 += mean_responder_rank(&inst, m);
        }
    }
    for (name, (m, w)) in [
        "GS man-optimal",
        "roommates fair",
        "lattice egalitarian",
        "min-cut egalitarian",
        "woman-optimal",
    ]
    .iter()
    .zip(acc)
    {
        let (m, w) = (m / trials as f64, w / trials as f64);
        t.row(cells!(
            name,
            format!("{m:.2}"),
            format!("{w:.2}"),
            format!("{:.2}", (m - w).abs())
        ));
    }
    t.print(&format!(
        "T17 (§III-B + [9]): fairness vs the full stable lattice (n = {n}, avg lattice size {:.1})",
        lattice_sizes as f64 / trials as f64
    ));
}

/// T18 — distributed binding (§II-A "distributed algorithm" + §IV-C):
/// message complexity 2P..3P and critical-path communication rounds per
/// schedule, on the message-passing simulator.
fn t18_distributed(quick: bool) {
    use kmatch_distsim::distributed_bind;
    let (k, n) = if quick {
        (6usize, 16usize)
    } else {
        (10usize, 32usize)
    };
    let inst = uniform_kpartite(k, n, &mut rng(18_000));
    let mut t = Table::new(&[
        "tree",
        "schedule",
        "messages",
        "3(k-1)n^2",
        "critical rounds",
        "serial rounds",
    ]);
    for (name, tree) in [
        ("path", BindingTree::path(k)),
        ("star", BindingTree::star(k, 0)),
        ("random", random_tree(k, &mut rng(18_001))),
    ] {
        let schedules: Vec<(&str, kmatch_graph::Schedule)> = {
            let mut v = vec![("Δ-coloring", tree_edge_coloring(&tree))];
            if let Some(eo) = even_odd_path_schedule(&tree) {
                v.push(("even-odd", eo));
            }
            v
        };
        for (sname, schedule) in schedules {
            let out = distributed_bind(&inst, &tree, &schedule);
            let serial: u64 = out.per_edge.iter().map(|s| s.rounds as u64).sum();
            t.row(cells!(
                name,
                sname,
                out.total_messages,
                3 * (k - 1) * n * n,
                out.critical_path_rounds,
                serial
            ));
        }
    }
    t.print(&format!(
        "T18 (§II-A/§IV-C): distributed binding on the message-passing simulator (k = {k}, n = {n})"
    ));
}

/// T19 — §IV-B quantified: how much does binding-tree choice change family
/// happiness, and how close does random sampling get to the exhaustive
/// optimum?
fn t19_tree_choice(quick: bool) {
    use kmatch_core::{exhaustive_best_tree, optimize::mean_rank_objective, optimize_tree};
    let trials: u64 = if quick { 5 } else { 20 };
    let (k, n) = (4usize, 6usize);
    let mut t = Table::new(&["metric", "mean over instances"]);
    let (mut path_sum, mut best_sum, mut worst_sum, mut sampled_sum) = (0.0, 0.0, 0.0, 0.0);
    for seed in 0..trials {
        let mut r = rng(19_000 + seed);
        let inst = uniform_kpartite(k, n, &mut r);
        path_sum += mean_rank_objective(&inst, &bind(&inst, &BindingTree::path(k)));
        let exact = exhaustive_best_tree(&inst, 64, mean_rank_objective);
        best_sum += exact.objective;
        // Worst over all trees for the spread.
        let worst = kmatch_graph::all_trees(k, 64)
            .iter()
            .map(|tr| mean_rank_objective(&inst, &bind(&inst, tr)))
            .fold(0.0f64, f64::max);
        worst_sum += worst;
        sampled_sum += optimize_tree(&inst, 20, &mut r, mean_rank_objective).objective;
    }
    let m = trials as f64;
    t.row(cells!(
        "canonical path tree",
        format!("{:.3}", path_sum / m)
    ));
    t.row(cells!(
        "best tree (exhaustive, both orientations)",
        format!("{:.3}", best_sum / m)
    ));
    t.row(cells!("worst tree", format!("{:.3}", worst_sum / m)));
    t.row(cells!(
        "best of 20 random samples",
        format!("{:.3}", sampled_sum / m)
    ));
    t.print(&format!(
        "T19 (§IV-B quantified): binding-tree choice vs family happiness (k = {k}, n = {n}, {trials} instances)"
    ));
}
