//! Machine-readable incremental-solving measurements →
//! `results/BENCH_incremental.json`.
//!
//! Replays a stream of 1-row preference deltas through three solvers and
//! records the mean cost per delta of each:
//!
//! - **cold** — what a non-incremental caller pays: reload the CSR arena
//!   from the mutated instance and run a full solve (`cold_rebuild_ns`),
//!   with the solve-only portion broken out (`cold_solve_ns`);
//! - **warm** — `IncrementalGs::apply` + warm-start `resolve_delta`,
//!   re-freeing only the proposers the delta can affect;
//! - **cached** — a repeated solve of an unchanged state, served from the
//!   content-addressed cache as a clone of the stored matching.
//!
//! Acceptance (single-core host): warm ≥ 5x over cold at n = 2000, cache
//! hits ≥ 50x over cold. Run with
//! `cargo run --release --bin bench_incremental_json`.

use std::time::Instant;

use kmatch_bench::harness::write_results;
use kmatch_bench::rng;
use kmatch_gs::GsWorkspace;
use kmatch_incremental::IncrementalGs;
use kmatch_prefs::gen::uniform::uniform_bipartite;
use kmatch_prefs::{CsrPrefs, DeltaSide, PrefDelta};
use rand::seq::SliceRandom;
use serde::impl_json_struct;

/// One instance-size comparison row. All `_ns` figures are means per
/// delta (or per repeat, for `cached_ns`).
#[derive(Debug, Clone)]
struct Row {
    n: usize,
    /// 1-row `SetRow` deltas replayed.
    deltas: usize,
    /// CSR reload + full solve of the mutated instance.
    cold_rebuild_ns: f64,
    /// Full solve alone, arena already loaded.
    cold_solve_ns: f64,
    /// `IncrementalGs` delta apply + warm re-solve.
    warm_ns: f64,
    /// Cache-hit solve of an unchanged state.
    cached_ns: f64,
    /// `cold_rebuild_ns / warm_ns` — acceptance ≥ 5 at n = 2000.
    warm_speedup: f64,
    /// `cold_rebuild_ns / cached_ns` — acceptance ≥ 50 at n = 2000.
    cached_speedup: f64,
    /// Proposals the warm re-solves executed, total.
    warm_proposals: u64,
    /// Proposals the cold re-solves executed, total.
    cold_proposals: u64,
}

impl_json_struct!(Row {
    n,
    deltas,
    cold_rebuild_ns,
    cold_solve_ns,
    warm_ns,
    cached_ns,
    warm_speedup,
    cached_speedup,
    warm_proposals,
    cold_proposals
});

#[derive(Debug, Clone)]
struct Report {
    rows: Vec<Row>,
}

impl_json_struct!(Report { rows });

fn row(n: usize, deltas: usize) -> Row {
    let mut r = rng(601 + n as u64);
    let inst = uniform_bipartite(n, &mut r);

    // Distinct random row rewrites so every warm solve is a true cache
    // miss (a repeated state would be served from the cache instead).
    let stream: Vec<PrefDelta> = (0..deltas)
        .map(|i| {
            let mut prefs: Vec<u32> = (0..n as u32).collect();
            prefs.shuffle(&mut r);
            PrefDelta::SetRow {
                side: DeltaSide::Proposer,
                row: (i % n) as u32,
                prefs,
            }
        })
        .collect();

    // Prime both solvers: steady state on both sides, nothing allocates
    // inside the timed region.
    let mut shadow = inst.clone();
    let mut ws = GsWorkspace::with_capacity(n);
    let mut csr = CsrPrefs::new();
    csr.load(&shadow);
    ws.solve(&csr);
    let mut session = IncrementalGs::new(inst);
    session.solve();

    let (mut rebuild_ns, mut solve_ns, mut warm_ns) = (0u64, 0u64, 0u64);
    let (mut warm_proposals, mut cold_proposals) = (0u64, 0u64);
    for delta in &stream {
        shadow.apply_delta(delta).expect("generated delta is valid");
        let t0 = Instant::now();
        csr.load(&shadow);
        let t1 = Instant::now();
        let cold = ws.solve(&csr);
        let t2 = Instant::now();
        rebuild_ns += (t2 - t0).as_nanos() as u64;
        solve_ns += (t2 - t1).as_nanos() as u64;
        cold_proposals += cold.stats.proposals;

        session.apply(delta).expect("generated delta is valid");
        let t3 = Instant::now();
        let warm = session.solve();
        warm_ns += t3.elapsed().as_nanos() as u64;
        warm_proposals += warm.stats.proposals;
        assert_eq!(
            warm.matching, cold.matching,
            "warm re-solve diverged from cold at n = {n}"
        );
    }

    // Cache hits: the state is unchanged, so every further solve is a
    // fingerprint lookup plus a matching clone.
    let cached_reps = deltas.max(100);
    let t = Instant::now();
    for _ in 0..cached_reps {
        session.solve();
    }
    let cached_ns = t.elapsed().as_nanos() as f64 / cached_reps as f64;

    let cold_rebuild_ns = rebuild_ns as f64 / deltas as f64;
    let cold_solve_ns = solve_ns as f64 / deltas as f64;
    let warm_mean = warm_ns as f64 / deltas as f64;
    Row {
        n,
        deltas,
        cold_rebuild_ns,
        cold_solve_ns,
        warm_ns: warm_mean,
        cached_ns,
        warm_speedup: cold_rebuild_ns / warm_mean,
        cached_speedup: cold_rebuild_ns / cached_ns,
        warm_proposals,
        cold_proposals,
    }
}

fn main() {
    let rows: Vec<Row> = [(256usize, 256), (1024, 128), (2000, 64)]
        .into_iter()
        .map(|(n, deltas)| row(n, deltas))
        .collect();

    for row in &rows {
        println!(
            "n = {:>5}: cold {:>10.0} ns (solve {:>10.0} ns)  warm {:>9.0} ns ({:.1}x)  \
             cached {:>7.0} ns ({:.1}x)  proposals {} warm / {} cold",
            row.n,
            row.cold_rebuild_ns,
            row.cold_solve_ns,
            row.warm_ns,
            row.warm_speedup,
            row.cached_ns,
            row.cached_speedup,
            row.warm_proposals,
            row.cold_proposals,
        );
    }

    write_results("BENCH_incremental.json", &Report { rows });
}
