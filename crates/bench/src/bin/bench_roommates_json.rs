//! Machine-readable Irving hot-path measurements →
//! `results/BENCH_roommates.json` plus a structured run report →
//! `results/REPORT_roommates.json`.
//!
//! Records the acceptance numbers of the zero-alloc Irving engine work —
//! fast-path speedup over `solve_reference` on random roommates instances
//! at n ∈ {256, 1024, 2000} (fresh-workspace and workspace-reuse
//! variants), `kmatch_parallel::roommates::solve_batch` throughput on
//! 1000 instances relative to a serial workspace-reuse loop, and the
//! `SolverMetrics` overhead of the metered batch path on an n = 2000
//! batch (acceptance target < 5%) — plus the implicit-oracle scaling
//! series: Irving through the lazy §III-B `RoommatesOracleView` over a
//! random-permutation oracle, doubled instance never materialized,
//! allocation bytes recorded per point. Run with
//! `cargo run --release --bin bench_roommates_json`.

use kmatch_testsupport::CountingAlloc;

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

use kmatch_bench::harness::{
    measure_blocks, rayon_threads, roommates_batch, write_results, OverheadRow,
};
use kmatch_bench::rng;
use kmatch_bench::scaling::{run_roommates_point, RoommatesScalingRow};
use kmatch_obs::{BatchRegistry, RunReport, StdClock};
use kmatch_parallel::roommates::{solve_batch, solve_batch_metered, solve_batch_traced};
use kmatch_prefs::gen::uniform::uniform_roommates;
use kmatch_roommates::{solve_reference, RoommatesWorkspace};
use serde::impl_json_struct;

/// One single-instance comparison row.
#[derive(Debug, Clone)]
struct SingleRow {
    n: usize,
    solvable: bool,
    proposals: u64,
    rotations: u32,
    reference_ns: f64,
    /// Fast path with a fresh workspace per solve.
    fastpath_fresh_ns: f64,
    /// Fast path through one reused workspace (zero steady-state allocs).
    fastpath_reuse_ns: f64,
    /// `reference_ns / fastpath_fresh_ns`.
    speedup_fresh: f64,
    /// `reference_ns / fastpath_reuse_ns`.
    speedup_reuse: f64,
}

impl_json_struct!(SingleRow {
    n,
    solvable,
    proposals,
    rotations,
    reference_ns,
    fastpath_fresh_ns,
    fastpath_reuse_ns,
    speedup_fresh,
    speedup_reuse,
});

/// The batch-throughput comparison.
#[derive(Debug, Clone)]
struct BatchRow {
    instances: usize,
    n: usize,
    threads: usize,
    solvable: usize,
    serial_ns: f64,
    solve_batch_ns: f64,
    /// `serial_ns / solve_batch_ns` — expected ≈ `threads` for balanced
    /// batches on a multicore host, ≈ 1 on a single core.
    speedup: f64,
    /// Speedup per thread.
    efficiency: f64,
}

impl_json_struct!(BatchRow {
    instances,
    n,
    threads,
    solvable,
    serial_ns,
    solve_batch_ns,
    speedup,
    efficiency,
});

#[derive(Debug, Clone)]
struct Report {
    threads: usize,
    single: Vec<SingleRow>,
    /// Lazy §III-B oracle-view scaling series (shared generator with
    /// the GS scaling sweep).
    scaling: Vec<RoommatesScalingRow>,
    batch: BatchRow,
    metrics_overhead: OverheadRow,
    /// `metered_ns` here is the *traced* batch (per-chunk flight
    /// recorders armed): the cost of leaving the black box on.
    trace_overhead: OverheadRow,
}

impl_json_struct!(Report {
    threads,
    single,
    scaling,
    batch,
    metrics_overhead,
    trace_overhead
});

/// Irving over the lazy doubled view of a [`kmatch_prefs::RandomPermOracle`]:
/// phase 1 walks the oracle directly; only the reduced table is ever
/// written down, so memory stays far below the 2n × 2n a materialized
/// reduction would cost.
fn scaling_series() -> Vec<RoommatesScalingRow> {
    let mut hook = kmatch_testsupport::bytes_allocated_in;
    [(2_000usize, 4usize), (10_000, 3)]
        .into_iter()
        .map(|(n, reps)| run_roommates_point(n, 1, reps, &mut hook))
        .collect()
}

fn single_row(n: usize, reps: usize) -> SingleRow {
    let inst = uniform_roommates(n, &mut rng(401));
    let baseline = solve_reference(&inst);
    let stats = baseline.stats();
    let mut ws = RoommatesWorkspace::with_capacity(n, inst.total_entries());
    let [reference_ns, fastpath_fresh_ns, fastpath_reuse_ns] = measure_blocks(
        4,
        reps,
        [
            &mut || solve_reference(&inst).stats().proposals,
            &mut || RoommatesWorkspace::new().solve(&inst).stats().proposals,
            &mut || ws.solve(&inst).stats().proposals,
        ],
    );
    SingleRow {
        n,
        solvable: baseline.is_stable(),
        proposals: stats.proposals,
        rotations: stats.rotations,
        reference_ns,
        fastpath_fresh_ns,
        fastpath_reuse_ns,
        speedup_fresh: reference_ns / fastpath_fresh_ns,
        speedup_reuse: reference_ns / fastpath_reuse_ns,
    }
}

fn batch_row() -> BatchRow {
    let (instances, n, reps) = (1000usize, 64usize, 25);
    let batch = roommates_batch(instances, n, 402);
    let solvable = solve_batch(&batch).iter().filter(|o| o.is_stable()).count();
    let mut ws = RoommatesWorkspace::new();
    let [serial_ns, solve_batch_ns] = measure_blocks(
        4,
        reps,
        [
            &mut || {
                batch
                    .iter()
                    .map(|inst| ws.solve(inst).stats().proposals)
                    .sum()
            },
            &mut || {
                solve_batch(&batch)
                    .iter()
                    .map(|o| o.stats().proposals)
                    .sum()
            },
        ],
    );
    let threads = rayon_threads();
    let speedup = serial_ns / solve_batch_ns;
    BatchRow {
        instances,
        n,
        threads,
        solvable,
        serial_ns,
        solve_batch_ns,
        speedup,
        efficiency: speedup / threads as f64,
    }
}

/// Measure `solve_batch_metered` against `solve_batch` on an n = 2000
/// batch, and emit the metered run's merged metrics as a RunReport.
fn overhead_row() -> (OverheadRow, RunReport) {
    let (instances, n, reps) = (32usize, 2000usize, 4);
    let batch = roommates_batch(instances, n, 403);
    let registry = BatchRegistry::new();
    let clock = StdClock::new();
    let [plain_ns, metered_ns] = measure_blocks(
        3,
        reps,
        [
            &mut || {
                solve_batch(&batch)
                    .iter()
                    .map(|o| o.stats().proposals)
                    .sum()
            },
            &mut || {
                solve_batch_metered(&batch, &registry, &clock)
                    .iter()
                    .map(|o| o.stats().proposals)
                    .sum()
            },
        ],
    );
    let merged = registry.take();
    let report = RunReport::new(
        "roommates",
        n,
        instances,
        0x5EED_0000 + 403,
        rayon_threads(),
        metered_ns as u64,
        merged,
        None,
    );
    (OverheadRow::new(instances, n, plain_ns, metered_ns), report)
}

/// Measure the traced batch path (per-chunk flight recorders, phase-level
/// spans, `StdClock` timestamps) against the metered one on the same
/// n = 2000 batch. `solve_batch_traced` is the metered path plus a ring,
/// and `solve_spanned` with `NoSpans` *is* `solve_metered`, so this
/// isolates exactly what arming the flight recorder costs — the
/// acceptance target is < 5%.
fn trace_overhead_row() -> OverheadRow {
    let (instances, n, reps) = (32usize, 2000usize, 4);
    let batch = roommates_batch(instances, n, 404);
    let registry = BatchRegistry::new();
    let clock = StdClock::new();
    let [plain_ns, traced_ns] = measure_blocks(
        3,
        reps,
        [
            &mut || {
                solve_batch_metered(&batch, &registry, &clock)
                    .iter()
                    .map(|o| o.stats().proposals)
                    .sum()
            },
            &mut || {
                let (outs, _traces) = solve_batch_traced(&batch, &registry, &clock, 1 << 12);
                outs.iter().map(|o| o.stats().proposals).sum()
            },
        ],
    );
    OverheadRow::new(instances, n, plain_ns, traced_ns)
}

fn main() {
    // Same shared-VM caveats as bench_gs_json; see measure_blocks.
    let single: Vec<SingleRow> = [(256usize, 400), (1024, 80), (2000, 40)]
        .into_iter()
        .map(|(n, reps)| single_row(n, reps))
        .collect();
    let (metrics_overhead, run_report) = overhead_row();
    let trace_overhead = trace_overhead_row();
    let run_report = run_report.with_overhead(
        "trace_overhead",
        trace_overhead.instances,
        trace_overhead.n,
        trace_overhead.plain_ns,
        trace_overhead.metered_ns,
    );
    let report = Report {
        threads: rayon_threads(),
        single,
        scaling: scaling_series(),
        batch: batch_row(),
        metrics_overhead,
        trace_overhead,
    };

    for row in &report.single {
        println!(
            "n = {:>5}: reference {:>12.0} ns  fresh {:>12.0} ns  reuse {:>12.0} ns  \
             speedup {:.2}x / {:.2}x (reuse)",
            row.n,
            row.reference_ns,
            row.fastpath_fresh_ns,
            row.fastpath_reuse_ns,
            row.speedup_fresh,
            row.speedup_reuse,
        );
    }
    for row in &report.scaling {
        println!(
            "scale n = {:>6} x2 [{}]: {:>9} proposals  {:>6} rotations  \
             {:>12.0} ns  {:>12} alloc bytes",
            row.n, row.backend, row.proposals, row.rotations, row.solve_ns, row.alloc_bytes,
        );
    }
    let b = &report.batch;
    println!(
        "batch {} x n={}: serial {:>10.0} ns  solve_batch {:>10.0} ns  \
         speedup {:.2}x on {} thread(s), {} solvable",
        b.instances, b.n, b.serial_ns, b.solve_batch_ns, b.speedup, b.threads, b.solvable,
    );
    let o = &report.metrics_overhead;
    println!(
        "metrics overhead {} x n={}: plain {:>10.0} ns  metered {:>10.0} ns  ({:+.2}%)",
        o.instances, o.n, o.plain_ns, o.metered_ns, o.overhead_pct,
    );
    let t = &report.trace_overhead;
    println!(
        "trace overhead   {} x n={}: plain {:>10.0} ns  traced  {:>10.0} ns  ({:+.2}%)",
        t.instances, t.n, t.plain_ns, t.metered_ns, t.overhead_pct,
    );

    write_results("BENCH_roommates.json", &report);
    write_results("REPORT_roommates.json", &run_report);
}
