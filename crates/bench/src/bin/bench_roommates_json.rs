//! Machine-readable Irving hot-path measurements → `results/BENCH_roommates.json`.
//!
//! Records the acceptance numbers of the zero-alloc Irving engine work —
//! fast-path speedup over `solve_reference` on random roommates instances
//! at n ∈ {256, 1024, 2000} (fresh-workspace and workspace-reuse
//! variants), and `kmatch_parallel::roommates::solve_batch` throughput on
//! 1000 instances relative to a serial workspace-reuse loop. Run with
//! `cargo run --release --bin bench_roommates_json`.

use std::time::Instant;

use kmatch_bench::rng;
use kmatch_parallel::roommates::solve_batch;
use kmatch_prefs::gen::uniform::uniform_roommates;
use kmatch_prefs::RoommatesInstance;
use kmatch_roommates::{solve_reference, RoommatesWorkspace};
use serde::impl_json_struct;

/// Per-variant minimum over `passes` contiguous timing blocks of `reps`
/// runs each — same methodology as `bench_gs_json`: contiguous blocks
/// avoid cross-variant cache pollution, rotating block order across
/// passes spreads host drift, and the minimum is the robust statistic on
/// a shared machine (noise only ever adds time).
fn measure_blocks<const K: usize>(
    passes: usize,
    reps: usize,
    variants: [&mut dyn FnMut() -> u64; K],
) -> [f64; K] {
    let mut sink = 0u64;
    let mut best = [f64::INFINITY; K];
    for pass in 0..passes {
        for i in 0..K {
            let v = (i + pass) % K;
            for _ in 0..reps {
                let t = Instant::now();
                sink = sink.wrapping_add(variants[v]());
                best[v] = best[v].min(t.elapsed().as_nanos() as f64);
            }
        }
    }
    assert!(sink > 0, "benchmark workload produced no proposals");
    best
}

/// One single-instance comparison row.
#[derive(Debug, Clone)]
struct SingleRow {
    n: usize,
    solvable: bool,
    proposals: u64,
    rotations: u32,
    reference_ns: f64,
    /// Fast path with a fresh workspace per solve.
    fastpath_fresh_ns: f64,
    /// Fast path through one reused workspace (zero steady-state allocs).
    fastpath_reuse_ns: f64,
    /// `reference_ns / fastpath_fresh_ns`.
    speedup_fresh: f64,
    /// `reference_ns / fastpath_reuse_ns`.
    speedup_reuse: f64,
}

impl_json_struct!(SingleRow {
    n,
    solvable,
    proposals,
    rotations,
    reference_ns,
    fastpath_fresh_ns,
    fastpath_reuse_ns,
    speedup_fresh,
    speedup_reuse,
});

/// The batch-throughput comparison.
#[derive(Debug, Clone)]
struct BatchRow {
    instances: usize,
    n: usize,
    threads: usize,
    solvable: usize,
    serial_ns: f64,
    solve_batch_ns: f64,
    /// `serial_ns / solve_batch_ns` — expected ≈ `threads` for balanced
    /// batches on a multicore host, ≈ 1 on a single core.
    speedup: f64,
    /// Speedup per thread.
    efficiency: f64,
}

impl_json_struct!(BatchRow {
    instances,
    n,
    threads,
    solvable,
    serial_ns,
    solve_batch_ns,
    speedup,
    efficiency,
});

#[derive(Debug, Clone)]
struct Report {
    threads: usize,
    single: Vec<SingleRow>,
    batch: BatchRow,
}

impl_json_struct!(Report { threads, single, batch });

fn single_row(n: usize, reps: usize) -> SingleRow {
    let inst = uniform_roommates(n, &mut rng(401));
    let baseline = solve_reference(&inst);
    let stats = baseline.stats();
    let mut ws = RoommatesWorkspace::with_capacity(n, inst.total_entries());
    let [reference_ns, fastpath_fresh_ns, fastpath_reuse_ns] = measure_blocks(
        4,
        reps,
        [
            &mut || solve_reference(&inst).stats().proposals,
            &mut || RoommatesWorkspace::new().solve(&inst).stats().proposals,
            &mut || ws.solve(&inst).stats().proposals,
        ],
    );
    SingleRow {
        n,
        solvable: baseline.is_stable(),
        proposals: stats.proposals,
        rotations: stats.rotations,
        reference_ns,
        fastpath_fresh_ns,
        fastpath_reuse_ns,
        speedup_fresh: reference_ns / fastpath_fresh_ns,
        speedup_reuse: reference_ns / fastpath_reuse_ns,
    }
}

fn batch_row() -> BatchRow {
    let (instances, n, reps) = (1000usize, 64usize, 25);
    let mut r = rng(402);
    let batch: Vec<RoommatesInstance> =
        (0..instances).map(|_| uniform_roommates(n, &mut r)).collect();
    let solvable = solve_batch(&batch).iter().filter(|o| o.is_stable()).count();
    let mut ws = RoommatesWorkspace::new();
    let [serial_ns, solve_batch_ns] = measure_blocks(
        4,
        reps,
        [
            &mut || {
                batch
                    .iter()
                    .map(|inst| ws.solve(inst).stats().proposals)
                    .sum()
            },
            &mut || {
                solve_batch(&batch)
                    .iter()
                    .map(|o| o.stats().proposals)
                    .sum()
            },
        ],
    );
    let threads = rayon_threads();
    let speedup = serial_ns / solve_batch_ns;
    BatchRow {
        instances,
        n,
        threads,
        solvable,
        serial_ns,
        solve_batch_ns,
        speedup,
        efficiency: speedup / threads as f64,
    }
}

fn rayon_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn main() {
    // Same shared-VM caveats as bench_gs_json; see measure_blocks.
    let single: Vec<SingleRow> = [(256usize, 400), (1024, 80), (2000, 40)]
        .into_iter()
        .map(|(n, reps)| single_row(n, reps))
        .collect();
    let report = Report {
        threads: rayon_threads(),
        single,
        batch: batch_row(),
    };

    for row in &report.single {
        println!(
            "n = {:>5}: reference {:>12.0} ns  fresh {:>12.0} ns  reuse {:>12.0} ns  \
             speedup {:.2}x / {:.2}x (reuse)",
            row.n,
            row.reference_ns,
            row.fastpath_fresh_ns,
            row.fastpath_reuse_ns,
            row.speedup_fresh,
            row.speedup_reuse,
        );
    }
    let b = &report.batch;
    println!(
        "batch {} x n={}: serial {:>10.0} ns  solve_batch {:>10.0} ns  \
         speedup {:.2}x on {} thread(s), {} solvable",
        b.instances, b.n, b.serial_ns, b.solve_batch_ns, b.speedup, b.threads, b.solvable,
    );

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_roommates.json", json + "\n")
        .expect("write results/BENCH_roommates.json");
    println!("wrote results/BENCH_roommates.json");
}
