//! Machine-readable GS hot-path measurements → `results/BENCH_gs.json`.
//!
//! Records the two acceptance numbers of the zero-alloc hot-path work —
//! fast-path speedup over the reference engine on a random `n = 2000`
//! bipartite instance, and `solve_batch` throughput on 1000 instances
//! relative to a serial loop — plus the smaller sizes for context. Run
//! with `cargo run --release --bin bench_gs_json`.

use std::time::Instant;

use kmatch_bench::rng;
use kmatch_gs::{gale_shapley_reference, GsWorkspace};
use kmatch_parallel::solve_batch;
use kmatch_prefs::gen::uniform::uniform_bipartite;
use kmatch_prefs::{BipartiteInstance, CsrPrefs};
use serde::impl_json_struct;

/// Per-variant minimum over `passes` contiguous timing blocks of `reps`
/// runs each.
///
/// Variants get *separate* blocks rather than run-by-run interleaving: on
/// a host whose last-level cache is shared with noisy neighbors, an
/// interleaved rotation makes every variant evict the others' working set
/// between its runs, which distorts exactly the locality effects this
/// benchmark exists to show (measured here: it hid a 2× CSR-arena win
/// entirely). Rotating the block order across passes still spreads slow
/// host drift over all variants, and the minimum is the robust statistic —
/// noise on a shared machine only ever adds time.
fn measure_blocks<const K: usize>(
    passes: usize,
    reps: usize,
    variants: [&mut dyn FnMut() -> u64; K],
) -> [f64; K] {
    let mut sink = 0u64;
    let mut best = [f64::INFINITY; K];
    for pass in 0..passes {
        for i in 0..K {
            let v = (i + pass) % K;
            for _ in 0..reps {
                let t = Instant::now();
                sink = sink.wrapping_add(variants[v]());
                best[v] = best[v].min(t.elapsed().as_nanos() as f64);
            }
        }
    }
    assert!(sink > 0, "benchmark workload produced no proposals");
    best
}

/// One single-instance comparison row.
#[derive(Debug, Clone)]
struct SingleRow {
    n: usize,
    proposals: u64,
    reference_ns: f64,
    fastpath_ns: f64,
    fastpath_csr_ns: f64,
    /// `reference_ns / fastpath_ns`.
    speedup: f64,
    /// `reference_ns / fastpath_csr_ns`.
    speedup_csr: f64,
}

impl_json_struct!(SingleRow {
    n,
    proposals,
    reference_ns,
    fastpath_ns,
    fastpath_csr_ns,
    speedup,
    speedup_csr,
});

/// The batch-throughput comparison.
#[derive(Debug, Clone)]
struct BatchRow {
    instances: usize,
    n: usize,
    threads: usize,
    serial_ns: f64,
    solve_batch_ns: f64,
    /// `serial_ns / solve_batch_ns` — expected ≈ `threads` for balanced
    /// batches on a multicore host, ≈ 1 on a single core.
    speedup: f64,
    /// Speedup per thread.
    efficiency: f64,
}

impl_json_struct!(BatchRow {
    instances,
    n,
    threads,
    serial_ns,
    solve_batch_ns,
    speedup,
    efficiency,
});

#[derive(Debug, Clone)]
struct Report {
    threads: usize,
    single: Vec<SingleRow>,
    batch: BatchRow,
}

impl_json_struct!(Report { threads, single, batch });

fn single_row(n: usize, reps: usize) -> SingleRow {
    let inst = uniform_bipartite(n, &mut rng(301));
    let proposals = gale_shapley_reference(&inst).stats.proposals;
    let mut ws = GsWorkspace::with_capacity(n);
    let mut ws_csr = GsWorkspace::with_capacity(n);
    let csr = CsrPrefs::from_prefs(&inst);
    let [reference_ns, fastpath_ns, fastpath_csr_ns] = measure_blocks(
        4,
        reps,
        [
            &mut || gale_shapley_reference(&inst).stats.proposals,
            &mut || ws.solve(&inst).stats.proposals,
            &mut || ws_csr.solve(&csr).stats.proposals,
        ],
    );
    SingleRow {
        n,
        proposals,
        reference_ns,
        fastpath_ns,
        fastpath_csr_ns,
        speedup: reference_ns / fastpath_ns,
        speedup_csr: reference_ns / fastpath_csr_ns,
    }
}

fn batch_row() -> BatchRow {
    let (instances, n, reps) = (1000usize, 64usize, 25);
    let mut r = rng(302);
    let batch: Vec<BipartiteInstance> =
        (0..instances).map(|_| uniform_bipartite(n, &mut r)).collect();
    let mut ws = GsWorkspace::with_capacity(n);
    let [serial_ns, solve_batch_ns] = measure_blocks(
        4,
        reps,
        [
            &mut || {
                batch
                    .iter()
                    .map(|inst| ws.solve(inst).stats.proposals)
                    .sum()
            },
            &mut || {
                solve_batch(&batch)
                    .iter()
                    .map(|o| o.stats.proposals)
                    .sum()
            },
        ],
    );
    let threads = rayon_threads();
    let speedup = serial_ns / solve_batch_ns;
    BatchRow {
        instances,
        n,
        threads,
        serial_ns,
        solve_batch_ns,
        speedup,
        efficiency: speedup / threads as f64,
    }
}

fn rayon_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn main() {
    // The host is a shared VM whose effective speed drifts by integer
    // factors over seconds; see `measure_blocks` for how the comparison
    // defends against both drift and cross-variant cache pollution.
    let single: Vec<SingleRow> = [(256usize, 1000), (1024, 250), (2000, 150)]
        .into_iter()
        .map(|(n, reps)| single_row(n, reps))
        .collect();
    let report = Report {
        threads: rayon_threads(),
        single,
        batch: batch_row(),
    };

    for row in &report.single {
        println!(
            "n = {:>5}: reference {:>10.0} ns  fastpath {:>10.0} ns  csr {:>10.0} ns  \
             speedup {:.2}x / {:.2}x (csr)",
            row.n, row.reference_ns, row.fastpath_ns, row.fastpath_csr_ns, row.speedup,
            row.speedup_csr,
        );
    }
    let b = &report.batch;
    println!(
        "batch {} x n={}: serial {:>10.0} ns  solve_batch {:>10.0} ns  \
         speedup {:.2}x on {} thread(s)",
        b.instances, b.n, b.serial_ns, b.solve_batch_ns, b.speedup, b.threads,
    );

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_gs.json", json + "\n").expect("write results/BENCH_gs.json");
    println!("wrote results/BENCH_gs.json");
}
