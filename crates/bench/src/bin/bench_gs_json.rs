//! Machine-readable GS hot-path measurements → `results/BENCH_gs.json`
//! plus a structured run report → `results/REPORT_gs.json`.
//!
//! Records the acceptance numbers of the zero-alloc hot-path work —
//! CSR fast-path speedup over the reference engine on a random
//! `n = 2000` bipartite instance, and `solve_batch` throughput on 1000
//! instances relative to a serial loop — plus the smaller sizes for
//! context, the `SolverMetrics` overhead of the metered batch path
//! relative to `NoMetrics` on an n = 2000 batch (acceptance target
//! < 5%), and the implicit-oracle n-scaling series (n up to 10⁶ on the
//! random-permutation backend, proposal counts pinned to Mertens'
//! ~n ln n, allocation bytes recorded per point). The legacy non-CSR
//! fast-path rows are gone along with the path itself: every engine
//! entry point now walks a `PrefOracle`, so there is one fast path and
//! it is the oracle one. Run with
//! `cargo run --release --bin bench_gs_json`.

use kmatch_testsupport::CountingAlloc;

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

use kmatch_bench::harness::{
    bipartite_batch, measure_blocks, rayon_threads, write_results, OverheadRow,
};
use kmatch_bench::rng;
use kmatch_bench::scaling::{run_gs_point, GsBackend, GsScalingRow};
use kmatch_gs::{gale_shapley_reference, GsWorkspace};
use kmatch_obs::{BatchRegistry, RunReport, StdClock};
use kmatch_parallel::{solve_batch, solve_batch_metered, solve_batch_traced};
use kmatch_prefs::gen::uniform::uniform_bipartite;
use kmatch_prefs::CsrPrefs;
use serde::impl_json_struct;

/// One single-instance comparison row.
#[derive(Debug, Clone)]
struct SingleRow {
    n: usize,
    proposals: u64,
    reference_ns: f64,
    fastpath_csr_ns: f64,
    /// `reference_ns / fastpath_csr_ns`.
    speedup_csr: f64,
}

impl_json_struct!(SingleRow {
    n,
    proposals,
    reference_ns,
    fastpath_csr_ns,
    speedup_csr,
});

/// The batch-throughput comparison.
#[derive(Debug, Clone)]
struct BatchRow {
    instances: usize,
    n: usize,
    threads: usize,
    /// Which dispatch `solve_batch` took (`kmatch_parallel::batch_path`):
    /// `"serial"` on a one-thread pool (no rayon round-trip), else
    /// `"parallel"`.
    path: String,
    serial_ns: f64,
    solve_batch_ns: f64,
    /// `serial_ns / solve_batch_ns` — expected ≈ `threads` for balanced
    /// batches on a multicore host, ≈ 1 on a single core.
    speedup: f64,
    /// Speedup per thread.
    efficiency: f64,
}

impl_json_struct!(BatchRow {
    instances,
    n,
    threads,
    path,
    serial_ns,
    solve_batch_ns,
    speedup,
    efficiency,
});

#[derive(Debug, Clone)]
struct Report {
    threads: usize,
    single: Vec<SingleRow>,
    /// Implicit-oracle n-scaling series (shared generator with the
    /// `gs_scaling.csv` sweep).
    scaling: Vec<GsScalingRow>,
    batch: BatchRow,
    metrics_overhead: OverheadRow,
    /// `metered_ns` here is the *traced* batch (per-chunk flight
    /// recorders armed): the cost of leaving the black box on.
    trace_overhead: OverheadRow,
}

impl_json_struct!(Report {
    threads,
    single,
    scaling,
    batch,
    metrics_overhead,
    trace_overhead
});

fn single_row(n: usize, reps: usize) -> SingleRow {
    let inst = uniform_bipartite(n, &mut rng(301));
    let proposals = gale_shapley_reference(&inst).stats.proposals;
    let mut ws_csr = GsWorkspace::with_capacity(n);
    let csr = CsrPrefs::from_prefs(&inst);
    let [reference_ns, fastpath_csr_ns] = measure_blocks(
        4,
        reps,
        [
            &mut || gale_shapley_reference(&inst).stats.proposals,
            &mut || ws_csr.solve(&csr).stats.proposals,
        ],
    );
    SingleRow {
        n,
        proposals,
        reference_ns,
        fastpath_csr_ns,
        speedup_csr: reference_ns / fastpath_csr_ns,
    }
}

/// The implicit-oracle n-scaling series: CSR as the explicit-table
/// anchor (kept below its 2¹⁶ cap), the score oracle's
/// serial-dictatorship corner, and the random-permutation oracle out to
/// a million agents per side — where materialized lists would need
/// ~8 TB and the oracle needs a few words.
fn scaling_series() -> Vec<GsScalingRow> {
    let mut hook = kmatch_testsupport::bytes_allocated_in;
    [
        (GsBackend::Csr, 4_096, 5),
        (GsBackend::Scores, 10_000, 5),
        (GsBackend::Random, 10_000, 5),
        (GsBackend::Random, 100_000, 3),
        (GsBackend::Random, 1_000_000, 2),
    ]
    .into_iter()
    .map(|(backend, n, reps)| run_gs_point(backend, n, 1, reps, &mut hook))
    .collect()
}

fn batch_row() -> BatchRow {
    let (instances, n, reps) = (1000usize, 64usize, 25);
    let batch = bipartite_batch(instances, n, 302);
    let mut ws = GsWorkspace::with_capacity(n);
    let [serial_ns, solve_batch_ns] = measure_blocks(
        4,
        reps,
        [
            &mut || {
                batch
                    .iter()
                    .map(|inst| ws.solve(inst).stats.proposals)
                    .sum()
            },
            &mut || {
                solve_batch(&batch)
                    .iter()
                    .map(|o| o.stats.proposals)
                    .sum()
            },
        ],
    );
    let threads = rayon_threads();
    let speedup = serial_ns / solve_batch_ns;
    BatchRow {
        instances,
        n,
        threads,
        path: kmatch_parallel::batch_path().to_string(),
        serial_ns,
        solve_batch_ns,
        speedup,
        efficiency: speedup / threads as f64,
    }
}

/// Measure `solve_batch_metered` against `solve_batch` on an n = 2000
/// batch, and emit the metered run's merged metrics as a RunReport.
fn overhead_row() -> (OverheadRow, RunReport) {
    let (instances, n, reps) = (32usize, 2000usize, 4);
    let batch = bipartite_batch(instances, n, 303);
    let registry = BatchRegistry::new();
    let clock = StdClock::new();
    let [plain_ns, metered_ns] = measure_blocks(
        3,
        reps,
        [
            &mut || {
                solve_batch(&batch)
                    .iter()
                    .map(|o| o.stats.proposals)
                    .sum()
            },
            &mut || {
                solve_batch_metered(&batch, &registry, &clock)
                    .iter()
                    .map(|o| o.stats.proposals)
                    .sum()
            },
        ],
    );
    // The registry accumulated every metered rep; report the merged view.
    let merged = registry.take();
    let report = RunReport::new(
        "gs",
        n,
        instances,
        0x5EED_0000 + 303,
        rayon_threads(),
        metered_ns as u64,
        merged,
        None,
    );
    (OverheadRow::new(instances, n, plain_ns, metered_ns), report)
}

/// Measure the traced batch path (per-chunk flight recorders, phase-level
/// spans, `StdClock` timestamps) against the metered one on the same
/// n = 2000 batch. `solve_batch_traced` is the metered path plus a ring,
/// and `solve_spanned` with `NoSpans` *is* `solve_metered`, so this
/// isolates exactly what arming the flight recorder costs — the
/// acceptance target is < 5%.
fn trace_overhead_row() -> OverheadRow {
    let (instances, n, reps) = (32usize, 2000usize, 4);
    let batch = bipartite_batch(instances, n, 304);
    let registry = BatchRegistry::new();
    let clock = StdClock::new();
    let [plain_ns, traced_ns] = measure_blocks(
        3,
        reps,
        [
            &mut || {
                solve_batch_metered(&batch, &registry, &clock)
                    .iter()
                    .map(|o| o.stats.proposals)
                    .sum()
            },
            &mut || {
                let (outs, _traces) = solve_batch_traced(&batch, &registry, &clock, 1 << 12);
                outs.iter().map(|o| o.stats.proposals).sum()
            },
        ],
    );
    OverheadRow::new(instances, n, plain_ns, traced_ns)
}

fn main() {
    // The host is a shared VM whose effective speed drifts by integer
    // factors over seconds; see `measure_blocks` for how the comparison
    // defends against both drift and cross-variant cache pollution.
    let single: Vec<SingleRow> = [(256usize, 1000), (1024, 250), (2000, 150)]
        .into_iter()
        .map(|(n, reps)| single_row(n, reps))
        .collect();
    let (metrics_overhead, run_report) = overhead_row();
    let trace_overhead = trace_overhead_row();
    let run_report = run_report.with_overhead(
        "trace_overhead",
        trace_overhead.instances,
        trace_overhead.n,
        trace_overhead.plain_ns,
        trace_overhead.metered_ns,
    );
    let report = Report {
        threads: rayon_threads(),
        single,
        scaling: scaling_series(),
        batch: batch_row(),
        metrics_overhead,
        trace_overhead,
    };

    for row in &report.single {
        println!(
            "n = {:>5}: reference {:>10.0} ns  csr {:>10.0} ns  speedup {:.2}x (csr)",
            row.n, row.reference_ns, row.fastpath_csr_ns, row.speedup_csr,
        );
    }
    for row in &report.scaling {
        println!(
            "scale n = {:>7} [{:>6}]: {:>10} proposals ({:.3}x n ln n)  \
             {:>12.0} ns  {:>12} alloc bytes",
            row.n, row.backend, row.proposals, row.nlogn_ratio, row.solve_ns, row.alloc_bytes,
        );
    }
    let b = &report.batch;
    println!(
        "batch {} x n={}: serial {:>10.0} ns  solve_batch {:>10.0} ns  \
         speedup {:.2}x on {} thread(s) via the {} path",
        b.instances, b.n, b.serial_ns, b.solve_batch_ns, b.speedup, b.threads, b.path,
    );
    let o = &report.metrics_overhead;
    println!(
        "metrics overhead {} x n={}: plain {:>10.0} ns  metered {:>10.0} ns  ({:+.2}%)",
        o.instances, o.n, o.plain_ns, o.metered_ns, o.overhead_pct,
    );
    let t = &report.trace_overhead;
    println!(
        "trace overhead   {} x n={}: plain {:>10.0} ns  traced  {:>10.0} ns  ({:+.2}%)",
        t.instances, t.n, t.plain_ns, t.metered_ns, t.overhead_pct,
    );

    write_results("BENCH_gs.json", &report);
    write_results("REPORT_gs.json", &run_report);
}
