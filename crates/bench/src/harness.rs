//! Shared measurement harness for the JSON bench binaries
//! (`bench_gs_json`, `bench_roommates_json`): block-minimum timing,
//! deterministic batch construction, and results-file writing routed
//! through `kmatch-obs` serialization.

use std::path::Path;
use std::time::Instant;

use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_roommates};
use kmatch_prefs::{BipartiteInstance, RoommatesInstance};
use serde::Serialize;

use crate::rng;

/// Per-variant minimum over `passes` contiguous timing blocks of `reps`
/// runs each.
///
/// Variants get *separate* blocks rather than run-by-run interleaving: on
/// a host whose last-level cache is shared with noisy neighbors, an
/// interleaved rotation makes every variant evict the others' working set
/// between its runs, which distorts exactly the locality effects these
/// benchmarks exist to show (measured here: it hid a 2× CSR-arena win
/// entirely). Rotating the block order across passes still spreads slow
/// host drift over all variants, and the minimum is the robust statistic —
/// noise on a shared machine only ever adds time.
pub fn measure_blocks<const K: usize>(
    passes: usize,
    reps: usize,
    variants: [&mut dyn FnMut() -> u64; K],
) -> [f64; K] {
    let mut sink = 0u64;
    let mut best = [f64::INFINITY; K];
    for pass in 0..passes {
        for i in 0..K {
            let v = (i + pass) % K;
            for _ in 0..reps {
                let t = Instant::now();
                sink = sink.wrapping_add(variants[v]());
                best[v] = best[v].min(t.elapsed().as_nanos() as f64);
            }
        }
    }
    assert!(sink > 0, "benchmark workload produced no proposals");
    best
}

/// Worker threads the rayon front-ends will use on this host.
pub fn rayon_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// `count` uniform bipartite instances of size `n` from the deterministic
/// stream [`rng`]`(tag)`.
pub fn bipartite_batch(count: usize, n: usize, tag: u64) -> Vec<BipartiteInstance> {
    let mut r = rng(tag);
    (0..count).map(|_| uniform_bipartite(n, &mut r)).collect()
}

/// `count` uniform roommates instances of size `n` from the deterministic
/// stream [`rng`]`(tag)`.
pub fn roommates_batch(count: usize, n: usize, tag: u64) -> Vec<RoommatesInstance> {
    let mut r = rng(tag);
    (0..count).map(|_| uniform_roommates(n, &mut r)).collect()
}

/// Write `value` as pretty JSON to `results/<name>` through the
/// `kmatch-obs` funnel (which creates the directory) and log the path.
pub fn write_results<T: Serialize>(name: &str, value: &T) {
    let path = Path::new("results").join(name);
    kmatch_obs::report::write_json_file(&path, value)
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote results/{name}");
}

/// A plain-vs-metered batch comparison: the measured cost of always-on
/// `SolverMetrics` (counter increments, histogram observes, two clock
/// samples per solve) relative to the `NoMetrics` batch path.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Batch size.
    pub instances: usize,
    /// Instance size.
    pub n: usize,
    /// Block-minimum wall time of the plain (`NoMetrics`) batch solve.
    pub plain_ns: f64,
    /// Block-minimum wall time of the metered batch solve.
    pub metered_ns: f64,
    /// `(metered_ns / plain_ns − 1) · 100` — acceptance target < 5%.
    pub overhead_pct: f64,
}

serde::impl_json_struct!(OverheadRow {
    instances,
    n,
    plain_ns,
    metered_ns,
    overhead_pct
});

impl OverheadRow {
    /// Build a row from the two block minimums.
    pub fn new(instances: usize, n: usize, plain_ns: f64, metered_ns: f64) -> Self {
        OverheadRow {
            instances,
            n,
            plain_ns,
            metered_ns,
            overhead_pct: (metered_ns / plain_ns - 1.0) * 100.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic() {
        let a = bipartite_batch(3, 8, 7);
        let b = bipartite_batch(3, 8, 7);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.proposer_list(0), y.proposer_list(0));
        }
        let r = roommates_batch(2, 6, 9);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].n(), 6);
    }

    #[test]
    fn measure_blocks_returns_finite_minimums() {
        let [a, b] = measure_blocks(2, 3, [&mut || 1u64, &mut || 2u64]);
        assert!(a.is_finite() && b.is_finite());
    }

    #[test]
    fn overhead_row_computes_percentage() {
        let row = OverheadRow::new(10, 100, 1000.0, 1030.0);
        assert!((row.overhead_pct - 3.0).abs() < 1e-9);
    }
}
