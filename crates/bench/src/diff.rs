//! The perf regression gate behind the `bench_diff` binary: compare a
//! fresh set of `results/BENCH_*.json` / `results/REPORT_*.json` files
//! against the committed baselines and report every row that regressed.
//!
//! The comparison is rule-based per leaf key rather than a blind float
//! diff, because the result files mix three kinds of numbers:
//!
//! - **counters** (`proposals`, `rounds`, bucket counts, …) are
//!   deterministic under the fixed bench seeds and must match exactly —
//!   a drift here is an engine behavior change, not noise;
//! - **timings** (`*_ns`) are host-dependent and only gate one-sided:
//!   a row regresses when it got *slower* than the baseline by more than
//!   the relative tolerance (and by more than an absolute floor, so
//!   sub-microsecond rows cannot trip the gate on scheduler jitter);
//! - **ratios** (`speedup*`, `efficiency`, `*_speedup`) are roughly
//!   host-independent and gate one-sided downward; `*_pct` overhead rows
//!   gate one-sided upward with an absolute slack in percentage points;
//! - **allocation counts** (`alloc_*`, `*_bytes`) are deterministic but
//!   may grow benignly (a `Vec` doubling-point shift), so they gate
//!   one-sided upward with relative + absolute slack — an oracle row
//!   quietly going O(n²) is exactly what this rule exists to catch.
//!
//! Host-shape fields (`threads`, the batch `path`) are informational:
//! drift is noted, never fatal. Keys present in the baseline but missing
//! from the fresh run are regressions (a silently dropped row must not
//! pass the gate); new keys in the fresh run are notes.

use std::fs;
use std::path::Path;

use serde::Value;

/// Per-rule tolerance thresholds of one gate run.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Relative slack on `*_ns` rows: fresh may be up to
    /// `baseline * (1 + timing_tol)` before regressing. Default 0.30.
    pub timing_tol: f64,
    /// Absolute floor on `*_ns` rows: a slowdown under this many
    /// nanoseconds never regresses, whatever the ratio says. Default
    /// 10 µs, which mutes the cached-hit rows that sit near clock
    /// resolution.
    pub timing_floor_ns: f64,
    /// Relative slack on ratio rows (`speedup*`, `efficiency`): fresh
    /// may fall to `baseline * (1 - ratio_tol)`. Default 0.25.
    pub ratio_tol: f64,
    /// Absolute slack on `*_pct` rows, in percentage points: fresh may
    /// exceed the baseline by this much. Default 3.0.
    pub pct_slack: f64,
    /// Relative slack on `alloc_*` / `*_bytes` rows: fresh may grow to
    /// `baseline * (1 + bytes_tol)` before regressing. Default 0.30.
    pub bytes_tol: f64,
    /// Absolute floor on `alloc_*` / `*_bytes` rows: growth under this
    /// many bytes never regresses, whatever the ratio says. Default
    /// 4 KiB, one page of workspace rounding.
    pub bytes_floor: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            timing_tol: 0.30,
            timing_floor_ns: 10_000.0,
            ratio_tol: 0.25,
            pct_slack: 3.0,
            bytes_tol: 0.30,
            bytes_floor: 4096.0,
        }
    }
}

/// What one gate run found.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Leaves checked (numbers, booleans, strings).
    pub compared: usize,
    /// Rows that fail the gate, as `file:path — explanation` lines.
    pub regressions: Vec<String>,
    /// Informational drift (ignored keys, new rows) that never fails.
    pub notes: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// How a leaf key is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    /// `*_ns`: one-sided slowdown gate with relative + absolute slack.
    Timing,
    /// `speedup*` / `efficiency`: one-sided shrink gate, relative slack.
    Ratio,
    /// `*_pct`: one-sided growth gate, absolute slack in points.
    Pct,
    /// `alloc_*` / `*_bytes`: one-sided growth gate, relative +
    /// absolute slack.
    Bytes,
    /// Host-shape fields: drift is a note, never a regression.
    Ignore,
    /// Everything else (counters, flags, names): exact match.
    Exact,
}

/// Classify a leaf by its key name.
fn rule_for(key: &str) -> Rule {
    if matches!(key, "threads" | "path" | "seed") {
        return Rule::Ignore;
    }
    if key.ends_with("_ns") {
        return Rule::Timing;
    }
    if key.ends_with("_pct") {
        return Rule::Pct;
    }
    if key.starts_with("alloc_") || key.ends_with("_bytes") {
        return Rule::Bytes;
    }
    if key == "efficiency" || key == "speedup" || key.starts_with("speedup_") || key.ends_with("_speedup") {
        return Rule::Ratio;
    }
    Rule::Exact
}

fn compare_number(path: &str, key: &str, base: f64, fresh: f64, cfg: &DiffConfig, rep: &mut DiffReport) {
    rep.compared += 1;
    let pct = |a: f64, b: f64| {
        if a == 0.0 {
            f64::INFINITY
        } else {
            (b / a - 1.0) * 100.0
        }
    };
    match rule_for(key) {
        Rule::Ignore => {
            if base != fresh {
                rep.notes
                    .push(format!("{path}: host-shape drift {base} -> {fresh} (ignored)"));
            }
        }
        Rule::Timing => {
            if fresh > base * (1.0 + cfg.timing_tol) && fresh - base > cfg.timing_floor_ns {
                rep.regressions.push(format!(
                    "{path}: slowed {base:.0} ns -> {fresh:.0} ns ({:+.1}%, tolerance {:.0}%)",
                    pct(base, fresh),
                    cfg.timing_tol * 100.0
                ));
            }
        }
        Rule::Ratio => {
            if fresh < base * (1.0 - cfg.ratio_tol) {
                rep.regressions.push(format!(
                    "{path}: ratio shrank {base:.3} -> {fresh:.3} ({:+.1}%, tolerance -{:.0}%)",
                    pct(base, fresh),
                    cfg.ratio_tol * 100.0
                ));
            }
        }
        Rule::Pct => {
            if fresh > base + cfg.pct_slack {
                rep.regressions.push(format!(
                    "{path}: overhead grew {base:.2}% -> {fresh:.2}% (slack {:.1} points)",
                    cfg.pct_slack
                ));
            }
        }
        Rule::Bytes => {
            if fresh > base * (1.0 + cfg.bytes_tol) && fresh - base > cfg.bytes_floor {
                rep.regressions.push(format!(
                    "{path}: allocation grew {base:.0} -> {fresh:.0} bytes ({:+.1}%, tolerance {:.0}%)",
                    pct(base, fresh),
                    cfg.bytes_tol * 100.0
                ));
            }
        }
        Rule::Exact => {
            if base != fresh {
                rep.regressions
                    .push(format!("{path}: counter changed {base} -> {fresh} (must match exactly)"));
            }
        }
    }
}

/// Recursively compare `fresh` against `base`, accumulating into `rep`.
/// `path` locates the subtree for messages; `key` is the leaf key that
/// selects the comparison rule (array elements inherit their array's).
pub fn diff_values(path: &str, key: &str, base: &Value, fresh: &Value, cfg: &DiffConfig, rep: &mut DiffReport) {
    match (base, fresh) {
        (Value::Object(bf), Value::Object(ff)) => {
            for (k, bv) in bf {
                let sub = format!("{path}.{k}");
                match fresh.get(k) {
                    Some(fv) => diff_values(&sub, k, bv, fv, cfg, rep),
                    None => rep
                        .regressions
                        .push(format!("{sub}: row missing from fresh results")),
                }
            }
            for (k, _) in ff {
                if base.get(k).is_none() {
                    rep.notes
                        .push(format!("{path}.{k}: new row (absent from baseline)"));
                }
            }
        }
        (Value::Array(ba), Value::Array(fa)) => {
            if fa.len() < ba.len() {
                rep.regressions.push(format!(
                    "{path}: fresh has {} rows, baseline has {}",
                    fa.len(),
                    ba.len()
                ));
            } else if fa.len() > ba.len() {
                rep.notes.push(format!(
                    "{path}: fresh grew to {} rows from {}",
                    fa.len(),
                    ba.len()
                ));
            }
            for (i, (bv, fv)) in ba.iter().zip(fa).enumerate() {
                diff_values(&format!("{path}[{i}]"), key, bv, fv, cfg, rep);
            }
        }
        (Value::Number(b), Value::Number(f)) => compare_number(path, key, *b, *f, cfg, rep),
        (b, f) => {
            rep.compared += 1;
            if b != f {
                if rule_for(key) == Rule::Ignore {
                    rep.notes
                        .push(format!("{path}: host-shape drift {b:?} -> {f:?} (ignored)"));
                } else {
                    rep.regressions
                        .push(format!("{path}: value changed {b:?} -> {f:?}"));
                }
            }
        }
    }
}

/// Compare two JSON documents; `name` prefixes every message.
pub fn diff_json_text(name: &str, baseline: &str, fresh: &str, cfg: &DiffConfig, rep: &mut DiffReport) -> Result<(), String> {
    let b: Value = serde_json::from_str(baseline).map_err(|e| format!("{name} (baseline): {e}"))?;
    let f: Value = serde_json::from_str(fresh).map_err(|e| format!("{name} (fresh): {e}"))?;
    diff_values(name, "", &b, &f, cfg, rep);
    Ok(())
}

/// Whether a results-directory entry participates in the gate.
pub fn is_gated_file(name: &str) -> bool {
    (name.starts_with("BENCH_") || name.starts_with("REPORT_")) && name.ends_with(".json")
}

/// Compare every gated file of `baseline_dir` against its counterpart in
/// `fresh_dir`. A baseline file with no fresh counterpart is a
/// regression; extra fresh files are notes.
pub fn diff_dirs(baseline_dir: &Path, fresh_dir: &Path, cfg: &DiffConfig) -> Result<DiffReport, String> {
    let listing = |dir: &Path| -> Result<Vec<String>, String> {
        let mut names: Vec<String> = fs::read_dir(dir)
            .map_err(|e| format!("reading {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| is_gated_file(name))
            .collect();
        names.sort();
        Ok(names)
    };
    let base_names = listing(baseline_dir)?;
    if base_names.is_empty() {
        return Err(format!(
            "no BENCH_*.json / REPORT_*.json baselines in {}",
            baseline_dir.display()
        ));
    }
    let mut rep = DiffReport::default();
    for name in &base_names {
        let fresh_path = fresh_dir.join(name);
        if !fresh_path.exists() {
            rep.regressions
                .push(format!("{name}: missing from fresh results"));
            continue;
        }
        let read = |p: &Path| fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()));
        let base_text = read(&baseline_dir.join(name))?;
        let fresh_text = read(&fresh_path)?;
        diff_json_text(name, &base_text, &fresh_text, cfg, &mut rep)?;
    }
    for name in listing(fresh_dir)? {
        if !base_names.contains(&name) {
            rep.notes
                .push(format!("{name}: new results file (absent from baseline)"));
        }
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(base: &str, fresh: &str) -> DiffReport {
        let mut rep = DiffReport::default();
        diff_json_text("t", base, fresh, &DiffConfig::default(), &mut rep).unwrap();
        rep
    }

    #[test]
    fn key_classification() {
        assert_eq!(rule_for("fastpath_csr_ns"), Rule::Timing);
        assert_eq!(rule_for("wall_ns"), Rule::Timing);
        assert_eq!(rule_for("solve_ns"), Rule::Timing);
        assert_eq!(rule_for("overhead_pct"), Rule::Pct);
        assert_eq!(rule_for("alloc_bytes"), Rule::Bytes);
        assert_eq!(rule_for("peak_bytes"), Rule::Bytes);
        assert_eq!(rule_for("alloc_count"), Rule::Bytes);
        assert_eq!(rule_for("speedup"), Rule::Ratio);
        assert_eq!(rule_for("speedup_csr"), Rule::Ratio);
        assert_eq!(rule_for("cached_speedup"), Rule::Ratio);
        assert_eq!(rule_for("efficiency"), Rule::Ratio);
        assert_eq!(rule_for("threads"), Rule::Ignore);
        assert_eq!(rule_for("path"), Rule::Ignore);
        assert_eq!(rule_for("proposals"), Rule::Exact);
        assert_eq!(rule_for("n"), Rule::Exact);
    }

    #[test]
    fn identical_documents_pass() {
        let doc = r#"{"n": 256, "proposals": 100, "fastpath_ns": 5000000, "speedup": 2.0}"#;
        let rep = run(doc, doc);
        assert!(rep.ok(), "{:?}", rep.regressions);
        assert_eq!(rep.compared, 4);
    }

    #[test]
    fn counter_drift_is_a_regression() {
        let rep = run(r#"{"proposals": 100}"#, r#"{"proposals": 101}"#);
        assert!(!rep.ok());
        assert!(rep.regressions[0].contains("t.proposals"), "{:?}", rep.regressions);
    }

    #[test]
    fn bytes_gate_one_sided_with_slack() {
        // Shrinking is always fine; growth within 30% is fine; growth
        // beyond 30% *and* beyond the 4 KiB floor regresses.
        assert!(run(r#"{"alloc_bytes": 1000000}"#, r#"{"alloc_bytes": 500000}"#).ok());
        assert!(run(r#"{"alloc_bytes": 1000000}"#, r#"{"alloc_bytes": 1250000}"#).ok());
        assert!(!run(r#"{"alloc_bytes": 1000000}"#, r#"{"alloc_bytes": 2000000}"#).ok());
        // Tiny rows sit under the absolute floor whatever the ratio.
        assert!(run(r#"{"alloc_bytes": 100}"#, r#"{"alloc_bytes": 4000}"#).ok());
    }

    #[test]
    fn timing_gates_one_sided_with_slack() {
        // 20% slower stays inside the default 30% tolerance.
        let rep = run(r#"{"solve_ns": 1000000}"#, r#"{"solve_ns": 1200000}"#);
        assert!(rep.ok());
        // 2x slower regresses.
        let rep = run(r#"{"solve_ns": 1000000}"#, r#"{"solve_ns": 2000000}"#);
        assert!(!rep.ok());
        assert!(rep.regressions[0].contains("slowed"));
        // 2x faster never regresses.
        let rep = run(r#"{"solve_ns": 2000000}"#, r#"{"solve_ns": 1000000}"#);
        assert!(rep.ok());
        // A 3x blowup under the absolute floor is jitter, not regression.
        let rep = run(r#"{"cached_ns": 120}"#, r#"{"cached_ns": 400}"#);
        assert!(rep.ok(), "{:?}", rep.regressions);
    }

    #[test]
    fn ratio_and_pct_rules() {
        let rep = run(r#"{"speedup": 2.0}"#, r#"{"speedup": 1.7}"#);
        assert!(rep.ok(), "within 25%: {:?}", rep.regressions);
        let rep = run(r#"{"speedup": 2.0}"#, r#"{"speedup": 1.0}"#);
        assert!(!rep.ok());
        assert!(rep.regressions[0].contains("shrank"));
        let rep = run(r#"{"overhead_pct": 2.0}"#, r#"{"overhead_pct": 4.5}"#);
        assert!(rep.ok(), "within 3 points: {:?}", rep.regressions);
        let rep = run(r#"{"overhead_pct": 2.0}"#, r#"{"overhead_pct": 9.0}"#);
        assert!(!rep.ok());
        assert!(rep.regressions[0].contains("overhead grew"));
    }

    #[test]
    fn host_shape_drift_is_a_note() {
        let rep = run(
            r#"{"threads": 1, "path": "serial"}"#,
            r#"{"threads": 8, "path": "parallel"}"#,
        );
        assert!(rep.ok());
        assert_eq!(rep.notes.len(), 2);
    }

    #[test]
    fn missing_rows_regress_new_rows_note() {
        let rep = run(r#"{"a": 1, "b": 2}"#, r#"{"a": 1, "c": 3}"#);
        assert!(!rep.ok());
        assert!(rep.regressions[0].contains("t.b"));
        assert!(rep.notes.iter().any(|n| n.contains("t.c")));
        // Shorter fresh arrays regress; longer ones note.
        let rep = run(r#"{"single": [1, 2]}"#, r#"{"single": [1]}"#);
        assert!(!rep.ok());
        let rep = run(r#"{"single": [1]}"#, r#"{"single": [1, 2]}"#);
        assert!(rep.ok());
        assert_eq!(rep.notes.len(), 1);
    }

    #[test]
    fn nested_paths_name_the_row() {
        let base = r#"{"single": [{"n": 256, "reference_ns": 100000}, {"n": 1024, "reference_ns": 9000000}]}"#;
        let fresh = r#"{"single": [{"n": 256, "reference_ns": 100000}, {"n": 1024, "reference_ns": 90000000}]}"#;
        let rep = run(base, fresh);
        assert_eq!(rep.regressions.len(), 1);
        assert!(rep.regressions[0].contains("t.single[1].reference_ns"), "{:?}", rep.regressions);
    }

    #[test]
    fn gated_file_selection() {
        assert!(is_gated_file("BENCH_gs.json"));
        assert!(is_gated_file("REPORT_roommates.json"));
        assert!(!is_gated_file("gs_scaling.csv"));
        assert!(!is_gated_file("BENCH_gs.json.bak"));
        assert!(!is_gated_file("notes.json"));
    }

    #[test]
    fn real_baselines_self_compare_clean() {
        // The committed results must pass the gate against themselves —
        // the same invariant ci.sh enforces.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        if !dir.exists() {
            return; // fresh checkout without results — nothing to gate
        }
        let rep = diff_dirs(&dir, &dir, &DiffConfig::default()).unwrap();
        assert!(rep.ok(), "{:?}", rep.regressions);
        assert!(rep.compared > 50, "walked the real files: {}", rep.compared);
    }
}
