//! Shared harness for the experiment binary and the Criterion benches:
//! deterministic workload construction and a plain-text table printer whose
//! output is pasted into EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod diff;
pub mod harness;
pub mod scaling;
pub mod sweep;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic RNG for experiment `tag` — every table regenerates
/// identically.
pub fn rng(tag: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x5EED_0000 + tag)
}

/// Fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===\n");
        print!("{}", self.render());
    }
}

/// Shorthand: stringify mixed cells.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        vec![$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["k", "value"]);
        t.row(cells!(3, "abc"));
        t.row(cells!(100, 2.5));
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("k"));
        assert!(lines[3].contains("100"));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(cells!(1));
    }

    #[test]
    fn rng_is_deterministic() {
        use rand::RngCore;
        assert_eq!(rng(1).next_u64(), rng(1).next_u64());
        assert_ne!(rng(1).next_u64(), rng(2).next_u64());
    }
}
