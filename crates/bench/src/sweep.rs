//! CSV output for parameter sweeps (the data behind plots).

use std::fmt::Write as _;
use std::path::Path;

/// A CSV table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Csv {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Start a CSV with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Csv {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV text (comma-separated; cells containing commas or
    /// quotes are quoted).
    pub fn render(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write to a file, creating parent directories.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_escapes() {
        let mut csv = Csv::new(&["a", "b"]);
        csv.row(vec!["1".into(), "plain".into()]);
        csv.row(vec!["2".into(), "has,comma".into()]);
        csv.row(vec!["3".into(), "has\"quote".into()]);
        let text = csv.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[2], "2,\"has,comma\"");
        assert_eq!(lines[3], "3,\"has\"\"quote\"");
        assert_eq!(csv.len(), 3);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_enforced() {
        let mut csv = Csv::new(&["a"]);
        csv.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn writes_to_disk() {
        let mut csv = Csv::new(&["x"]);
        csv.row(vec!["7".into()]);
        let dir = std::env::temp_dir().join("kmatch-sweep-test");
        let path = dir.join("out.csv");
        csv.write(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n7\n");
    }
}
