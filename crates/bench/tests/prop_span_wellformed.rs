//! Differential property suite for the span layer: on random instances,
//! every spanned entry point must (a) return exactly what its unspanned
//! twin returns and (b) record a well-formed timeline — balanced,
//! strictly nested, nondecreasing timestamps — whose phase counts agree
//! with the solver statistics. A fourth property checks the
//! flight-recorder contract: any suffix kept by the ring still passes
//! the truncated-head well-formedness check and accounts for every
//! dropped event.

use kmatch_core::{bind_spanned, bind_with_stats};
use kmatch_gs::GsWorkspace;
use kmatch_obs::{NoMetrics, StdClock};
use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_kpartite, uniform_roommates};
use kmatch_roommates::RoommatesWorkspace;
use kmatch_trace::{check_well_formed, span, EventKind, FlightRecorder, SpanSink, TraceRecorder};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn begins<'a>(events: impl IntoIterator<Item = &'a kmatch_trace::TraceEvent>, name: &str) -> usize {
    events
        .into_iter()
        .filter(|e| e.kind == EventKind::Begin && e.name == name)
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn gs_span_stream_is_well_formed(n in 1usize..40, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_bipartite(n, &mut rng);
        let plain = GsWorkspace::new().solve(&inst);
        let clock = StdClock::new();
        let mut rec = TraceRecorder::new(&clock);
        let spanned = GsWorkspace::new().solve_spanned(&inst, &mut NoMetrics, &mut rec);
        prop_assert_eq!(&spanned.matching, &plain.matching);
        prop_assert_eq!(spanned.stats, plain.stats);
        let events = rec.take();
        check_well_formed(&events, false).unwrap();
        prop_assert_eq!(begins(&events, span::GS_SOLVE), 1);
        prop_assert_eq!(begins(&events, span::GS_ROUND), plain.stats.rounds as usize);
    }

    fn roommates_span_stream_is_well_formed(n in 2usize..28, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_roommates(n, &mut rng);
        let plain = RoommatesWorkspace::new().solve(&inst);
        let clock = StdClock::new();
        let mut rec = TraceRecorder::new(&clock);
        let spanned =
            RoommatesWorkspace::new().solve_spanned(&inst, &mut NoMetrics, &mut rec);
        prop_assert_eq!(spanned.matching(), plain.matching());
        prop_assert_eq!(spanned.stats(), plain.stats());
        let events = rec.take();
        check_well_formed(&events, false).unwrap();
        prop_assert_eq!(begins(&events, span::IRVING_SOLVE), 1);
        prop_assert_eq!(begins(&events, span::IRVING_PHASE1), 1);
    }

    fn bind_span_stream_is_well_formed(
        k in 2usize..5,
        n in 1usize..12,
        star in 0u8..2,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_kpartite(k, n, &mut rng);
        let tree = if star == 1 {
            kmatch_graph::BindingTree::star(k, 0)
        } else {
            kmatch_graph::BindingTree::path(k)
        };
        let plain = bind_with_stats(&inst, &tree);
        let clock = StdClock::new();
        let mut rec = TraceRecorder::new(&clock);
        let spanned = bind_spanned(&inst, &tree, &mut NoMetrics, &mut rec);
        prop_assert_eq!(&spanned.matching, &plain.matching);
        prop_assert_eq!(&spanned.per_edge, &plain.per_edge);
        let events = rec.take();
        check_well_formed(&events, false).unwrap();
        // One edge span per tree edge, each enclosing one GS solve.
        prop_assert_eq!(begins(&events, span::BIND_EDGE), k - 1);
        prop_assert_eq!(begins(&events, span::GS_SOLVE), k - 1);
    }

    fn flight_recorder_suffix_stays_well_formed(
        n in 2usize..32,
        cap in 1usize..48,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_bipartite(n, &mut rng);
        let clock = StdClock::new();
        // Record the same solve through a ring large enough never to
        // wrap and one of random capacity; the small ring must hold
        // exactly the newest `cap` events of the full stream. (The
        // reference must be a FlightRecorder too: rings skip the
        // fine-grained round spans, so a TraceRecorder stream would be
        // longer.)
        let mut full = FlightRecorder::new(&clock, 1 << 20);
        GsWorkspace::new().solve_spanned(&inst, &mut NoMetrics, &mut full);
        prop_assert_eq!(full.dropped(), 0);
        let total = full.events().len();
        let mut ring = FlightRecorder::new(&clock, cap);
        GsWorkspace::new().solve_spanned(&inst, &mut NoMetrics, &mut ring);
        let dropped = ring.dropped() as usize;
        let kept = ring.events();
        prop_assert_eq!(dropped + kept.len(), total);
        prop_assert!(kept.len() <= cap);
        check_well_formed(&kept, true).unwrap();
        if dropped == 0 {
            // Nothing fell off: the strict check must also pass.
            check_well_formed(&kept, false).unwrap();
        } else {
            // The newest event always survives: the gs.solve close.
            prop_assert_eq!(kept.last().map(|e| e.name), Some(span::GS_SOLVE));
            prop_assert_eq!(kept.last().map(|e| e.kind), Some(EventKind::End));
        }
    }

    fn random_suffixes_of_synthetic_streams_pass_truncated_check(
        seed in 0u64..1 << 32,
        ops in 4usize..120,
    ) {
        // Differential form of the truncated-head semantics: generate a
        // random well-formed stream directly, then check that *every*
        // suffix passes with `allow_truncated_head` while the strict
        // check accepts exactly the suffixes starting at depth 0.
        const NAMES: [&str; 4] = ["a", "b", "c", "d"];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let clock = StdClock::new();
        let mut rec = TraceRecorder::new(&clock);
        let mut stack: Vec<&'static str> = Vec::new();
        let mut depth_at: Vec<usize> = Vec::new();
        for _ in 0..ops {
            depth_at.push(stack.len());
            if !stack.is_empty() && rng.gen_bool(0.45) {
                rec.end(stack.pop().unwrap());
            } else if rng.gen_bool(0.2) {
                rec.instant(NAMES[rng.gen_range(0..NAMES.len())], 0);
            } else {
                let name = NAMES[rng.gen_range(0..NAMES.len())];
                stack.push(name);
                rec.begin(name, 0);
            }
        }
        while let Some(name) = stack.pop() {
            depth_at.push(stack.len() + 1);
            rec.end(name);
        }
        let events = rec.take();
        for start in 0..events.len() {
            let suffix = &events[start..];
            check_well_formed(suffix, true).unwrap();
            let strict_ok = check_well_formed(suffix, false).is_ok();
            prop_assert_eq!(strict_ok, depth_at[start] == 0, "suffix at {}", start);
        }
    }
}
