//! End-to-end gate check for the `bench_diff` binary: an injected
//! regression must flip the `--check` exit code to nonzero, and a clean
//! comparison (including the committed baselines against themselves)
//! must pass.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kmatch-bench-diff-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .expect("bench_diff runs")
}

const BASELINE: &str = r#"{
  "threads": 1,
  "single": [
    {"n": 256, "proposals": 1757, "fastpath_ns": 6775.0, "speedup": 1.12},
    {"n": 2000, "proposals": 15653, "fastpath_ns": 176062.0, "speedup": 1.21}
  ],
  "metrics_overhead": {"instances": 32, "n": 2000, "plain_ns": 20278747.0, "metered_ns": 21775405.0, "overhead_pct": 7.38}
}
"#;

fn write_pair(base_dir: &Path, fresh_dir: &Path, fresh_text: &str) {
    fs::write(base_dir.join("BENCH_gs.json"), BASELINE).unwrap();
    fs::write(fresh_dir.join("BENCH_gs.json"), fresh_text).unwrap();
}

#[test]
fn clean_comparison_passes_and_regression_fails_check() {
    let base = scratch("base");
    let fresh = scratch("fresh");
    write_pair(&base, &fresh, BASELINE);
    let b = base.to_str().unwrap();
    let f = fresh.to_str().unwrap();

    let out = run(&["--baseline", b, "--fresh", f, "--check"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "identical files must pass: {stdout}");
    assert!(stdout.contains("bench diff: PASS"), "{stdout}");

    // Inject a 3x slowdown on one row and a counter drift on another.
    let doctored = BASELINE
        .replace("\"fastpath_ns\": 176062.0", "\"fastpath_ns\": 530000.0")
        .replace("\"proposals\": 1757", "\"proposals\": 1758");
    write_pair(&base, &fresh, &doctored);
    let out = run(&["--baseline", b, "--fresh", f, "--check"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "injected regression must fail --check: {stdout}");
    assert!(stdout.contains("REGRESSION: BENCH_gs.json.single[1].fastpath_ns"), "{stdout}");
    assert!(stdout.contains("REGRESSION: BENCH_gs.json.single[0].proposals"), "{stdout}");
    assert!(stdout.contains("bench diff: FAIL (--check)"), "{stdout}");

    // Report-only mode surfaces the same rows but keeps exit 0.
    let out = run(&["--baseline", b, "--fresh", f]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "report-only never gates: {stdout}");
    assert!(stdout.contains("report-only"), "{stdout}");

    // A loosened tolerance waves the slowdown through (counter drift
    // still fails: counters take no tolerance).
    let out = run(&["--baseline", b, "--fresh", f, "--check", "--timing-tol", "9.0"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success());
    assert!(!stdout.contains("fastpath_ns"), "{stdout}");
    assert!(stdout.contains("proposals"), "{stdout}");
}

#[test]
fn missing_fresh_file_fails_and_bad_flags_exit_2() {
    let base = scratch("mb");
    let fresh = scratch("mf");
    fs::write(base.join("REPORT_gs.json"), r#"{"wall_ns": 1}"#).unwrap();
    let out = run(&[
        "--baseline",
        base.to_str().unwrap(),
        "--fresh",
        fresh.to_str().unwrap(),
        "--check",
    ]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REPORT_gs.json: missing"), "{stdout}");

    let out = run(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--timing-tol", "banana"]);
    assert_eq!(out.status.code(), Some(2));
    // An empty baseline directory is a usage error, not a silent pass.
    let out = run(&[
        "--baseline",
        fresh.to_str().unwrap(),
        "--fresh",
        fresh.to_str().unwrap(),
        "--check",
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn committed_baselines_pass_against_themselves() {
    let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if !results.exists() {
        return;
    }
    let r = results.to_str().unwrap();
    let out = run(&["--baseline", r, "--fresh", r, "--check"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("bench diff: PASS"), "{stdout}");
}
