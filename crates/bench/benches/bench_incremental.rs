//! Incremental solving: warm-start re-solve and cache-hit lookups versus
//! a cold solve after a 1-row preference delta.
//!
//! The JSON acceptance numbers live in `bench_incremental_json`
//! (`results/BENCH_incremental.json`); this criterion bench tracks the
//! same three paths for regression spotting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmatch_bench::rng;
use kmatch_gs::GsWorkspace;
use kmatch_incremental::IncrementalGs;
use kmatch_prefs::gen::uniform::uniform_bipartite;
use kmatch_prefs::{CsrPrefs, DeltaSide, PrefDelta};
use rand::seq::SliceRandom;
use std::time::Duration;

fn delta_stream(n: usize, count: usize, tag: u64) -> Vec<PrefDelta> {
    let mut r = rng(tag);
    (0..count)
        .map(|i| {
            let mut prefs: Vec<u32> = (0..n as u32).collect();
            prefs.shuffle(&mut r);
            PrefDelta::SetRow {
                side: DeltaSide::Proposer,
                row: (i % n) as u32,
                prefs,
            }
        })
        .collect()
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [256usize, 1024] {
        let inst = uniform_bipartite(n, &mut rng(701 + n as u64));
        let id = format!("n{n}");

        // Cold: reload the arena and solve from scratch after each delta.
        let deltas = delta_stream(n, 64, 702);
        let mut shadow = inst.clone();
        let mut ws = GsWorkspace::with_capacity(n);
        let mut csr = CsrPrefs::new();
        let mut next = 0usize;
        group.bench_function(BenchmarkId::new("cold_rebuild", &id), |b| {
            b.iter(|| {
                shadow
                    .apply_delta(&deltas[next % deltas.len()])
                    .expect("valid delta");
                next += 1;
                csr.load(&shadow);
                ws.solve(&csr).stats.proposals
            })
        });

        // Warm: the incremental session re-frees only affected proposers.
        let warm_deltas = delta_stream(n, 4096, 703);
        let mut session = IncrementalGs::new(inst.clone());
        session.solve();
        let mut next = 0usize;
        group.bench_function(BenchmarkId::new("warm_resolve", &id), |b| {
            b.iter(|| {
                session
                    .apply(&warm_deltas[next % warm_deltas.len()])
                    .expect("valid delta");
                next += 1;
                session.solve().stats.proposals
            })
        });

        // Cached: the state never changes, every solve is a cache hit.
        let mut session = IncrementalGs::new(inst);
        session.solve();
        group.bench_function(BenchmarkId::new("cache_hit", &id), |b| {
            b.iter(|| session.solve().matching)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
