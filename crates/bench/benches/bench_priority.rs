//! E11/E12 — Algorithm 2 vs Algorithm 1: priority-tree construction is
//! free; the cost difference is tree shape only. Plus weak-stability
//! verification cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmatch_bench::rng;
use kmatch_core::{
    bind, bind_with_stats, is_weakly_stable, priority_bind, AttachChoice, GenderPriorities,
};
use kmatch_graph::BindingTree;
use kmatch_prefs::gen::uniform::uniform_kpartite;
use std::time::Duration;

fn bench_priority(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for (k, n) in [(4usize, 128usize), (8, 128)] {
        let inst = uniform_kpartite(k, n, &mut rng(501));
        let pr = GenderPriorities::by_id(k);
        let id = format!("k{k}_n{n}");
        group.bench_with_input(
            BenchmarkId::new("algorithm1_path", &id),
            &inst,
            |b, inst| b.iter(|| bind_with_stats(inst, &BindingTree::path(k)).total_proposals()),
        );
        group.bench_with_input(
            BenchmarkId::new("algorithm2_chain", &id),
            &inst,
            |b, inst| b.iter(|| priority_bind(inst, &pr, AttachChoice::Chain).1.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("algorithm2_star", &id),
            &inst,
            |b, inst| {
                b.iter(|| {
                    priority_bind(inst, &pr, AttachChoice::HighestPriority)
                        .1
                        .len()
                })
            },
        );
    }
    group.finish();
}

fn bench_weak_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak_verify");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for (k, n) in [(3usize, 16usize), (4, 12), (5, 8)] {
        let inst = uniform_kpartite(k, n, &mut rng(502));
        let pr = GenderPriorities::by_id(k);
        let (matching, _) = priority_bind(&inst, &pr, AttachChoice::Chain);
        group.bench_with_input(
            BenchmarkId::new("weak_stable_check", format!("k{k}_n{n}")),
            &(&inst, &matching),
            |b, (inst, m)| b.iter(|| is_weakly_stable(inst, m, &pr)),
        );
        let full = bind(&inst, &BindingTree::path(k));
        group.bench_with_input(
            BenchmarkId::new("full_stable_check", format!("k{k}_n{n}")),
            &(&inst, &full),
            |b, (inst, m)| b.iter(|| kmatch_core::is_kary_stable(inst, m)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_priority, bench_weak_verify);
criterion_main!(benches);
