//! E1b — hot-path throughput: the zero-allocation workspace fast path
//! against the reference engine, the CSR preference arena, and the
//! parallel batch front-end.
//!
//! Three comparisons, all on the same deterministic workloads:
//!
//! * `reference` vs `fastpath` — the monomorphized untraced engine with a
//!   reused [`GsWorkspace`] against the original runtime-checked loop.
//! * `fastpath_csr` — the same fast path reading a [`CsrPrefs`] snapshot,
//!   whose fused proposal-entry rows make every proposal one sequential
//!   load (the headline configuration; see `results/BENCH_gs.json`).
//! * `batch_serial` vs `solve_batch` — 1000 instances solved through one
//!   workspace serially, then fanned across the rayon pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kmatch_bench::rng;
use kmatch_gs::{gale_shapley_reference, GsWorkspace};
use kmatch_parallel::solve_batch;
use kmatch_prefs::gen::uniform::uniform_bipartite;
use kmatch_prefs::{BipartiteInstance, CsrPrefs};
use std::time::Duration;

fn bench_fastpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("gs_throughput");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [256usize, 1024, 2000] {
        let inst = uniform_bipartite(n, &mut rng(201));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("reference", n), &inst, |b, inst| {
            b.iter(|| gale_shapley_reference(inst).stats.proposals)
        });
        group.bench_with_input(BenchmarkId::new("fastpath", n), &inst, |b, inst| {
            let mut ws = GsWorkspace::with_capacity(n);
            b.iter(|| ws.solve(inst).stats.proposals)
        });
        group.bench_with_input(BenchmarkId::new("fastpath_csr", n), &inst, |b, inst| {
            let mut ws = GsWorkspace::with_capacity(n);
            let csr = CsrPrefs::from_prefs(inst);
            b.iter(|| ws.solve(&csr).stats.proposals)
        });
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("gs_batch");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let mut r = rng(202);
    let batch: Vec<BipartiteInstance> = (0..1000).map(|_| uniform_bipartite(64, &mut r)).collect();
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("batch_serial_1000x64", |b| {
        let mut ws = GsWorkspace::with_capacity(64);
        b.iter(|| {
            batch
                .iter()
                .map(|inst| ws.solve(inst).stats.proposals)
                .sum::<u64>()
        })
    });
    group.bench_function("solve_batch_1000x64", |b| {
        b.iter(|| solve_batch(&batch).len())
    });
    group.finish();
}

criterion_group!(benches, bench_fastpath, bench_batch);
criterion_main!(benches);
