//! Verifier ablation (DESIGN.md): dense rank-table lookups vs list-scan
//! preference comparisons in the blocking-pair/blocking-family search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmatch_bench::rng;
use kmatch_core::{bind, find_blocking_family};
use kmatch_graph::BindingTree;
use kmatch_gs::{find_blocking_pair, gale_shapley};
use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_kpartite};
use kmatch_prefs::{BipartitePrefs, Rank};
use std::time::Duration;

/// Scan-based adapter: proposer/responder rank by linear list scan,
/// the representation a naive implementation would use.
struct ScanPrefs<'a>(&'a kmatch_prefs::BipartiteInstance);

impl BipartitePrefs for ScanPrefs<'_> {
    fn n(&self) -> usize {
        self.0.n()
    }
    fn proposer_list(&self, m: u32) -> &[u32] {
        self.0.proposer_list(m)
    }
    fn responder_rank(&self, w: u32, m: u32) -> Rank {
        self.0
            .responder_list(w)
            .iter()
            .position(|&x| x == m)
            .unwrap() as Rank
    }
    fn proposer_rank(&self, m: u32, w: u32) -> Rank {
        self.0
            .proposer_list(m)
            .iter()
            .position(|&x| x == w)
            .unwrap() as Rank
    }
}

fn bench_bipartite_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("bipartite_verify");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [128usize, 512] {
        let inst = uniform_bipartite(n, &mut rng(601));
        let matching = gale_shapley(&inst).matching;
        group.bench_with_input(BenchmarkId::new("rank_table", n), &(), |b, _| {
            b.iter(|| find_blocking_pair(&inst, &matching).is_none())
        });
        let scan = ScanPrefs(&inst);
        group.bench_with_input(BenchmarkId::new("list_scan", n), &(), |b, _| {
            b.iter(|| find_blocking_pair(&scan, &matching).is_none())
        });
    }
    group.finish();
}

fn bench_kary_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("kary_verify");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for (k, n) in [(3usize, 32usize), (4, 16), (5, 12), (6, 8)] {
        let inst = uniform_kpartite(k, n, &mut rng(602));
        let matching = bind(&inst, &BindingTree::path(k));
        group.bench_with_input(
            BenchmarkId::new("blocking_family_dfs", format!("k{k}_n{n}")),
            &(),
            |b, _| b.iter(|| find_blocking_family(&inst, &matching).is_none()),
        );
    }
    group.finish();
}

fn bench_lattice_and_blossom(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice_blossom");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    // Full stable-lattice enumeration via rotations.
    for n in [16usize, 64] {
        let inst = uniform_bipartite(n, &mut rng(603));
        group.bench_with_input(BenchmarkId::new("lattice_enumeration", n), &(), |b, _| {
            b.iter(|| {
                kmatch_gs::rotations::enumerate_stable_lattice(&inst, 1_000_000)
                    .unwrap()
                    .matchings
                    .len()
            })
        });
    }
    // Blossom perfect-matching decision on Theorem-1 acceptability graphs.
    for (k, n) in [(4usize, 16usize), (6, 32)] {
        let rm = kmatch_prefs::gen::adversarial::theorem1_roommates(k, n);
        let g = kmatch_core::theorems::acceptability_graph(&rm);
        group.bench_with_input(
            BenchmarkId::new("blossom_perfect", format!("k{k}_n{n}")),
            &(),
            |b, _| b.iter(|| kmatch_graph::matching::has_perfect_matching(&g)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bipartite_verify,
    bench_kary_verify,
    bench_lattice_and_blossom
);
criterion_main!(benches);
