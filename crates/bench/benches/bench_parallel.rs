//! E8/E9 — parallel binding: rayon executor vs sequential Algorithm 1,
//! and schedule shape (even-odd path vs Δ-coloring vs unscheduled).
//!
//! On a single-core host the wall-clock difference is noise; the paper's
//! round/iteration claims are covered by the PRAM model in `experiments`.
//! On multicore hardware this bench exhibits the real speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmatch_bench::rng;
use kmatch_core::bind_with_stats;
use kmatch_graph::{even_odd_path_schedule, tree_edge_coloring, BindingTree};
use kmatch_parallel::{parallel_bind, parallel_bind_scheduled};
use kmatch_prefs::gen::uniform::uniform_kpartite;
use std::time::Duration;

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for (k, n) in [(8usize, 128usize), (16, 128)] {
        let inst = uniform_kpartite(k, n, &mut rng(401));
        let tree = BindingTree::path(k);
        let even_odd = even_odd_path_schedule(&tree).unwrap();
        let coloring = tree_edge_coloring(&tree);
        let id = format!("k{k}_n{n}");
        group.bench_with_input(BenchmarkId::new("sequential", &id), &inst, |b, inst| {
            b.iter(|| bind_with_stats(inst, &tree).total_proposals())
        });
        group.bench_with_input(BenchmarkId::new("rayon_all", &id), &inst, |b, inst| {
            b.iter(|| parallel_bind(inst, &tree).per_edge.len())
        });
        group.bench_with_input(BenchmarkId::new("rayon_even_odd", &id), &inst, |b, inst| {
            b.iter(|| parallel_bind_scheduled(inst, &tree, &even_odd).rounds_executed)
        });
        group.bench_with_input(BenchmarkId::new("rayon_coloring", &id), &inst, |b, inst| {
            b.iter(|| parallel_bind_scheduled(inst, &tree, &coloring).rounds_executed)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
