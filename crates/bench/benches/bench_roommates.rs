//! E2/E3/E4 — Irving's algorithm: scaling on random instances, the
//! Theorem-1 adversarial family, and fair-SMP overhead vs plain GS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmatch_bench::rng;
use kmatch_gs::gale_shapley;
use kmatch_prefs::gen::adversarial::theorem1_roommates;
use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_roommates};
use kmatch_roommates::{fair_stable_marriage, solve, solve_reference, RoommatesWorkspace};
use std::time::Duration;

fn bench_roommates(c: &mut Criterion) {
    let mut group = c.benchmark_group("roommates");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [64usize, 256, 1024] {
        let inst = uniform_roommates(n, &mut rng(301));
        group.bench_with_input(BenchmarkId::new("reference", n), &inst, |b, inst| {
            b.iter(|| solve_reference(inst).is_stable())
        });
        group.bench_with_input(BenchmarkId::new("uniform", n), &inst, |b, inst| {
            b.iter(|| solve(inst).is_stable())
        });
        let mut ws = RoommatesWorkspace::new();
        group.bench_with_input(BenchmarkId::new("workspace_reuse", n), &inst, |b, inst| {
            b.iter(|| ws.solve(inst).is_stable())
        });
    }
    for (k, n) in [(3usize, 32usize), (6, 32), (3, 256)] {
        let inst = theorem1_roommates(k, n);
        group.bench_with_input(
            BenchmarkId::new("theorem1", format!("k{k}_n{n}")),
            &inst,
            |b, inst| b.iter(|| solve(inst).is_stable()),
        );
    }
    group.finish();
}

fn bench_roommates_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("roommates_batch");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let mut r = rng(303);
    let batch: Vec<_> = (0..256).map(|_| uniform_roommates(64, &mut r)).collect();
    let mut ws = RoommatesWorkspace::new();
    group.bench_function("serial_reuse_256x64", |b| {
        b.iter(|| {
            batch
                .iter()
                .filter(|inst| ws.solve(inst).is_stable())
                .count()
        })
    });
    group.bench_function("solve_batch_256x64", |b| {
        b.iter(|| {
            kmatch_parallel::roommates::solve_batch(&batch)
                .iter()
                .filter(|o| o.is_stable())
                .count()
        })
    });
    group.finish();
}

fn bench_fair_smp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fair_smp");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [64usize, 256] {
        let inst = uniform_bipartite(n, &mut rng(302));
        group.bench_with_input(BenchmarkId::new("gs_baseline", n), &inst, |b, inst| {
            b.iter(|| gale_shapley(inst).stats.proposals)
        });
        group.bench_with_input(BenchmarkId::new("fair_roommates", n), &inst, |b, inst| {
            b.iter(|| fair_stable_marriage(inst).stats.proposals)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_roommates, bench_roommates_batch, bench_fair_smp);
criterion_main!(benches);
