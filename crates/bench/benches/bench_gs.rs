//! E1 — Gale–Shapley scaling: proposals grow with n² on adversarial
//! workloads, linearly on benign ones; the McVitie–Wilson variant is the
//! low-bookkeeping baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kmatch_bench::rng;
use kmatch_gs::{gale_shapley, mcvitie_wilson};
use kmatch_prefs::gen::structured::{cyclic_bipartite, identical_bipartite};
use kmatch_prefs::gen::uniform::uniform_bipartite;
use std::time::Duration;

fn bench_gs(c: &mut Criterion) {
    let mut group = c.benchmark_group("gs");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [64usize, 256, 1024] {
        let uniform = uniform_bipartite(n, &mut rng(101));
        let identical = identical_bipartite(n);
        let cyclic = cyclic_bipartite(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("uniform", n), &uniform, |b, inst| {
            b.iter(|| gale_shapley(inst).stats.proposals)
        });
        group.bench_with_input(
            BenchmarkId::new("identical_worst", n),
            &identical,
            |b, inst| b.iter(|| gale_shapley(inst).stats.proposals),
        );
        group.bench_with_input(BenchmarkId::new("cyclic_best", n), &cyclic, |b, inst| {
            b.iter(|| gale_shapley(inst).stats.proposals)
        });
        group.bench_with_input(
            BenchmarkId::new("mcvitie_uniform", n),
            &uniform,
            |b, inst| b.iter(|| mcvitie_wilson(inst).stats.proposals),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gs);
criterion_main!(benches);
