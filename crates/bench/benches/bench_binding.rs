//! E5/E6 — Algorithm 1: binding cost across k, n and tree topology, and
//! the union-find vs naive-closure ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kmatch_bench::rng;
use kmatch_core::bind_with_stats;
use kmatch_graph::union_find::{classes_naive, UnionFind};
use kmatch_graph::{random_tree, BindingTree};
use kmatch_prefs::gen::uniform::uniform_kpartite;
use std::time::Duration;

fn bench_binding(c: &mut Criterion) {
    let mut group = c.benchmark_group("binding");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for (k, n) in [(4usize, 64usize), (4, 256), (8, 64), (8, 256), (16, 64)] {
        let inst = uniform_kpartite(k, n, &mut rng(201));
        for (name, tree) in [
            ("path", BindingTree::path(k)),
            ("star", BindingTree::star(k, 0)),
            ("random", random_tree(k, &mut rng(202))),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("k{k}_n{n}")),
                &(&inst, &tree),
                |b, (inst, tree)| b.iter(|| bind_with_stats(inst, tree).total_proposals()),
            );
        }
    }
    group.finish();
}

fn bench_class_merge(c: &mut Criterion) {
    // Ablation: union-find vs naive relational closure on the (k-1)*n
    // pair workload of a large binding.
    let mut group = c.benchmark_group("class_merge");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for (k, n) in [(8usize, 512usize), (16, 512)] {
        // Pairs of a path binding: (g*n+i, (g+1)*n+i) shuffled-ish.
        let pairs: Vec<(u32, u32)> = (0..k - 1)
            .flat_map(|g| {
                (0..n as u32).map(move |i| ((g * n) as u32 + i, ((g + 1) * n) as u32 + i))
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("union_find", format!("k{k}_n{n}")),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut uf = UnionFind::new(k * n);
                    for &(a, x) in pairs {
                        uf.union(a, x);
                    }
                    uf.classes().len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive_closure", format!("k{k}_n{n}")),
            &pairs,
            |b, pairs| b.iter(|| classes_naive(k * n, pairs).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_binding, bench_class_merge);
criterion_main!(benches);
