//! Trace rendering in the paper's notation.
//!
//! §III-B writes runs of the roommates algorithm as lines like
//!
//! ```text
//! w → m   m holds   w removes m: w'u
//! ```
//!
//! ("`w → m` represents a proposal from w to m. `m: uw'` represents
//! removing u and w' from m's list.") These renderers reproduce that
//! notation from the solvers' event logs.

use kmatch_gs::GsEvent;
use kmatch_roommates::RoommatesEvent;

use crate::names::NameMap;

/// Render a roommates event log in §III-B style, one event per line.
pub fn render_roommates_trace(events: &[RoommatesEvent], names: &NameMap) -> String {
    let mut out = String::new();
    for event in events {
        match event {
            RoommatesEvent::Proposal {
                from,
                to,
                displaced,
            } => {
                out.push_str(&format!(
                    "{} → {}   {} holds",
                    names.of(*from),
                    names.of(*to),
                    names.of(*to)
                ));
                if let Some(z) = displaced {
                    out.push_str(&format!("   rejects {}", names.of(*z)));
                }
                out.push('\n');
            }
            RoommatesEvent::Truncation {
                holder,
                kept: _,
                removed,
            } => {
                out.push_str(&format!(
                    "        removes {}: {}\n",
                    names.of(*holder),
                    names.concat(removed)
                ));
            }
            RoommatesEvent::Rotation { xs, ys } => {
                let cycle: Vec<String> = xs
                    .iter()
                    .zip(ys)
                    .map(|(x, y)| format!("{}→{}", names.of(*x), names.of(*y)))
                    .collect();
                out.push_str(&format!("loop: {}\n", cycle.join(", ")));
            }
            RoommatesEvent::ListEmptied { who } => {
                out.push_str(&format!(
                    "{}'s reduced list is empty — no stable matching\n",
                    names.of(*who)
                ));
            }
        }
    }
    out
}

/// Render a Gale–Shapley event log; proposers and responders have separate
/// name maps.
pub fn render_gs_trace(events: &[GsEvent], proposers: &NameMap, responders: &NameMap) -> String {
    let mut out = String::new();
    for event in events {
        match event {
            GsEvent::RoundStart { round } => {
                out.push_str(&format!("— round {round} —\n"));
            }
            GsEvent::Propose {
                proposer,
                responder,
            } => {
                out.push_str(&format!(
                    "{} → {}\n",
                    proposers.of(*proposer),
                    responders.of(*responder)
                ));
            }
            GsEvent::Engage {
                proposer,
                responder,
            } => {
                out.push_str(&format!(
                    "        {} says maybe to {}\n",
                    responders.of(*responder),
                    proposers.of(*proposer)
                ));
            }
            GsEvent::Reject {
                proposer,
                responder,
            } => {
                out.push_str(&format!(
                    "        {} rejects {}\n",
                    responders.of(*responder),
                    proposers.of(*proposer)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_gs::gale_shapley_traced;
    use kmatch_prefs::gen::paper::{example1_first, section3b_left, section3b_right};
    use kmatch_roommates::solve_traced;

    #[test]
    fn left_instance_trace_reads_like_the_paper() {
        let inst = section3b_left();
        let (out, events) = solve_traced(&inst);
        assert!(out.is_stable());
        let text = render_roommates_trace(&events, &NameMap::paper_tripartite());
        // The trace must contain paper-style proposal arrows and removal
        // lines (the exact sequence differs from the paper's manual order,
        // which is legal — phase 1 is confluent).
        assert!(text.contains("→"), "has proposal arrows:\n{text}");
        assert!(text.contains("removes"), "has removal lines:\n{text}");
        // m proposes to u' at some point (m: u' is his top choice).
        assert!(text.contains("m → u'"), "m's first proposal:\n{text}");
    }

    #[test]
    fn right_instance_trace_ends_with_empty_list() {
        let inst = section3b_right();
        let (out, events) = solve_traced(&inst);
        assert!(!out.is_stable());
        let text = render_roommates_trace(&events, &NameMap::paper_tripartite());
        assert!(
            text.contains("reduced list is empty — no stable matching"),
            "paper's certificate line:\n{text}"
        );
    }

    #[test]
    fn gs_trace_renders_dialogue() {
        let out = gale_shapley_traced(&example1_first());
        let men = NameMap::new(vec!["m".into(), "m'".into()]);
        let women = NameMap::new(vec!["w".into(), "w'".into()]);
        let text = render_gs_trace(out.trace.as_ref().unwrap(), &men, &women);
        assert!(text.contains("— round 1 —"));
        assert!(text.contains("m → w"));
        assert!(text.contains("w rejects m"));
        assert!(text.contains("w' says maybe to m"));
    }
}
