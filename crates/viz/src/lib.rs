//! # kmatch-viz — plain-text rendering
//!
//! Human-readable views for reports, examples and the CLI:
//!
//! * [`tree_art`] — binding trees as indented ASCII art with per-node
//!   degree and schedule-round annotations;
//! * [`tables`] — k-ary matchings and bipartite matchings as aligned text
//!   tables with happiness columns;
//! * [`traces`] — Gale–Shapley and Irving traces rendered in the **paper's
//!   §III-B notation** (`w → m   m holds   removes m: w'u`), with optional
//!   participant name maps so the output reads exactly like the paper's
//!   worked examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod names;
pub mod tables;
pub mod traces;
pub mod tree_art;

pub use names::NameMap;
pub use tables::{render_bipartite_matching, render_kary_matching, render_reduced_lists};
pub use traces::{render_gs_trace, render_roommates_trace};
pub use tree_art::render_tree;
