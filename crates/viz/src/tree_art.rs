//! ASCII rendering of binding trees.

use kmatch_graph::{tree_edge_coloring, BindingTree};

/// Render the tree rooted at node 0 with box-drawing branches. Each node
/// line shows the gender, its degree, and the schedule round (edge color)
/// of the edge to its parent:
///
/// ```text
/// G0 (Δ-contrib 2)
/// ├─[r0] G1
/// │  └─[r1] G2
/// └─[r1] G3
/// ```
pub fn render_tree(tree: &BindingTree) -> String {
    let adj = tree.adjacency();
    let schedule = tree_edge_coloring(tree);
    // edge -> round number.
    let mut round_of_edge = vec![0usize; tree.edges().len()];
    for (r, round) in schedule.rounds().iter().enumerate() {
        for &e in round {
            round_of_edge[e] = r;
        }
    }
    let edge_index = |a: u16, b: u16| -> usize {
        tree.edges()
            .iter()
            .position(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
            .expect("adjacent nodes share an edge")
    };
    let mut out = String::new();
    let degrees = tree.degrees();
    out.push_str(&format!("G0 (degree {})\n", degrees[0]));
    // Depth-first with prefix tracking.
    fn recurse(
        node: u16,
        parent: u16,
        prefix: &str,
        adj: &[Vec<u16>],
        edge_index: &dyn Fn(u16, u16) -> usize,
        round_of_edge: &[usize],
        out: &mut String,
    ) {
        let children: Vec<u16> = adj[node as usize]
            .iter()
            .copied()
            .filter(|&c| c != parent)
            .collect();
        for (idx, &child) in children.iter().enumerate() {
            let last = idx + 1 == children.len();
            let branch = if last { "└─" } else { "├─" };
            let round = round_of_edge[edge_index(node, child)];
            out.push_str(&format!("{prefix}{branch}[r{round}] G{child}\n"));
            let next_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
            recurse(
                child,
                node,
                &next_prefix,
                adj,
                edge_index,
                round_of_edge,
                out,
            );
        }
    }
    recurse(0, u16::MAX, "", &adj, &edge_index, &round_of_edge, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_renders_as_chain() {
        let art = render_tree(&BindingTree::path(4));
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("G0"));
        assert!(lines[1].contains("G1"));
        assert!(lines[3].contains("G3"));
        // Alternating rounds along a path.
        assert!(lines[1].contains("[r0]"));
        assert!(lines[2].contains("[r1]"));
        assert!(lines[3].contains("[r0]"));
    }

    #[test]
    fn star_renders_all_children() {
        let art = render_tree(&BindingTree::star(5, 0));
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("degree 4"));
        // All four rounds distinct on a star.
        for r in 0..4 {
            assert!(art.contains(&format!("[r{r}]")), "round {r} missing");
        }
        // Last child uses the corner branch.
        assert!(lines[4].starts_with("└─"));
    }

    #[test]
    fn every_gender_appears_once() {
        let tree = BindingTree::balanced_binary(7);
        let art = render_tree(&tree);
        for g in 0..7 {
            assert_eq!(
                art.matches(&format!("G{g}")).count(),
                1,
                "gender {g} must appear exactly once\n{art}"
            );
        }
    }
}
