//! Participant name maps.
//!
//! Solvers work on dense indices; renderers accept an optional [`NameMap`]
//! so output can use the paper's `m, m', w, w', u, u'` notation.

/// Maps participant/member indices to display names.
#[derive(Debug, Clone, Default)]
pub struct NameMap {
    names: Vec<String>,
}

impl NameMap {
    /// Build from explicit names; index `i` displays as `names[i]`.
    pub fn new(names: Vec<String>) -> Self {
        NameMap { names }
    }

    /// The paper's tripartite cast in the roommates numbering:
    /// `m, m', w, w', u, u'`.
    pub fn paper_tripartite() -> Self {
        NameMap::new(["m", "m'", "w", "w'", "u", "u'"].map(String::from).to_vec())
    }

    /// Names `p0, p1, …` for anonymous participants.
    pub fn numbered(n: usize, prefix: &str) -> Self {
        NameMap::new((0..n).map(|i| format!("{prefix}{i}")).collect())
    }

    /// Display name of `i` (falls back to the bare index).
    pub fn of(&self, i: u32) -> String {
        self.names
            .get(i as usize)
            .cloned()
            .unwrap_or_else(|| i.to_string())
    }

    /// Concatenated names of several indices (the paper writes removal
    /// lists as `w'u`).
    pub fn concat(&self, ids: &[u32]) -> String {
        ids.iter().map(|&i| self.of(i)).collect::<Vec<_>>().join("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names() {
        let names = NameMap::paper_tripartite();
        assert_eq!(names.of(0), "m");
        assert_eq!(names.of(5), "u'");
        assert_eq!(names.concat(&[3, 4]), "w'u");
    }

    #[test]
    fn fallback_and_numbered() {
        let names = NameMap::numbered(3, "x");
        assert_eq!(names.of(2), "x2");
        assert_eq!(names.of(9), "9", "out-of-range falls back to the index");
    }
}
