//! Text tables for matchings.

use kmatch_core::{family_cost, KAryMatching};
use kmatch_gs::BipartiteMatching;
use kmatch_prefs::{BipartiteInstance, GenderId, KPartiteInstance};

use crate::names::NameMap;

/// Render a k-ary matching as one line per family with each member's rank
/// of its partners in parentheses, plus a happiness footer:
///
/// ```text
/// family 0: G0[2] G1[0] G2[1]   mean partner rank 0.67
/// ...
/// overall mean 1.20, worst 3
/// ```
pub fn render_kary_matching(inst: &KPartiteInstance, matching: &KAryMatching) -> String {
    let k = inst.k();
    let mut out = String::new();
    for f in matching.family_ids() {
        let mut total = 0u64;
        let members: Vec<String> = (0..k)
            .map(|g| {
                let me = matching.member_of(f, GenderId::from(g));
                for h in 0..k {
                    if h != g {
                        let partner = matching.member_of(f, GenderId::from(h));
                        total += inst.rank_of(me, partner.gender, partner.index) as u64;
                    }
                }
                format!("G{g}[{}]", me.index)
            })
            .collect();
        let mean = total as f64 / (k * (k - 1)) as f64;
        out.push_str(&format!(
            "family {f}: {}   mean partner rank {mean:.2}\n",
            members.join(" ")
        ));
    }
    let cost = family_cost(inst, matching);
    out.push_str(&format!(
        "overall mean {:.2}, worst {}\n",
        cost.mean_rank, cost.max_rank
    ));
    out
}

/// Render a bipartite matching with names and both sides' ranks:
///
/// ```text
/// m  — w'   (his rank 1, her rank 0)
/// ```
pub fn render_bipartite_matching(
    inst: &BipartiteInstance,
    matching: &BipartiteMatching,
    proposers: &NameMap,
    responders: &NameMap,
) -> String {
    let mut out = String::new();
    for (m, w) in matching.pairs() {
        out.push_str(&format!(
            "{} — {}   (his rank {}, her rank {})\n",
            proposers.of(m),
            responders.of(w),
            inst.proposer_rank(m, w),
            inst.responder_rank(w, m)
        ));
    }
    out
}

/// Render the reduced preference lists of a (partially solved) roommates
/// table, §III-B style: one `who: partners…` line each.
pub fn render_reduced_lists(
    table: &kmatch_roommates::active::ActiveTable<'_>,
    names: &NameMap,
) -> String {
    let mut out = String::new();
    for p in 0..table.n() as u32 {
        let list = table.reduced_list(p);
        let rendered: Vec<String> = list.iter().map(|&q| names.of(q)).collect();
        out.push_str(&format!("{:<4}: {}\n", names.of(p), rendered.join(" ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_core::bind;
    use kmatch_graph::BindingTree;
    use kmatch_gs::gale_shapley;
    use kmatch_prefs::gen::paper::{example1_second, fig3_tripartite};

    #[test]
    fn kary_table_shape() {
        let inst = fig3_tripartite();
        let m = bind(&inst, &BindingTree::path(3));
        let table = render_kary_matching(&inst, &m);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "two families + footer");
        assert!(lines[0].starts_with("family 0:"));
        assert!(lines[2].starts_with("overall mean"));
    }

    #[test]
    fn reduced_lists_render_paper_style() {
        use kmatch_roommates::active::ActiveTable;
        use kmatch_roommates::phase1::phase1;
        let inst = kmatch_prefs::gen::paper::section3b_left();
        let mut table = ActiveTable::new(&inst);
        let mut proposals = 0;
        let _ = phase1(&mut table, &mut proposals);
        let text = render_reduced_lists(&table, &NameMap::paper_tripartite());
        assert_eq!(text.lines().count(), 6);
        assert!(text.starts_with("m   :"), "{text}");
    }

    #[test]
    fn bipartite_table_uses_names() {
        let inst = example1_second();
        let m = gale_shapley(&inst).matching;
        let men = NameMap::new(vec!["m".into(), "m'".into()]);
        let women = NameMap::new(vec!["w".into(), "w'".into()]);
        let table = render_bipartite_matching(&inst, &m, &men, &women);
        assert!(
            table.contains("m — w "),
            "man-optimal pairs m with w:\n{table}"
        );
        assert!(table.contains("m' — w'"));
        assert!(table.contains("his rank 0"));
    }
}
