//! `kmatch` — command-line interface to the stable-matching library.
//!
//! ```text
//! kmatch gen kpartite  --k 4 --n 8 --seed 1 [--alpha 0.0] --out inst.json
//! kmatch gen theorem1  --k 3 --n 4 --out rm.json
//! kmatch solve kary    --input inst.json [--tree path|star|random|priority] [--seed 7]
//! kmatch solve binary  --input rm.json
//! kmatch solve smp     --n 16 --seed 3 [--mode gs|fair|man|woman]
//! kmatch verify kary   --input inst.json --matching matching.json [--weak]
//! ```

mod args;
mod traceio;

use std::fs;
use std::process::ExitCode;

use args::Args;
use traceio::TraceOpts;
use kmatch_core::{
    bind_with_stats, family_cost, find_blocking_family, find_weak_blocking_family,
    priority_binding_tree, AttachChoice, GenderPriorities, KAryMatching,
};
use kmatch_graph::{random_tree, BindingTree};
use kmatch_gs::{mean_proposer_rank, mean_responder_rank, GsWorkspace};
use kmatch_incremental::fingerprint::{self, Fp};
use kmatch_incremental::{IncrementalBinder, IncrementalGs, SolveCache};
use kmatch_obs::Metrics;
use kmatch_prefs::serde_support::{KPartiteDto, PrefDeltaDto, RoommatesDto};
use kmatch_prefs::{
    BipartiteInstance, CsrPrefs, GenderId, KPartiteInstance, Member, PrefDelta, RoommatesInstance,
};
use kmatch_roommates::kpartite::{solve_global_binary, KPartiteBinaryOutcome};
use kmatch_roommates::{fair_stable_marriage, oriented_stable_marriage, SmpOrientation};
use kmatch_trace::TraceTrack;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const USAGE: &str = "\
kmatch — stable matching beyond bipartite graphs (IPPS 2016 reproduction)

USAGE:
  kmatch gen kpartite  --k K --n N [--seed S] [--alpha A] [--out FILE]
  kmatch gen theorem1  --k K --n N [--out FILE]
  kmatch solve kary    --input FILE [--tree path|star|random|priority] [--seed S]
  kmatch solve binary  --input FILE
  kmatch solve smp     --n N [--seed S] [--mode gs|fair|man|woman]
                       [--prefs csr|scores|random] [--list-cap K]
                       [--metrics-out FILE] [--metrics-format json|prom]
                       [--trace-out FILE] [--trace-format chrome|json]
                       [--flight-recorder N]
  kmatch batch         [--n N] [--count C] [--seed S] [--kind gs|roommates]
                       [--input FILE]... [--cache on|off] [--errors-out FILE]
                       [--metrics-out FILE] [--metrics-format json|prom]
                       [--trace-out FILE] [--trace-format chrome|json]
                       [--flight-recorder N]
  kmatch delta         --input FILE --deltas FILE [--metrics-out FILE]
                       [--trace-out FILE] [--trace-format chrome|json]
                       [--flight-recorder N]
  kmatch bind          --input FILE [--tree path|star|random|priority] [--seed S]
                       [--incremental true] [--updates FILE] [--metrics-out FILE]
                       [--trace-out FILE] [--trace-format chrome|json]
                       [--flight-recorder N]
  kmatch report validate --input FILE          (check an emitted RunReport)
  kmatch verify kary   --input FILE --matching FILE [--weak]
  kmatch lattice       --n N [--seed S] [--limit L]
  kmatch trace         --input FILE            (roommates JSON, paper-style trace)
  kmatch trace validate --input FILE           (check a kmatch.trace/v1 document)
  kmatch render-tree   --k K [--tree path|star|balanced|random] [--seed S]
  kmatch serve         [--addr HOST:PORT] [--port-file FILE] [--n N] [--count C]
                       [--seed S] [--iters I] [--threads T] [--flight-recorder N]
                       [--ledger-out FILE] [--linger-ms MS] [--max-connections M]
  kmatch fetch         --addr HOST:PORT [--path /metrics] [--timeout-ms MS]
  kmatch ledger validate --input FILE
  kmatch ledger tail   --input FILE [--limit N]
  kmatch ledger stats  --input FILE
  kmatch ledger diff   --input FILE [--fingerprint HEX]

  batch --input takes a JSON array of instances (bipartite DTOs for
  --kind gs, roommates DTOs for --kind roommates) and may repeat; the
  arrays are concatenated in order. If any element fails to parse, the
  command exits nonzero; --errors-out writes a machine-readable
  per-index error summary either way. --metrics-out solves through the
  metered engines and writes a structured RunReport (counters, log2
  histograms, timing percentiles). --cache on (gs only) solves through
  the content-addressed cache and prints the hit rate.

  delta reads a bipartite instance plus a JSON array of preference
  deltas ({\"op\": \"set_row\"|\"swap\"|\"splice\", \"side\", \"row\", ...}) and
  replays them through the warm-start incremental session against a
  cold re-solve, reporting per-delta timings and proposal counts.

  bind --incremental true binds through the dirty-edge session;
  --updates FILE applies preference-row rewrites ({\"gender\", \"index\",
  \"target\", \"prefs\"}) and rebinds, reporting dirty vs clean edges.

  solve smp --prefs picks the preference backend: csr (default)
  materializes the uniform instance's lists; scores and random are
  implicit oracles that never build a list, so n can reach 10^5-10^6 in
  O(n) memory (`kmatch solve smp --prefs random -n 1000000`). --list-cap
  K truncates every list to its best K entries (Irving forbidden-pairs
  semantics) and reports the matched count of the partial matching.
  These flags, and --metrics-out, apply to --mode gs only.

  --trace-out FILE records a span timeline of the solve (engine rounds,
  Irving phases, binding edges, cache hits) and exports it as Chrome
  trace-event JSON (--trace-format chrome, the default — load it at
  https://ui.perfetto.dev) or as the native kmatch.trace/v1 document
  (--trace-format json). --flight-recorder N records into a
  fixed-capacity ring that keeps only the newest N events (per worker
  chunk for batch). solve smp traces --mode gs only.

  --ledger-out FILE (solve smp, batch, delta, bind, serve) appends one
  kmatch.ledger/v1 JSONL provenance row per run: workload fingerprint,
  prefs backend, seed, threads, wall time, merged counters, straggler
  aggregates, and the Theorem-3 / n·ln n conformance ratios. Inspect
  with kmatch ledger tail|stats, check with ledger validate, and compare
  two same-fingerprint rows with ledger diff (zero counter drift means
  the runs were deterministic replicas).

  serve runs a repeating GS batch workload (plus a small k-ary bind that
  feeds the Theorem-3 gauge) and exposes live telemetry over HTTP:
  /metrics (Prometheus text), /healthz, /report (latest run report),
  /trace (armed flight-recorder snapshot), /shutdown. --port-file
  publishes the bound address for scripts using --addr 127.0.0.1:0;
  --linger-ms keeps serving after the workload ends. fetch is the
  matching std-TcpStream client (exits nonzero on non-200).
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw)?;
    match (args.positional(0), args.positional(1)) {
        (Some("gen"), Some("kpartite")) => gen_kpartite(&args),
        (Some("gen"), Some("theorem1")) => gen_theorem1(&args),
        (Some("solve"), Some("kary")) => solve_kary(&args),
        (Some("solve"), Some("binary")) => solve_binary(&args),
        (Some("solve"), Some("smp")) => solve_smp(&args),
        (Some("batch"), _) => batch_cmd(&args),
        (Some("delta"), _) => delta_cmd(&args),
        (Some("bind"), _) => bind_cmd(&args),
        (Some("report"), Some("validate")) => report_validate(&args),
        (Some("verify"), Some("kary")) => verify_kary(&args),
        (Some("lattice"), _) => lattice(&args),
        (Some("trace"), Some("validate")) => trace_validate(&args),
        (Some("trace"), _) => trace_cmd(&args),
        (Some("render-tree"), _) => render_tree_cmd(&args),
        (Some("serve"), _) => serve_cmd(&args),
        (Some("fetch"), _) => fetch_cmd(&args),
        (Some("ledger"), sub) => ledger_cmd(&args, sub),
        _ => Err("unrecognized command".to_string()),
    }
}

fn lattice(args: &Args) -> Result<(), String> {
    args.check_known(&["n", "seed", "limit"])?;
    let n: usize = args.require("n")?;
    let seed: u64 = args.flag_or("seed", 0)?;
    let limit: usize = args.flag_or("limit", 100_000)?;
    let inst =
        kmatch_prefs::gen::uniform::uniform_bipartite(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let lattice = kmatch_gs::rotations::enumerate_stable_lattice(&inst, limit)?;
    println!("stable matchings : {}", lattice.matchings.len());
    println!("rotations fired  : {}", lattice.eliminations);
    let show = |name: &str, m: &kmatch_gs::BipartiteMatching| {
        println!(
            "{name:<14}: men {:.2}, women {:.2}",
            mean_proposer_rank(&inst, m),
            mean_responder_rank(&inst, m)
        );
    };
    show("man-optimal", &lattice.matchings[0]);
    show("egalitarian", lattice.egalitarian(&inst));
    let (poly, _) = kmatch_gs::egalitarian_stable_matching(&inst);
    show("egal (min-cut)", &poly);
    show("sex-equal", lattice.sex_equal(&inst));
    show(
        "woman-optimal",
        &kmatch_gs::responder_optimal(&inst).matching,
    );
    Ok(())
}

fn trace_cmd(args: &Args) -> Result<(), String> {
    args.check_known(&["input"])?;
    let input: String = args.require("input")?;
    let text = fs::read_to_string(&input).map_err(|e| format!("reading {input}: {e}"))?;
    let dto: RoommatesDto = serde_json::from_str(&text).map_err(|e| format!("{input}: {e}"))?;
    let inst = RoommatesInstance::try_from(dto).map_err(|e| format!("{input}: {e}"))?;
    let (outcome, events) = kmatch_roommates::solve_traced(&inst);
    let names = kmatch_viz::NameMap::numbered(inst.n(), "p");
    print!("{}", kmatch_viz::render_roommates_trace(&events, &names));
    match outcome.matching() {
        Some(m) => {
            let pairs: Vec<String> = m
                .pairs()
                .iter()
                .map(|&(a, b)| format!("({}, {})", names.of(a), names.of(b)))
                .collect();
            println!("stable matching: {}", pairs.join(" "));
        }
        None => println!("no stable matching"),
    }
    Ok(())
}

fn render_tree_cmd(args: &Args) -> Result<(), String> {
    args.check_known(&["k", "tree", "seed"])?;
    let k: usize = args.require("k")?;
    if k < 2 {
        return Err("need --k >= 2".to_string());
    }
    let tree = match args.flag("tree").unwrap_or("path") {
        "path" => BindingTree::path(k),
        "star" => BindingTree::star(k, (k - 1) as u16),
        "balanced" => BindingTree::balanced_binary(k),
        "random" => {
            let seed: u64 = args.flag_or("seed", 0)?;
            random_tree(k, &mut ChaCha8Rng::seed_from_u64(seed))
        }
        other => return Err(format!("unknown tree kind: {other}")),
    };
    println!("{tree}");
    print!("{}", kmatch_viz::render_tree(&tree));
    println!(
        "Δ = {} → {} parallel rounds",
        tree.max_degree(),
        tree.max_degree()
    );
    Ok(())
}

fn write_out(args: &Args, json: String) -> Result<(), String> {
    match args.flag("out") {
        Some(path) => {
            fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            println!("{json}");
            Ok(())
        }
    }
}

fn gen_kpartite(args: &Args) -> Result<(), String> {
    args.check_known(&["k", "n", "seed", "alpha", "out"])?;
    let k: usize = args.require("k")?;
    let n: usize = args.require("n")?;
    let seed: u64 = args.flag_or("seed", 0)?;
    let alpha: f64 = args.flag_or("alpha", 0.0)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let inst = if alpha > 0.0 {
        kmatch_prefs::gen::correlated::correlated_kpartite(k, n, alpha, &mut rng)
    } else {
        kmatch_prefs::gen::uniform::uniform_kpartite(k, n, &mut rng)
    };
    let json =
        serde_json::to_string_pretty(&KPartiteDto::from(&inst)).map_err(|e| e.to_string())?;
    write_out(args, json)
}

fn gen_theorem1(args: &Args) -> Result<(), String> {
    args.check_known(&["k", "n", "out"])?;
    let k: usize = args.require("k")?;
    let n: usize = args.require("n")?;
    if k < 3 {
        return Err("theorem1 needs --k >= 3".to_string());
    }
    let inst = kmatch_prefs::gen::adversarial::theorem1_roommates(k, n);
    let json =
        serde_json::to_string_pretty(&RoommatesDto::from(&inst)).map_err(|e| e.to_string())?;
    write_out(args, json)
}

fn load_kpartite(path: &str) -> Result<KPartiteInstance, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let dto: KPartiteDto = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    KPartiteInstance::try_from(dto).map_err(|e| format!("{path}: {e}"))
}

fn solve_kary(args: &Args) -> Result<(), String> {
    args.check_known(&["input", "tree", "seed", "out"])?;
    let input: String = args.require("input")?;
    let inst = load_kpartite(&input)?;
    let k = inst.k();
    let tree = match args.flag("tree").unwrap_or("path") {
        "path" => BindingTree::path(k),
        "star" => BindingTree::star(k, (k - 1) as u16),
        "random" => {
            let seed: u64 = args.flag_or("seed", 0)?;
            random_tree(k, &mut ChaCha8Rng::seed_from_u64(seed))
        }
        "priority" => priority_binding_tree(&GenderPriorities::by_id(k), AttachChoice::Chain),
        other => return Err(format!("unknown tree kind: {other}")),
    };
    let out = bind_with_stats(&inst, &tree);
    let stable = find_blocking_family(&inst, &out.matching).is_none();
    let cost = family_cost(&inst, &out.matching);
    println!("binding tree : {tree}");
    let bound = (k - 1) * inst.n() * inst.n();
    println!(
        "proposals    : {} (Theorem-3 bound (k-1)n^2 = {bound})",
        out.total_proposals()
    );
    println!("stable       : {stable}");
    println!("mean rank    : {:.3}", cost.mean_rank);
    for (f, tuple) in out.matching.to_tuples().iter().enumerate() {
        println!("family {f:>3}  : {tuple:?}");
    }
    if args.flag("out").is_some() {
        let json =
            serde_json::to_string_pretty(&out.matching.to_tuples()).map_err(|e| e.to_string())?;
        write_out(args, json)?;
    }
    Ok(())
}

fn solve_binary(args: &Args) -> Result<(), String> {
    args.check_known(&["input"])?;
    let input: String = args.require("input")?;
    let text = fs::read_to_string(&input).map_err(|e| format!("reading {input}: {e}"))?;
    let dto: RoommatesDto = serde_json::from_str(&text).map_err(|e| format!("{input}: {e}"))?;
    let inst = RoommatesInstance::try_from(dto).map_err(|e| format!("{input}: {e}"))?;
    // Infer n-per-gender is unknown for a raw roommates file; report raw ids.
    match solve_global_binary(&inst, inst.n() as u32) {
        KPartiteBinaryOutcome::Stable { pairs, stats } => {
            println!(
                "stable binary matching found ({} proposals):",
                stats.proposals
            );
            for (a, b) in pairs {
                println!("  ({}, {})", a.index, b.index);
            }
        }
        KPartiteBinaryOutcome::NoStableMatching { culprit, stats } => {
            println!(
                "no stable binary matching (participant {}'s reduced list emptied; {} proposals)",
                culprit.index, stats.proposals
            );
        }
    }
    Ok(())
}

/// One GS solve over any preference oracle: complete backends return the
/// perfect matching; a `--list-cap` solve truncates every list to the cap
/// and returns the matched count of the resulting partial matching.
fn gs_oracle_run<P: kmatch_prefs::PrefOracle, C: kmatch_obs::Clock>(
    prefs: P,
    list_cap: Option<u32>,
    metrics: &mut kmatch_obs::SolverMetrics,
    sink: &mut Option<traceio::CliSink<'_, C>>,
) -> Result<(Option<kmatch_gs::BipartiteMatching>, usize, kmatch_gs::GsStats), String> {
    let n = prefs.agents();
    let mut ws = GsWorkspace::new();
    match list_cap {
        Some(cap) => {
            if sink.is_some() {
                return Err("--trace-out is not supported with --list-cap".to_string());
            }
            let capped = kmatch_prefs::TruncatedOracle::new(prefs, cap);
            let (partial, stats) = ws.solve_partial_metered(&capped, metrics);
            let matched = partial
                .partner_of_proposer
                .iter()
                .filter(|&&w| w != kmatch_gs::UNMATCHED)
                .count();
            Ok((None, matched, stats))
        }
        None => {
            let out = match sink.as_mut() {
                Some(sink) => ws.solve_spanned(&prefs, metrics, sink),
                None => ws.solve_metered(&prefs, metrics),
            };
            Ok((Some(out.matching), n, out.stats))
        }
    }
}

/// Mean ranks plus the pair listing (gated to small instances — a
/// million-agent solve should not print a million lines).
fn print_smp_matching(inst: &BipartiteInstance, matching: &kmatch_gs::BipartiteMatching) {
    println!(
        "men mean rank : {:.3}",
        mean_proposer_rank(inst, matching)
    );
    println!(
        "women mean rank: {:.3}",
        mean_responder_rank(inst, matching)
    );
    if inst.n() <= 64 {
        for (m, w) in matching.pairs() {
            println!("  ({m}, {w})");
        }
    }
}

fn solve_smp(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "n",
        "seed",
        "mode",
        "prefs",
        "list-cap",
        "metrics-out",
        "metrics-format",
        "ledger-out",
        "trace-out",
        "trace-format",
        "flight-recorder",
    ])?;
    let topts = TraceOpts::from_args(args)?;
    let n: usize = args.require("n")?;
    if n == 0 {
        return Err("need --n >= 1".to_string());
    }
    let seed: u64 = args.flag_or("seed", 0)?;
    let mode = args.flag("mode").unwrap_or("gs");
    let backend = args.flag("prefs").unwrap_or("csr");
    if !matches!(backend, "csr" | "scores" | "random") {
        return Err(format!(
            "unknown prefs backend: {backend} (expected csr|scores|random)"
        ));
    }
    if let Some(fmt) = args.flag("metrics-format") {
        if !matches!(fmt, "json" | "prom") {
            return Err(format!("unknown metrics format: {fmt} (expected json|prom)"));
        }
    }
    let list_cap = match args.flag("list-cap") {
        None => None,
        Some(v) => {
            let cap: u32 = v
                .parse()
                .map_err(|_| format!("invalid value for --list-cap: {v}"))?;
            if cap == 0 {
                return Err("--list-cap must be at least 1".to_string());
            }
            Some(cap)
        }
    };
    if topts.enabled() && mode != "gs" {
        return Err("--trace-out on solve smp is only supported for --mode gs".to_string());
    }
    if mode != "gs"
        && (backend != "csr"
            || list_cap.is_some()
            || args.flag("metrics-out").is_some()
            || args.flag("ledger-out").is_some())
    {
        return Err(
            "--prefs/--list-cap/--metrics-out/--ledger-out on solve smp are only supported \
             for --mode gs"
                .to_string(),
        );
    }

    if mode != "gs" {
        let inst =
            kmatch_prefs::gen::uniform::uniform_bipartite(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let matching = match mode {
            "fair" => fair_stable_marriage(&inst).matching,
            "man" => oriented_stable_marriage(&inst, SmpOrientation::SeedFromWomen).matching,
            "woman" => oriented_stable_marriage(&inst, SmpOrientation::SeedFromMen).matching,
            other => return Err(format!("unknown mode: {other}")),
        };
        println!("mode          : {mode}");
        print_smp_matching(&inst, &matching);
        return Ok(());
    }

    // --mode gs runs entirely on the PrefOracle substrate: the CSR
    // backend materializes the generated lists, the implicit backends
    // never build any (O(n) memory at n = 10⁵–10⁶).
    let clock = kmatch_obs::StdClock::new();
    let mut sink = topts.enabled().then(|| topts.sink(&clock));
    let mut metrics = kmatch_obs::SolverMetrics::new();
    let start = std::time::Instant::now();
    let (matching, matched, stats, inst) = match backend {
        "csr" => {
            if n > kmatch_prefs::CSR_MAX_N {
                return Err(format!(
                    "--prefs csr supports n <= {} (use --prefs random|scores beyond that)",
                    kmatch_prefs::CSR_MAX_N
                ));
            }
            let inst = kmatch_prefs::gen::uniform::uniform_bipartite(
                n,
                &mut ChaCha8Rng::seed_from_u64(seed),
            );
            let csr = CsrPrefs::from_prefs(&inst);
            let (m, matched, stats) = gs_oracle_run(csr, list_cap, &mut metrics, &mut sink)?;
            (m, matched, stats, Some(inst))
        }
        "scores" => {
            let oracle = kmatch_prefs::ScoreOracle::popularity(n, seed);
            let (m, matched, stats) = gs_oracle_run(oracle, list_cap, &mut metrics, &mut sink)?;
            (m, matched, stats, None)
        }
        _ => {
            let oracle = kmatch_prefs::RandomPermOracle::new(n, seed);
            let (m, matched, stats) = gs_oracle_run(oracle, list_cap, &mut metrics, &mut sink)?;
            (m, matched, stats, None)
        }
    };
    let wall_ns = start.elapsed().as_nanos() as u64;
    metrics.solve_ns(wall_ns);
    if let Some(sink) = sink {
        topts.write(&TraceTrack::main(sink.into_events().0))?;
    }
    println!("mode          : gs");
    println!("prefs         : {backend}");
    println!("proposals     : {}", stats.proposals);
    println!("rounds        : {}", stats.rounds);
    println!("matched       : {matched} / {n}");
    if let (Some(inst), Some(matching)) = (&inst, &matching) {
        print_smp_matching(inst, matching);
    }
    // CSR materialized the lists, so the fingerprint covers the actual
    // preference content; the implicit oracles are keyed by their
    // generator descriptor instead (same (n, seed) ⇒ same rows).
    let meta = match (&inst, backend) {
        (Some(inst), _) => RunMeta::new(backend, kmatch_incremental::bipartite_fingerprint(inst)),
        (None, b) => RunMeta::new(b, descriptor_fp(&format!("smp.{b}"), &[n as u64, seed])),
    };
    write_metrics(
        args,
        "smp",
        n,
        1,
        seed,
        rayon::current_num_threads(),
        wall_ns,
        metrics,
        None,
        &meta,
    )
}

/// Per-index failures from a `batch --input` file, reported as a
/// machine-readable summary (and a nonzero exit) so pipelines can react.
struct BatchErrors {
    total: usize,
    errors: Vec<(usize, String)>,
}

impl BatchErrors {
    /// JSON summary: `{"schema", "total", "failed", "errors": [{index, error}]}`.
    fn to_json(&self) -> serde::Value {
        use serde::Value;
        let errors: Vec<Value> = self
            .errors
            .iter()
            .map(|(i, e)| {
                Value::Object(vec![
                    ("index".into(), Value::Number(*i as f64)),
                    ("error".into(), Value::String(e.clone())),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "schema".into(),
                Value::String("kmatch.batch_errors/v1".into()),
            ),
            ("total".into(), Value::Number(self.total as f64)),
            ("failed".into(), Value::Number(self.errors.len() as f64)),
            ("errors".into(), Value::Array(errors)),
        ])
    }

    /// Write the summary if `--errors-out` was given, then fail the
    /// command if anything failed.
    fn finish(self, args: &Args) -> Result<(), String> {
        if let Some(path) = args.flag("errors-out") {
            let json = serde_json::to_string_pretty(&self.to_json()).map_err(|e| e.to_string())?;
            fs::write(path, json + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        }
        if self.errors.is_empty() {
            return Ok(());
        }
        let (idx, first) = &self.errors[0];
        Err(format!(
            "{} of {} batch instances failed to parse (first: index {idx}: {first})",
            self.errors.len(),
            self.total
        ))
    }
}

/// Parse `--input` (a JSON array) element-by-element so one malformed
/// instance reports its index instead of poisoning the whole file.
fn load_batch_elements(path: &str) -> Result<Vec<serde::Value>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    match serde_json::from_str::<serde::Value>(&text) {
        Ok(serde::Value::Array(items)) => Ok(items),
        Ok(_) => Err(format!("{path}: expected a JSON array of instances")),
        Err(e) => Err(format!("{path}: {e}")),
    }
}

/// Concatenate the elements of every `--input` file, in flag order.
fn load_batch_inputs(paths: &[&str]) -> Result<Vec<serde::Value>, String> {
    let mut items = Vec::new();
    for path in paths {
        items.extend(load_batch_elements(path)?);
    }
    Ok(items)
}

fn parse_elements<D, T>(items: &[serde::Value]) -> (Vec<T>, Vec<(usize, String)>)
where
    D: serde::Deserialize,
    T: TryFrom<D>,
    <T as TryFrom<D>>::Error: std::fmt::Display,
{
    let mut out = Vec::with_capacity(items.len());
    let mut errors = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match D::from_value(item).map_err(|e| e.to_string()).and_then(|d| {
            T::try_from(d).map_err(|e| e.to_string())
        }) {
            Ok(inst) => out.push(inst),
            Err(e) => errors.push((i, e)),
        }
    }
    (out, errors)
}

/// Hex rendering of a two-lane fingerprint, as stored in ledger rows.
fn fp_hex(fp: Fp) -> String {
    format!("{:016x}{:016x}", fp.0, fp.1)
}

/// Content fingerprint of an ordered batch of bipartite instances.
fn gs_batch_fp(batch: &[BipartiteInstance]) -> Fp {
    batch
        .iter()
        .fold((fingerprint::SEED0, fingerprint::SEED1), |acc, inst| {
            let f = kmatch_incremental::bipartite_fingerprint(inst);
            (fingerprint::mix(acc.0, f.0), fingerprint::mix(acc.1, f.1))
        })
}

/// Content fingerprint of an ordered batch of roommates instances.
fn roommates_batch_fp(batch: &[RoommatesInstance]) -> Fp {
    batch
        .iter()
        .fold((fingerprint::SEED0, fingerprint::SEED1), |acc, inst| {
            (0..inst.n() as u32).fold(acc, |acc, p| {
                let f = kmatch_incremental::hash_row_fp(p as u64, inst.list(p));
                (fingerprint::mix(acc.0, f.0), fingerprint::mix(acc.1, f.1))
            })
        })
}

/// Descriptor fingerprint for workloads whose preference rows are never
/// materialized (implicit oracles) or not cheaply hashable: hashes the
/// generator inputs instead of the rows.
fn descriptor_fp(tag: &str, words: &[u64]) -> Fp {
    let seeded = tag.bytes().fold(
        (fingerprint::SEED0, fingerprint::SEED1),
        |(h0, h1), b| (fingerprint::mix(h0, b as u64), fingerprint::mix(h1, b as u64)),
    );
    words.iter().fold(seeded, |(h0, h1), &w| {
        (fingerprint::mix(h0, w), fingerprint::mix(h1, w))
    })
}

/// Run provenance for the artifact emitters: which preference backend
/// solved, the workload fingerprint a ledger row is keyed by, and the
/// Theorem-3 `(observed proposals, (k−1)n² bound)` pair for binding
/// runs.
struct RunMeta {
    backend: String,
    fingerprint: Fp,
    theorem3: Option<(u64, u64)>,
}

impl RunMeta {
    fn new(backend: &str, fingerprint: Fp) -> Self {
        RunMeta {
            backend: backend.to_string(),
            fingerprint,
            theorem3: None,
        }
    }

    fn with_theorem3(mut self, observed: u64, bound: u64) -> Self {
        self.theorem3 = Some((observed, bound));
        self
    }
}

/// Emit the per-run artifacts: the RunReport when `--metrics-out` was
/// given, and one appended `kmatch.ledger/v1` provenance row when
/// `--ledger-out` was. A `straggler` section (from the work-stealing
/// executor's [`StealReport`]) rides along in both when the run went
/// through the deque executor; ledger rows additionally carry the
/// conformance ratios (Theorem-3 for binding runs, Mertens `n ln n` for
/// GS workloads).
#[allow(clippy::too_many_arguments)]
fn write_metrics(
    args: &Args,
    kind: &str,
    n: usize,
    instances: usize,
    seed: u64,
    threads: usize,
    wall_ns: u64,
    merged: kmatch_obs::SolverMetrics,
    straggler: Option<kmatch_obs::StragglerSection>,
    meta: &RunMeta,
) -> Result<(), String> {
    if let Some(path) = args.flag("metrics-out") {
        let format = args.flag("metrics-format").unwrap_or("json");
        let mut report = kmatch_obs::RunReport::new(
            kind,
            n,
            instances,
            seed,
            threads,
            wall_ns,
            merged.clone(),
            meta.theorem3.map(|(_, bound)| bound),
        );
        if let Some(section) = &straggler {
            report = report.with_straggler(section.clone());
        }
        report
            .write(std::path::Path::new(path), format)
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path} ({format})");
    }
    if let Some(path) = args.flag("ledger-out") {
        let theorem3 = meta
            .theorem3
            .and_then(|(observed, bound)| kmatch_obs::theorem3_ratio(observed, bound));
        // The Mertens n ln n expectation is a GS quantity; other kinds
        // leave the ratio unset.
        let nlogn = matches!(kind, "gs" | "smp")
            .then(|| kmatch_obs::nlogn_ratio(merged.proposals, n as u64, instances as u64))
            .flatten();
        let mut row = kmatch_obs::LedgerRow::new(
            kind,
            &fp_hex(meta.fingerprint),
            &meta.backend,
            n as u64,
            instances as u64,
            seed,
            threads as u64,
            wall_ns,
            &merged,
        )
        .with_conformance(theorem3, nlogn);
        if let Some(section) = &straggler {
            row = row.with_straggler(section);
        }
        kmatch_obs::append_row(std::path::Path::new(path), &row)
            .map_err(|e| format!("appending {path}: {e}"))?;
        eprintln!("appended {path} (ledger)");
    }
    Ok(())
}

/// Summarize the work-stealing executor's straggler accounting on
/// stderr: per-worker busy/steal/idle time and how many of its chunks
/// were stolen rather than scheduled.
fn print_straggler(report: Option<&kmatch_parallel::StealReport>) {
    let Some(report) = report else {
        return;
    };
    let ms = |ns: u64| ns as f64 / 1e6;
    eprintln!(
        "executor       : {} thread(s), {} chunk(s){}",
        report.threads,
        report.plan.len(),
        if report.forced_steal {
            ", forced steal"
        } else {
            ""
        }
    );
    for w in &report.workers {
        eprintln!(
            "  worker {:<3}   : busy {:.3} ms, steal {:.3} ms, idle {:.3} ms, \
             {} chunk(s) ({} stolen)",
            w.worker,
            ms(w.busy_ns),
            ms(w.steal_ns),
            ms(w.idle_ns),
            w.chunks_executed,
            w.chunks_stolen
        );
    }
}

/// Export the per-chunk timelines a traced batch returned: one
/// `worker-<i>` thread track per chunk, plus a dropped-events note when
/// a flight recorder wrapped.
fn write_chunk_traces(
    topts: &TraceOpts,
    traces: Option<Vec<kmatch_parallel::ChunkTrace>>,
) -> Result<(), String> {
    let Some(traces) = traces else {
        return Ok(());
    };
    let dropped: u64 = traces.iter().map(|t| t.dropped).sum();
    if dropped > 0 {
        eprintln!("flight recorder dropped {dropped} events (oldest overwritten)");
    }
    topts.write(&TraceTrack::workers(
        traces.into_iter().map(|t| t.events).collect(),
    ))
}

/// Solve a stream of instances through the parallel batch front-ends —
/// the CLI face of `kmatch_parallel::solve_batch` (`--kind gs`) and
/// `kmatch_parallel::roommates::solve_batch` (`--kind roommates`), both
/// with per-thread reusable workspaces and zero steady-state allocation.
/// Instances are generated from `--n/--count/--seed` or read from
/// `--input` (a JSON array of DTOs); `--metrics-out` switches to the
/// metered engines and writes a structured RunReport.
fn batch_cmd(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "n",
        "count",
        "seed",
        "kind",
        "input",
        "cache",
        "errors-out",
        "metrics-out",
        "metrics-format",
        "ledger-out",
        "trace-out",
        "trace-format",
        "flight-recorder",
        "threads",
        "force-steal",
    ])?;
    let topts = TraceOpts::from_args(args)?;
    let seed: u64 = args.flag_or("seed", 0)?;
    let kind = args.flag("kind").unwrap_or("gs");
    let force_steal = match args.flag("force-steal").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => {
            return Err(format!(
                "unknown --force-steal value: {other} (expected on|off)"
            ))
        }
    };
    let policy = kmatch_parallel::ExecPolicy {
        threads: match args.flag("threads") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value for --threads: {v}"))?,
            ),
        },
        force_steal,
    };
    // An explicit executor policy asks for straggler accounting, which the
    // plain/cached fast paths do not produce.
    let policy_explicit = policy.threads.is_some() || policy.force_steal;
    if let Some(fmt) = args.flag("metrics-format") {
        if !matches!(fmt, "json" | "prom") {
            return Err(format!("unknown metrics format: {fmt} (expected json|prom)"));
        }
    }
    let cache_on = match args.flag("cache").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => return Err(format!("unknown --cache value: {other} (expected on|off)")),
    };
    if topts.enabled() && cache_on {
        return Err("--trace-out is not supported with --cache on".to_string());
    }
    if cache_on && policy_explicit {
        return Err("--threads/--force-steal are not supported with --cache on".to_string());
    }
    // Ledger rows carry merged engine counters, so `--ledger-out` forces
    // the metered batch path exactly like `--metrics-out` does.
    let metered = args.flag("metrics-out").is_some() || args.flag("ledger-out").is_some();
    let registry = kmatch_obs::BatchRegistry::new();
    let clock = kmatch_obs::StdClock::new();
    let inputs: Vec<&str> = args.flag_values("input").collect();
    match kind {
        "gs" => {
            let batch: Vec<BipartiteInstance> = if inputs.is_empty() {
                let n: usize = args.require("n")?;
                let count: usize = args.flag_or("count", 1000)?;
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                (0..count)
                    .map(|_| kmatch_prefs::gen::uniform::uniform_bipartite(n, &mut rng))
                    .collect()
            } else {
                let items = load_batch_inputs(&inputs)?;
                let (batch, errors) =
                    parse_elements::<kmatch_prefs::serde_support::BipartiteDto, _>(&items);
                BatchErrors {
                    total: items.len(),
                    errors,
                }
                .finish(args)?;
                batch
            };
            let count = batch.len();
            let n = batch.iter().map(|i| i.n()).max().unwrap_or(0);
            let start = std::time::Instant::now();
            let mut chunk_traces: Option<Vec<kmatch_parallel::ChunkTrace>> = None;
            let mut steal_report: Option<kmatch_parallel::StealReport> = None;
            let (outcomes, cache_line) = if cache_on {
                let mut cache = SolveCache::default();
                let cached =
                    kmatch_parallel::solve_batch_cached(&batch, &mut cache, &registry, &clock);
                let line = format!(
                    "{} hits / {} misses ({:.1}% hit rate)",
                    cached.hits,
                    cached.misses,
                    100.0 * cached.hit_rate()
                );
                (cached.outcomes, Some(line))
            } else if topts.enabled() {
                let (outs, traces, report) = kmatch_parallel::solve_batch_traced_with(
                    &batch,
                    &registry,
                    &clock,
                    topts.chunk_capacity(),
                    &policy,
                );
                chunk_traces = Some(traces);
                steal_report = Some(report);
                (outs, None)
            } else if metered || policy_explicit {
                let (outs, report) =
                    kmatch_parallel::solve_batch_metered_with(&batch, &registry, &clock, &policy);
                steal_report = Some(report);
                (outs, None)
            } else {
                (kmatch_parallel::solve_batch(&batch), None)
            };
            let elapsed = start.elapsed();
            let stats = kmatch_parallel::batch_stats(&outcomes);
            println!("instances      : {count} x n={n} (gs)");
            println!("total proposals: {}", stats.proposals);
            println!("max rounds     : {}", stats.rounds);
            if let Some(line) = cache_line {
                println!("cache          : {line}");
            }
            println!(
                "wall time      : {:.3} ms ({:.1} instances/s)",
                elapsed.as_secs_f64() * 1e3,
                count as f64 / elapsed.as_secs_f64().max(1e-12)
            );
            print_straggler(steal_report.as_ref());
            write_chunk_traces(&topts, chunk_traces)?;
            let meta = RunMeta::new(if cache_on { "csr+cache" } else { "csr" }, gs_batch_fp(&batch));
            write_metrics(
                args,
                "gs",
                n,
                count,
                seed,
                policy.requested_threads(),
                elapsed.as_nanos() as u64,
                registry.take(),
                steal_report.as_ref().map(|r| r.straggler_section()),
                &meta,
            )?;
        }
        "roommates" => {
            if cache_on {
                return Err("--cache is only supported for --kind gs".to_string());
            }
            let batch: Vec<RoommatesInstance> = if !inputs.is_empty() {
                {
                    let items = load_batch_inputs(&inputs)?;
                    let (batch, errors) = parse_elements::<RoommatesDto, _>(&items);
                    BatchErrors {
                        total: items.len(),
                        errors,
                    }
                    .finish(args)?;
                    batch
                }
            } else {
                {
                    let n: usize = args.require("n")?;
                    let count: usize = args.flag_or("count", 1000)?;
                    let mut rng = ChaCha8Rng::seed_from_u64(seed);
                    (0..count)
                        .map(|_| kmatch_prefs::gen::uniform::uniform_roommates(n, &mut rng))
                        .collect()
                }
            };
            let count = batch.len();
            let n = batch.iter().map(|i| i.n()).max().unwrap_or(0);
            let start = std::time::Instant::now();
            let mut chunk_traces: Option<Vec<kmatch_parallel::ChunkTrace>> = None;
            let mut steal_report: Option<kmatch_parallel::StealReport> = None;
            let outcomes = if topts.enabled() {
                let (outs, traces, report) = kmatch_parallel::roommates::solve_batch_traced_with(
                    &batch,
                    &registry,
                    &clock,
                    topts.chunk_capacity(),
                    &policy,
                );
                chunk_traces = Some(traces);
                steal_report = Some(report);
                outs
            } else if metered || policy_explicit {
                let (outs, report) = kmatch_parallel::roommates::solve_batch_metered_with(
                    &batch, &registry, &clock, &policy,
                );
                steal_report = Some(report);
                outs
            } else {
                kmatch_parallel::roommates::solve_batch(&batch)
            };
            let elapsed = start.elapsed();
            let stats = kmatch_parallel::roommates::batch_stats(&outcomes);
            println!("instances      : {count} x n={n} (roommates)");
            println!(
                "solvable       : {} ({:.1}%)",
                stats.solvable,
                100.0 * stats.solvable as f64 / count.max(1) as f64
            );
            println!("total proposals: {}", stats.proposals);
            println!("total rotations: {}", stats.rotations);
            println!(
                "wall time      : {:.3} ms ({:.1} instances/s)",
                elapsed.as_secs_f64() * 1e3,
                count as f64 / elapsed.as_secs_f64().max(1e-12)
            );
            print_straggler(steal_report.as_ref());
            write_chunk_traces(&topts, chunk_traces)?;
            let meta = RunMeta::new("csr", roommates_batch_fp(&batch));
            write_metrics(
                args,
                "roommates",
                n,
                count,
                seed,
                policy.requested_threads(),
                elapsed.as_nanos() as u64,
                registry.take(),
                steal_report.as_ref().map(|r| r.straggler_section()),
                &meta,
            )?;
        }
        other => return Err(format!("unknown batch kind: {other}")),
    }
    Ok(())
}

/// Replay a JSON delta stream through the warm-start incremental GS
/// session against a cold re-solve of the mutated instance, reporting
/// per-delta wall time and executed proposals for both. The two must
/// produce byte-identical matchings; a divergence aborts the command.
fn delta_cmd(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "input",
        "deltas",
        "metrics-out",
        "metrics-format",
        "ledger-out",
        "trace-out",
        "trace-format",
        "flight-recorder",
    ])?;
    let topts = TraceOpts::from_args(args)?;
    let input: String = args.require("input")?;
    let deltas_path: String = args.require("deltas")?;
    let text = fs::read_to_string(&input).map_err(|e| format!("reading {input}: {e}"))?;
    let dto: kmatch_prefs::serde_support::BipartiteDto =
        serde_json::from_str(&text).map_err(|e| format!("{input}: {e}"))?;
    let inst = BipartiteInstance::try_from(dto).map_err(|e| format!("{input}: {e}"))?;
    let items = load_batch_elements(&deltas_path)?;
    let mut deltas: Vec<PrefDelta> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let delta = <PrefDeltaDto as serde::Deserialize>::from_value(item)
            .map_err(|e| e.to_string())
            .and_then(|d| PrefDelta::try_from(&d))
            .map_err(|e| format!("{deltas_path}: delta {i}: {e}"))?;
        deltas.push(delta);
    }
    let n = inst.n();
    let mut shadow = inst.clone();
    let mut session = IncrementalGs::new(inst);
    let mut metrics = kmatch_obs::SolverMetrics::new();
    let trace_clock = kmatch_obs::StdClock::new();
    let mut sink = topts.enabled().then(|| topts.sink(&trace_clock));
    // Prime both solvers so every reported pair is a steady-state re-solve.
    let mut cold_ws = GsWorkspace::with_capacity(n);
    let mut cold_csr = CsrPrefs::new();
    cold_csr.load(&shadow);
    let base = match sink.as_mut() {
        Some(sink) => session.solve_spanned(&mut metrics, sink),
        None => session.solve_metered(&mut metrics),
    };
    let cold_base = cold_ws.solve(&cold_csr);
    debug_assert_eq!(base.matching, cold_base.matching);
    println!(
        "baseline     : n={n}, {} proposals, {} deltas queued",
        cold_base.stats.proposals,
        deltas.len()
    );
    let start = std::time::Instant::now();
    let (mut warm_ns, mut cold_ns) = (0u64, 0u64);
    let (mut warm_props, mut cold_props) = (0u64, 0u64);
    for (i, delta) in deltas.iter().enumerate() {
        session
            .apply(delta)
            .map_err(|e| format!("delta {i}: {e}"))?;
        let t0 = std::time::Instant::now();
        let warm = match sink.as_mut() {
            Some(sink) => session.solve_spanned(&mut metrics, sink),
            None => session.solve_metered(&mut metrics),
        };
        let w_ns = t0.elapsed().as_nanos() as u64;
        metrics.solve_ns(w_ns);
        shadow
            .apply_delta(delta)
            .map_err(|e| format!("delta {i}: {e}"))?;
        let t1 = std::time::Instant::now();
        cold_csr.load(&shadow);
        let cold = cold_ws.solve(&cold_csr);
        let c_ns = t1.elapsed().as_nanos() as u64;
        if warm.matching != cold.matching {
            return Err(format!("delta {i}: warm and cold matchings diverge (bug)"));
        }
        let d = PrefDeltaDto::from(delta);
        println!(
            "delta {i:>4} ({} {} row {}): warm {:>9.1} us / {:>6} proposals   \
             cold {:>9.1} us / {:>6} proposals",
            d.op,
            d.side,
            d.row,
            w_ns as f64 / 1e3,
            warm.stats.proposals,
            c_ns as f64 / 1e3,
            cold.stats.proposals,
        );
        warm_ns += w_ns;
        cold_ns += c_ns;
        warm_props += warm.stats.proposals;
        cold_props += cold.stats.proposals;
    }
    if !deltas.is_empty() {
        println!(
            "totals       : warm {:.1} us / {warm_props} proposals, \
             cold {:.1} us / {cold_props} proposals ({:.1}x)",
            warm_ns as f64 / 1e3,
            cold_ns as f64 / 1e3,
            cold_ns as f64 / (warm_ns as f64).max(1.0),
        );
    }
    if let Some(sink) = sink {
        topts.write(&TraceTrack::main(sink.into_events().0))?;
    }
    // Fingerprint the *final* preference state (the shadow instance has
    // every delta applied), so replaying the same stream is recognizably
    // the same workload in the ledger.
    let meta = RunMeta::new("csr", kmatch_incremental::bipartite_fingerprint(&shadow));
    write_metrics(
        args,
        "delta",
        n,
        deltas.len(),
        0,
        rayon::current_num_threads(),
        start.elapsed().as_nanos() as u64,
        metrics,
        None,
        &meta,
    )
}

/// One preference-row rewrite for `bind --incremental --updates`: member
/// `(gender, index)` replaces its ordering of gender `target`.
#[derive(Debug, Clone)]
struct UpdateDto {
    gender: u32,
    index: u32,
    target: u32,
    prefs: Vec<u32>,
}

serde::impl_json_struct!(UpdateDto { gender, index, target, prefs });

/// Bind a k-partite instance along a tree. With `--incremental true` the
/// bind runs through the dirty-edge session, and `--updates FILE` applies
/// preference-row rewrites then rebinds — only edges whose fingerprints
/// changed are re-solved, and the dirty/clean split is printed.
fn bind_cmd(args: &Args) -> Result<(), String> {
    args.check_known(&[
        "input",
        "tree",
        "seed",
        "incremental",
        "updates",
        "metrics-out",
        "metrics-format",
        "ledger-out",
        "trace-out",
        "trace-format",
        "flight-recorder",
    ])?;
    let topts = TraceOpts::from_args(args)?;
    let input: String = args.require("input")?;
    let inst = load_kpartite(&input)?;
    let (k, n) = (inst.k(), inst.n());
    let tree = match args.flag("tree").unwrap_or("path") {
        "path" => BindingTree::path(k),
        "star" => BindingTree::star(k, (k - 1) as u16),
        "random" => {
            let seed: u64 = args.flag_or("seed", 0)?;
            random_tree(k, &mut ChaCha8Rng::seed_from_u64(seed))
        }
        "priority" => priority_binding_tree(&GenderPriorities::by_id(k), AttachChoice::Chain),
        other => return Err(format!("unknown tree kind: {other}")),
    };
    let incremental: bool = args.flag_or("incremental", false)?;
    let trace_clock = kmatch_obs::StdClock::new();
    let mut sink = topts.enabled().then(|| topts.sink(&trace_clock));
    if !incremental {
        let out = match sink.as_mut() {
            Some(sink) => {
                kmatch_core::bind_spanned(&inst, &tree, &mut kmatch_obs::NoMetrics, sink)
            }
            None => bind_with_stats(&inst, &tree),
        };
        let stable = find_blocking_family(&inst, &out.matching).is_none();
        println!("binding tree : {tree}");
        println!("proposals    : {}", out.total_proposals());
        println!("stable       : {stable}");
        if let Some(sink) = sink {
            topts.write(&TraceTrack::main(sink.into_events().0))?;
        }
        return Ok(());
    }
    let mut metrics = kmatch_obs::SolverMetrics::new();
    let start = std::time::Instant::now();
    let mut binder = IncrementalBinder::new(inst, tree);
    let first = match sink.as_mut() {
        Some(sink) => binder.bind_spanned(&mut metrics, sink),
        None => binder.bind_metered(&mut metrics),
    };
    println!("binding tree : {}", binder.tree());
    println!(
        "initial bind : {} proposals over {} edges",
        first.total_proposals(),
        first.per_edge.len()
    );
    if let Some(path) = args.flag("updates") {
        let items = load_batch_elements(path)?;
        for (i, item) in items.iter().enumerate() {
            let dto = <UpdateDto as serde::Deserialize>::from_value(item)
                .map_err(|e| format!("{path}: update {i}: {e}"))?;
            binder
                .set_pref_row(
                    Member::new(GenderId(dto.gender as u16), dto.index),
                    GenderId(dto.target as u16),
                    &dto.prefs,
                )
                .map_err(|e| format!("{path}: update {i}: {e}"))?;
        }
        let (dirty0, clean0) = (metrics.edges_dirty, metrics.edges_clean);
        let rebound = match sink.as_mut() {
            Some(sink) => binder.bind_spanned(&mut metrics, sink),
            None => binder.bind_metered(&mut metrics),
        };
        let stable = find_blocking_family(binder.instance(), &rebound.matching).is_none();
        println!(
            "rebind       : {} proposals, {} dirty / {} clean edges after {} updates",
            rebound.total_proposals(),
            metrics.edges_dirty - dirty0,
            metrics.edges_clean - clean0,
            items.len()
        );
        println!("stable       : {stable}");
    }
    if let Some(sink) = sink {
        topts.write(&TraceTrack::main(sink.into_events().0))?;
    }
    // Theorem 3 (IPPS 2016): any binding run executes at most (k−1)n²
    // proposals. The observed/bound pair feeds the conformance gauge and
    // the ledger row's ratio.
    let bound = ((k - 1) * n * n) as u64;
    let meta = RunMeta::new("kpartite", descriptor_fp("bind", &[k as u64, n as u64]))
        .with_theorem3(first.total_proposals(), bound);
    write_metrics(
        args,
        "bind",
        n,
        1,
        0,
        rayon::current_num_threads(),
        start.elapsed().as_nanos() as u64,
        metrics,
        None,
        &meta,
    )
}

/// Validate a RunReport JSON file emitted by `batch --metrics-out` (the
/// CI smoke contract): parses, checks the schema tag and required keys.
fn report_validate(args: &Args) -> Result<(), String> {
    args.check_known(&["input"])?;
    let input: String = args.require("input")?;
    let text = fs::read_to_string(&input).map_err(|e| format!("reading {input}: {e}"))?;
    let v = kmatch_obs::RunReport::validate_json_str(&text).map_err(|e| format!("{input}: {e}"))?;
    let kind = match v.get("kind") {
        Some(serde::Value::String(s)) => s.clone(),
        _ => "?".to_string(),
    };
    let instances = match v.get("instances") {
        Some(serde::Value::Number(x)) => *x as u64,
        _ => 0,
    };
    println!("OK {input}: kind={kind}, instances={instances}");
    Ok(())
}

/// Validate a `kmatch.trace/v1` document (the native `--trace-format
/// json` export, or what `kmatch serve` publishes on `/trace`).
fn trace_validate(args: &Args) -> Result<(), String> {
    args.check_known(&["input"])?;
    let input: String = args.require("input")?;
    let text = fs::read_to_string(&input).map_err(|e| format!("reading {input}: {e}"))?;
    let tracks = kmatch_trace::validate_trace_json(&text).map_err(|e| format!("{input}: {e}"))?;
    println!("OK {input}: {} tracks ({})", tracks.len(), tracks.join(", "));
    Ok(())
}

/// `kmatch serve`: bind the std-only scrape server, then drive a
/// repeating GS batch workload (plus a small 3-partite bind feeding the
/// Theorem-3 gauge) on this thread. Every chunk absorbs into the
/// process-lifetime [`kmatch_obs::LiveRegistry`] the server scrapes, the
/// latest run report and flight-recorder snapshot are published to
/// `/report` and `/trace`, and `--ledger-out` appends one provenance row
/// per iteration. The workload repeats the *same* seeded batch, so the
/// appended rows are deterministic replicas — `kmatch ledger diff` over
/// them must report zero counter drift.
fn serve_cmd(args: &Args) -> Result<(), String> {
    use std::sync::Arc;

    use kmatch_serve::{ScrapeServer, ServeOptions, ServeState};
    use kmatch_trace::{span, to_trace_json, FlightRecorder, SpanSink};

    args.check_known(&[
        "addr",
        "port-file",
        "n",
        "count",
        "seed",
        "iters",
        "threads",
        "flight-recorder",
        "ledger-out",
        "linger-ms",
        "max-connections",
    ])?;
    let addr = args.flag("addr").unwrap_or("127.0.0.1:0");
    let n: usize = args.flag_or("n", 32)?;
    if n == 0 {
        return Err("need --n >= 1".to_string());
    }
    let count: usize = args.flag_or("count", 64)?;
    if count == 0 {
        return Err("need --count >= 1".to_string());
    }
    let seed: u64 = args.flag_or("seed", 0)?;
    let iters: usize = args.flag_or("iters", 1)?;
    let linger_ms: u64 = args.flag_or("linger-ms", 0)?;
    let ring_cap: usize = args.flag_or("flight-recorder", 4096)?;
    let max_connections: usize = args.flag_or("max-connections", 64)?;
    // Deterministic replicas by default: an unpinned thread count lets
    // the steal schedule vary the workspace_{fresh,reused} counters
    // between iterations, which would read as ledger drift.
    let policy = kmatch_parallel::ExecPolicy {
        threads: Some(args.flag_or("threads", 1)?),
        force_steal: false,
    };

    let live = Arc::new(kmatch_obs::LiveRegistry::new());
    let state = Arc::new(ServeState::new(Arc::clone(&live)));
    let server = ScrapeServer::bind(addr, Arc::clone(&state), ServeOptions { max_connections })
        .map_err(|e| format!("binding {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    if let Some(path) = args.flag("port-file") {
        kmatch_obs::report::write_text_file(std::path::Path::new(path), &format!("{local}\n"))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    println!("serving on http://{local} (/metrics /healthz /report /trace /shutdown)");
    let (join, shutdown) = server.spawn().map_err(|e| e.to_string())?;

    // The flight-recorder ring and the solvers live on this thread; the
    // serve thread only ever receives finished JSON strings.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let batch: Vec<BipartiteInstance> = (0..count)
        .map(|_| kmatch_prefs::gen::uniform::uniform_bipartite(n, &mut rng))
        .collect();
    let batch_fp = gs_batch_fp(&batch);
    let kn = n.clamp(2, 16);
    let kinst = kmatch_prefs::gen::uniform::uniform_kpartite(
        3,
        kn,
        &mut ChaCha8Rng::seed_from_u64(seed.wrapping_add(1)),
    );
    let ktree = BindingTree::path(3);
    let theorem3_bound = (2 * kn * kn) as u64;
    let clock = kmatch_obs::StdClock::new();
    let mut ring = FlightRecorder::new(&clock, ring_cap);
    for iter in 0..iters {
        if shutdown.is_shutdown() {
            break;
        }
        let registry = kmatch_obs::BatchRegistry::with_live(Arc::clone(&live));
        ring.begin(span::BATCH_CHUNK, iter as u64);
        let start = std::time::Instant::now();
        let (outcomes, report) =
            kmatch_parallel::solve_batch_metered_with(&batch, &registry, &clock, &policy);
        ring.end(span::BATCH_CHUNK);
        let wall_ns = start.elapsed().as_nanos() as u64;
        let stats = kmatch_parallel::batch_stats(&outcomes);
        let section = report.straggler_section();
        live.absorb_straggler(&section);
        live.observe_run("csr", wall_ns);
        let merged = registry.take();
        live.observe_nlogn(merged.proposals, n as u64, count as u64);

        ring.begin(span::BIND_EDGE, iter as u64);
        let bout = bind_with_stats(&kinst, &ktree);
        ring.end(span::BIND_EDGE);
        live.observe_theorem3(bout.total_proposals(), theorem3_bound);

        let run_report = kmatch_obs::RunReport::new(
            "gs",
            n,
            count,
            seed,
            policy.requested_threads(),
            wall_ns,
            merged.clone(),
            None,
        )
        .with_straggler(section.clone());
        state.publish_report(run_report.to_json_string());
        state.publish_trace(to_trace_json(&[ring.snapshot().into_track(0, "serve ring")]));

        if let Some(path) = args.flag("ledger-out") {
            let row = kmatch_obs::LedgerRow::new(
                "gs",
                &fp_hex(batch_fp),
                "csr",
                n as u64,
                count as u64,
                seed,
                policy.requested_threads() as u64,
                wall_ns,
                &merged,
            )
            .with_conformance(
                kmatch_obs::theorem3_ratio(bout.total_proposals(), theorem3_bound),
                kmatch_obs::nlogn_ratio(merged.proposals, n as u64, count as u64),
            )
            .with_straggler(&section);
            kmatch_obs::append_row(std::path::Path::new(path), &row)
                .map_err(|e| format!("appending {path}: {e}"))?;
        }
        println!(
            "iter {iter}: {count} instances, {} proposals, {:.3} ms",
            stats.proposals,
            wall_ns as f64 / 1e6
        );
    }

    // Keep the endpoints scrapeable until --linger-ms elapses or a
    // client hits /shutdown.
    let lingering = std::time::Instant::now();
    while !shutdown.is_shutdown() && (lingering.elapsed().as_millis() as u64) < linger_ms {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    shutdown.shutdown();
    let stats = join
        .join()
        .map_err(|_| "serve thread panicked".to_string())?
        .map_err(|e| format!("serve loop: {e}"))?;
    println!(
        "served {} requests ({} rejected at the connection cap)",
        stats.served, stats.rejected
    );
    Ok(())
}

/// `kmatch fetch`: one GET against a running `kmatch serve`, printing
/// the body to stdout. Exits nonzero on a non-200 status so shell
/// smokes can gate on it directly.
fn fetch_cmd(args: &Args) -> Result<(), String> {
    args.check_known(&["addr", "path", "timeout-ms"])?;
    let addr: String = args.require("addr")?;
    let path = args.flag("path").unwrap_or("/metrics");
    let timeout_ms: u64 = args.flag_or("timeout-ms", 2000)?;
    let (status, body) = kmatch_serve::http_get(&addr, path, timeout_ms)
        .map_err(|e| format!("GET {addr}{path}: {e}"))?;
    print!("{body}");
    if status != 200 {
        return Err(format!("GET {path}: HTTP {status}"));
    }
    Ok(())
}

/// `kmatch ledger`: inspect a `kmatch.ledger/v1` JSONL file.
fn ledger_cmd(args: &Args, sub: Option<&str>) -> Result<(), String> {
    let read = |args: &Args| -> Result<(String, Vec<kmatch_obs::LedgerRow>), String> {
        let input: String = args.require("input")?;
        let rows = kmatch_obs::read_ledger(std::path::Path::new(&input))
            .map_err(|e| format!("{input}: {e}"))?;
        Ok((input, rows))
    };
    match sub {
        Some("validate") => {
            args.check_known(&["input"])?;
            let (input, rows) = read(args)?;
            println!("OK {input}: {} rows", rows.len());
            Ok(())
        }
        Some("tail") => {
            args.check_known(&["input", "limit"])?;
            let limit: usize = args.flag_or("limit", 10)?;
            let (_, rows) = read(args)?;
            for row in rows.iter().skip(rows.len().saturating_sub(limit)) {
                println!("{}", row.to_jsonl());
            }
            Ok(())
        }
        Some("stats") => {
            args.check_known(&["input"])?;
            let (input, rows) = read(args)?;
            println!("{input}: {} rows", rows.len());
            // Aggregate per workload kind, in first-seen order.
            let mut kinds: Vec<(String, u64, u64, u64, u64)> = Vec::new();
            let mut fps: Vec<&str> = Vec::new();
            for row in &rows {
                if !fps.contains(&row.fingerprint.as_str()) {
                    fps.push(&row.fingerprint);
                }
                let proposals = row.counter("proposals").unwrap_or(0);
                match kinds.iter_mut().find(|(k, ..)| k == &row.kind) {
                    Some(agg) => {
                        agg.1 += 1;
                        agg.2 += row.instances;
                        agg.3 += proposals;
                        agg.4 += row.wall_ns;
                    }
                    None => {
                        kinds.push((row.kind.clone(), 1, row.instances, proposals, row.wall_ns))
                    }
                }
            }
            for (kind, runs, instances, proposals, wall_ns) in &kinds {
                println!(
                    "  {kind:<10}: {runs} runs, {instances} instances, \
                     {proposals} proposals, {:.3} ms total",
                    *wall_ns as f64 / 1e6
                );
            }
            println!("  fingerprints: {} distinct", fps.len());
            Ok(())
        }
        Some("diff") => {
            args.check_known(&["input", "fingerprint"])?;
            let (_, rows) = read(args)?;
            let fp = match args.flag("fingerprint") {
                Some(f) => f.to_string(),
                None => rows
                    .last()
                    .ok_or_else(|| "empty ledger".to_string())?
                    .fingerprint
                    .clone(),
            };
            let selected: Vec<&kmatch_obs::LedgerRow> =
                rows.iter().filter(|r| r.fingerprint == fp).collect();
            if selected.len() < 2 {
                return Err(format!(
                    "need at least two rows with fingerprint {fp} (found {})",
                    selected.len()
                ));
            }
            let drift = kmatch_obs::diff_counters(selected[0], selected[selected.len() - 1]);
            if drift.is_empty() {
                println!(
                    "OK fingerprint {fp}: {} rows, zero counter drift",
                    selected.len()
                );
                Ok(())
            } else {
                for (name, delta) in &drift {
                    println!("{name}: {delta:+}");
                }
                Err(format!(
                    "{} counters drifted between same-fingerprint rows (fingerprint {fp})",
                    drift.len()
                ))
            }
        }
        other => Err(format!(
            "unknown ledger subcommand: {} (expected validate|tail|stats|diff)",
            other.unwrap_or("<none>")
        )),
    }
}

fn verify_kary(args: &Args) -> Result<(), String> {
    args.check_known(&["input", "matching", "weak"])?;
    let input: String = args.require("input")?;
    let matching_path: String = args.require("matching")?;
    let inst = load_kpartite(&input)?;
    let text =
        fs::read_to_string(&matching_path).map_err(|e| format!("reading {matching_path}: {e}"))?;
    let tuples: Vec<Vec<u32>> =
        serde_json::from_str(&text).map_err(|e| format!("{matching_path}: {e}"))?;
    let matching = KAryMatching::from_tuples(inst.k(), inst.n(), &tuples);
    let weak: bool = args.flag_or("weak", false)?;
    let verdict = if weak {
        find_weak_blocking_family(&inst, &matching, &GenderPriorities::by_id(inst.k()))
    } else {
        find_blocking_family(&inst, &matching)
    };
    match verdict {
        None => {
            println!(
                "STABLE ({})",
                if weak {
                    "weakened condition"
                } else {
                    "full condition"
                }
            );
            Ok(())
        }
        Some(bf) => {
            println!(
                "UNSTABLE: blocking family {:?} from families {:?}",
                bf.members, bf.source_families
            );
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use kmatch_trace::span;

    use super::*;

    fn call(words: &[&str]) -> Result<(), String> {
        run(words.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn usage_error_on_nonsense() {
        assert!(call(&["frobnicate"]).is_err());
        assert!(call(&[]).is_err());
    }

    #[test]
    fn gen_and_solve_roundtrip() {
        let dir = std::env::temp_dir().join("kmatch-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.json");
        let inst_str = inst_path.to_str().unwrap();
        call(&[
            "gen", "kpartite", "--k", "3", "--n", "4", "--seed", "9", "--out", inst_str,
        ])
        .unwrap();
        call(&["solve", "kary", "--input", inst_str, "--tree", "path"]).unwrap();
        call(&["solve", "kary", "--input", inst_str, "--tree", "priority"]).unwrap();
    }

    #[test]
    fn theorem1_binary_reports_unsolvable() {
        let dir = std::env::temp_dir().join("kmatch-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rm.json");
        let p = path.to_str().unwrap();
        call(&["gen", "theorem1", "--k", "3", "--n", "4", "--out", p]).unwrap();
        call(&["solve", "binary", "--input", p]).unwrap();
    }

    #[test]
    fn lattice_command_runs() {
        call(&["lattice", "--n", "8", "--seed", "3"]).unwrap();
        assert!(call(&["lattice", "--seed", "3"]).is_err(), "--n required");
    }

    #[test]
    fn trace_and_render_commands() {
        let dir = std::env::temp_dir().join("kmatch-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rm3.json");
        let p = path.to_str().unwrap();
        call(&["gen", "theorem1", "--k", "3", "--n", "2", "--out", p]).unwrap();
        call(&["trace", "--input", p]).unwrap();
        call(&["render-tree", "--k", "6", "--tree", "balanced"]).unwrap();
        call(&["render-tree", "--k", "5", "--tree", "random", "--seed", "4"]).unwrap();
        assert!(call(&["render-tree", "--k", "1"]).is_err());
    }

    #[test]
    fn batch_kinds_run() {
        call(&["batch", "--n", "8", "--count", "16", "--seed", "2"]).unwrap();
        call(&[
            "batch",
            "--n",
            "8",
            "--count",
            "16",
            "--seed",
            "2",
            "--kind",
            "roommates",
        ])
        .unwrap();
        assert!(call(&["batch", "--n", "8", "--kind", "nope"]).is_err());
    }

    #[test]
    fn batch_input_reports_per_index_errors_and_fails() {
        let dir = std::env::temp_dir().join("kmatch-cli-test4");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("mixed.json");
        let errors_out = dir.join("errors.json");
        // Element 0 is a valid 2x2 bipartite DTO; element 1 is malformed
        // (proposer list references responder 7 in a 2-person instance).
        std::fs::write(
            &input,
            r#"[
  {"n": 2, "proposers": [[0, 1], [1, 0]], "responders": [[0, 1], [1, 0]]},
  {"n": 2, "proposers": [[0, 7], [1, 0]], "responders": [[0, 1], [1, 0]]}
]"#,
        )
        .unwrap();
        let err = call(&[
            "batch",
            "--input",
            input.to_str().unwrap(),
            "--errors-out",
            errors_out.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("1 of 2"), "got: {err}");
        assert!(err.contains("index 1"), "got: {err}");
        let summary: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(&errors_out).unwrap()).unwrap();
        assert_eq!(
            summary.get("schema"),
            Some(&serde::Value::String("kmatch.batch_errors/v1".into()))
        );
        assert_eq!(summary.get("failed"), Some(&serde::Value::Number(1.0)));
        assert_eq!(summary.get("total"), Some(&serde::Value::Number(2.0)));
        let Some(serde::Value::Array(errors)) = summary.get("errors") else {
            panic!("errors array missing");
        };
        assert_eq!(errors[0].get("index"), Some(&serde::Value::Number(1.0)));
    }

    #[test]
    fn batch_input_happy_path_writes_empty_error_summary() {
        let dir = std::env::temp_dir().join("kmatch-cli-test5");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("good.json");
        let errors_out = dir.join("errors.json");
        std::fs::write(
            &input,
            r#"[{"n": 2, "proposers": [[0, 1], [1, 0]], "responders": [[0, 1], [1, 0]]}]"#,
        )
        .unwrap();
        call(&[
            "batch",
            "--input",
            input.to_str().unwrap(),
            "--errors-out",
            errors_out.to_str().unwrap(),
        ])
        .unwrap();
        let summary: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(&errors_out).unwrap()).unwrap();
        assert_eq!(summary.get("failed"), Some(&serde::Value::Number(0.0)));
        // Non-array and missing-file inputs are rejected up front.
        let scalar = dir.join("scalar.json");
        std::fs::write(&scalar, "42").unwrap();
        assert!(call(&["batch", "--input", scalar.to_str().unwrap()]).is_err());
        assert!(call(&["batch", "--input", dir.join("absent.json").to_str().unwrap()]).is_err());
    }

    #[test]
    fn batch_metrics_out_emits_validatable_report() {
        let dir = std::env::temp_dir().join("kmatch-cli-test6");
        std::fs::create_dir_all(&dir).unwrap();
        let report = dir.join("report.json");
        let r = report.to_str().unwrap();
        call(&[
            "batch",
            "--n",
            "12",
            "--count",
            "40",
            "--seed",
            "5",
            "--metrics-out",
            r,
        ])
        .unwrap();
        call(&["report", "validate", "--input", r]).unwrap();
        let v: serde::Value = serde_json::from_str(&std::fs::read_to_string(&report).unwrap())
            .unwrap();
        assert_eq!(v.get("kind"), Some(&serde::Value::String("gs".into())));
        assert_eq!(v.get("instances"), Some(&serde::Value::Number(40.0)));

        // Roommates + prometheus format.
        let prom = dir.join("report.prom");
        call(&[
            "batch",
            "--n",
            "10",
            "--count",
            "20",
            "--kind",
            "roommates",
            "--metrics-out",
            prom.to_str().unwrap(),
            "--metrics-format",
            "prom",
        ])
        .unwrap();
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("kmatch_run_instances"), "got:\n{text}");
        assert!(text.contains("kmatch_proposals_total"), "got:\n{text}");
        assert!(call(&[
            "batch",
            "--n",
            "4",
            "--metrics-out",
            r,
            "--metrics-format",
            "xml"
        ])
        .is_err());
    }

    #[test]
    fn report_validate_rejects_junk() {
        let dir = std::env::temp_dir().join("kmatch-cli-test7");
        std::fs::create_dir_all(&dir).unwrap();
        let junk = dir.join("junk.json");
        std::fs::write(&junk, r#"{"schema": "something-else"}"#).unwrap();
        assert!(call(&["report", "validate", "--input", junk.to_str().unwrap()]).is_err());
        assert!(call(&["report", "validate"]).is_err(), "--input required");
    }

    #[test]
    fn batch_cache_reports_hits_for_repeated_inputs() {
        let dir = std::env::temp_dir().join("kmatch-cli-test8");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("batch.json");
        std::fs::write(
            &input,
            r#"[{"n": 2, "proposers": [[0, 1], [1, 0]], "responders": [[0, 1], [1, 0]]}]"#,
        )
        .unwrap();
        let p = input.to_str().unwrap();
        // The same file three times: 1 miss, 2 cache hits.
        call(&[
            "batch", "--input", p, "--input", p, "--input", p, "--cache", "on",
        ])
        .unwrap();
        call(&["batch", "--input", p, "--cache", "off"]).unwrap();
        assert!(call(&["batch", "--input", p, "--cache", "maybe"]).is_err());
        assert!(call(&[
            "batch", "--n", "4", "--count", "2", "--kind", "roommates", "--cache", "on",
        ])
        .is_err());
    }

    #[test]
    fn delta_command_replays_and_reports() {
        let dir = std::env::temp_dir().join("kmatch-cli-test9");
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.json");
        let deltas = dir.join("deltas.json");
        let report = dir.join("report.json");
        std::fs::write(
            &inst,
            r#"{"n": 3,
 "proposers": [[0, 1, 2], [1, 2, 0], [2, 0, 1]],
 "responders": [[1, 0, 2], [2, 1, 0], [0, 2, 1]]}"#,
        )
        .unwrap();
        std::fs::write(
            &deltas,
            r#"[
  {"op": "swap", "side": "proposer", "row": 0, "prefs": [], "a": 0, "b": 2, "from": 0, "to": 0},
  {"op": "set_row", "side": "responder", "row": 1, "prefs": [0, 1, 2], "a": 0, "b": 0, "from": 0, "to": 0},
  {"op": "splice", "side": "proposer", "row": 2, "prefs": [], "a": 0, "b": 0, "from": 2, "to": 0}
]"#,
        )
        .unwrap();
        call(&[
            "delta",
            "--input",
            inst.to_str().unwrap(),
            "--deltas",
            deltas.to_str().unwrap(),
            "--metrics-out",
            report.to_str().unwrap(),
        ])
        .unwrap();
        call(&["report", "validate", "--input", report.to_str().unwrap()]).unwrap();
        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("\"cache_hits\""), "got:\n{text}");
        assert!(text.contains("\"warm_solves\""), "got:\n{text}");
        // A malformed delta is rejected with its index.
        std::fs::write(&deltas, r#"[{"op": "reverse"}]"#).unwrap();
        let err = call(&[
            "delta",
            "--input",
            inst.to_str().unwrap(),
            "--deltas",
            deltas.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("delta 0"), "got: {err}");
    }

    #[test]
    fn bind_incremental_reports_dirty_and_clean_edges() {
        let dir = std::env::temp_dir().join("kmatch-cli-test10");
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.json");
        let updates = dir.join("updates.json");
        let report = dir.join("report.json");
        let p = inst.to_str().unwrap();
        call(&[
            "gen", "kpartite", "--k", "4", "--n", "4", "--seed", "11", "--out", p,
        ])
        .unwrap();
        call(&["bind", "--input", p, "--tree", "path"]).unwrap();
        std::fs::write(
            &updates,
            r#"[{"gender": 1, "index": 0, "target": 2, "prefs": [3, 2, 1, 0]}]"#,
        )
        .unwrap();
        call(&[
            "bind",
            "--input",
            p,
            "--tree",
            "path",
            "--incremental",
            "true",
            "--updates",
            updates.to_str().unwrap(),
            "--metrics-out",
            report.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&report).unwrap();
        assert!(text.contains("\"edges_dirty\""), "got:\n{text}");
        assert!(text.contains("\"edges_clean\""), "got:\n{text}");
    }

    #[test]
    fn solve_smp_trace_out_emits_loadable_chrome_trace() {
        let dir = std::env::temp_dir().join("kmatch-cli-test11");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("smp.trace.json");
        let t = trace.to_str().unwrap();
        call(&[
            "solve", "smp", "--n", "12", "--seed", "7", "--trace-out", t,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        let names =
            kmatch_trace::chrome_trace_names(&text, &[span::GS_SOLVE, span::GS_ROUND]).unwrap();
        assert!(names.len() >= 2);
        // Native format carries the schema tag.
        call(&[
            "solve", "smp", "--n", "8", "--trace-out", t, "--trace-format", "json",
        ])
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        kmatch_trace::validate_trace_json(&text).unwrap();
        // Tracing is gs-only; stray trace flags need --trace-out.
        assert!(call(&[
            "solve", "smp", "--n", "8", "--mode", "fair", "--trace-out", t
        ])
        .is_err());
        assert!(call(&["solve", "smp", "--n", "8", "--trace-format", "chrome"]).is_err());
        assert!(call(&[
            "solve", "smp", "--n", "8", "--trace-out", t, "--trace-format", "xml"
        ])
        .is_err());
    }

    #[test]
    fn batch_trace_out_writes_worker_tracks() {
        let dir = std::env::temp_dir().join("kmatch-cli-test12");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("batch.trace.json");
        let t = trace.to_str().unwrap();
        call(&[
            "batch", "--n", "10", "--count", "24", "--seed", "3", "--trace-out", t,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        kmatch_trace::chrome_trace_names(&text, &[span::BATCH_CHUNK, span::GS_SOLVE]).unwrap();
        assert!(text.contains("worker-0"));
        // Batch timelines go through per-chunk flight recorders, which
        // are phase-level by design: no per-round spans on the tracks.
        assert!(!text.contains(span::GS_ROUND), "got:\n{text}");
        // Roommates batch traces the Irving phases, through a tiny
        // flight recorder that must wrap without corrupting the export.
        call(&[
            "batch",
            "--n",
            "10",
            "--count",
            "24",
            "--kind",
            "roommates",
            "--trace-out",
            t,
            "--flight-recorder",
            "16",
        ])
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        kmatch_trace::chrome_trace_names(&text, &[span::IRVING_PHASE1]).unwrap();
        // Tracing composes with --metrics-out but not --cache.
        let report = dir.join("report.json");
        call(&[
            "batch",
            "--n",
            "8",
            "--count",
            "10",
            "--trace-out",
            t,
            "--metrics-out",
            report.to_str().unwrap(),
        ])
        .unwrap();
        call(&["report", "validate", "--input", report.to_str().unwrap()]).unwrap();
        let input = dir.join("one.json");
        std::fs::write(
            &input,
            r#"[{"n": 2, "proposers": [[0, 1], [1, 0]], "responders": [[0, 1], [1, 0]]}]"#,
        )
        .unwrap();
        assert!(call(&[
            "batch",
            "--input",
            input.to_str().unwrap(),
            "--cache",
            "on",
            "--trace-out",
            t,
        ])
        .is_err());
    }

    #[test]
    fn bind_and_delta_trace_out_cover_edges_and_cache() {
        let dir = std::env::temp_dir().join("kmatch-cli-test13");
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.json");
        let trace = dir.join("bind.trace.json");
        let p = inst.to_str().unwrap();
        let t = trace.to_str().unwrap();
        call(&[
            "gen", "kpartite", "--k", "4", "--n", "4", "--seed", "13", "--out", p,
        ])
        .unwrap();
        call(&["bind", "--input", p, "--tree", "path", "--trace-out", t]).unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        kmatch_trace::chrome_trace_names(&text, &[span::BIND_EDGE, span::GS_SOLVE]).unwrap();

        // Incremental bind with an update: dirty and clean edge spans.
        let updates = dir.join("updates.json");
        std::fs::write(
            &updates,
            r#"[{"gender": 1, "index": 0, "target": 2, "prefs": [3, 2, 1, 0]}]"#,
        )
        .unwrap();
        call(&[
            "bind",
            "--input",
            p,
            "--tree",
            "path",
            "--incremental",
            "true",
            "--updates",
            updates.to_str().unwrap(),
            "--trace-out",
            t,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        kmatch_trace::chrome_trace_names(&text, &[span::BIND_EDGE_DIRTY, span::BIND_EDGE_CLEAN]).unwrap();

        // Delta replay: cache instants plus engine spans.
        let binst = dir.join("bipartite.json");
        let deltas = dir.join("deltas.json");
        std::fs::write(
            &binst,
            r#"{"n": 3,
 "proposers": [[0, 1, 2], [1, 2, 0], [2, 0, 1]],
 "responders": [[1, 0, 2], [2, 1, 0], [0, 2, 1]]}"#,
        )
        .unwrap();
        std::fs::write(
            &deltas,
            r#"[{"op": "swap", "side": "proposer", "row": 0, "prefs": [], "a": 0, "b": 2, "from": 0, "to": 0}]"#,
        )
        .unwrap();
        call(&[
            "delta",
            "--input",
            binst.to_str().unwrap(),
            "--deltas",
            deltas.to_str().unwrap(),
            "--trace-out",
            t,
        ])
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        kmatch_trace::chrome_trace_names(&text, &[span::CACHE_MISS, span::GS_SOLVE]).unwrap();
    }

    #[test]
    fn smp_modes_run() {
        for mode in ["gs", "fair", "man", "woman"] {
            call(&["solve", "smp", "--n", "8", "--seed", "1", "--mode", mode]).unwrap();
        }
        assert!(call(&["solve", "smp", "--n", "8", "--mode", "nope"]).is_err());
    }

    #[test]
    fn smp_oracle_backends_run() {
        for backend in ["csr", "scores", "random"] {
            call(&["solve", "smp", "--n", "40", "--seed", "2", "--prefs", backend]).unwrap();
        }
        // Truncated lists produce a partial matching on every backend.
        call(&[
            "solve", "smp", "--n", "40", "--seed", "2", "--prefs", "random", "--list-cap", "5",
        ])
        .unwrap();
        call(&["solve", "smp", "--n", "40", "--list-cap", "3"]).unwrap();
        // Single-dash flags parse like double-dash ones.
        call(&["solve", "smp", "-n", "16", "-prefs", "random"]).unwrap();
        assert!(call(&["solve", "smp", "--n", "8", "--prefs", "nope"]).is_err());
        assert!(call(&["solve", "smp", "--n", "8", "--list-cap", "0"]).is_err());
        assert!(call(&["solve", "smp", "--n", "8", "--mode", "fair", "--prefs", "random"]).is_err());
        assert!(call(&["solve", "smp", "--n", "8", "--mode", "man", "--list-cap", "2"]).is_err());
    }

    #[test]
    fn smp_metrics_out_reports_proposals() {
        let dir = std::env::temp_dir().join("kmatch-cli-test14");
        std::fs::create_dir_all(&dir).unwrap();
        let report = dir.join("smp-report.json");
        let r = report.to_str().unwrap();
        call(&[
            "solve", "smp", "--n", "200", "--seed", "4", "--prefs", "random", "--metrics-out", r,
        ])
        .unwrap();
        call(&["report", "validate", "--input", r]).unwrap();
        let v: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(v.get("kind"), Some(&serde::Value::String("smp".into())));
        let proposals = v
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("proposals"));
        let Some(serde::Value::Number(p)) = proposals else {
            panic!("metrics.counters.proposals missing");
        };
        assert!(*p >= 200.0, "a complete solve proposes at least n times");
    }

    #[test]
    fn out_files_create_parent_dirs_and_fail_cleanly_when_unwritable() {
        let dir = std::env::temp_dir().join("kmatch-cli-test15");
        let _ = std::fs::remove_dir_all(&dir);
        // Nested, not-yet-existing parents for all three artifact flags.
        let report = dir.join("a/b/report.json");
        let trace = dir.join("c/d/run.trace.json");
        let ledger = dir.join("e/f/ledger.jsonl");
        call(&[
            "batch",
            "--n",
            "8",
            "--count",
            "4",
            "--metrics-out",
            report.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
            "--ledger-out",
            ledger.to_str().unwrap(),
        ])
        .unwrap();
        assert!(report.is_file() && trace.is_file() && ledger.is_file());
        call(&["ledger", "validate", "--input", ledger.to_str().unwrap()]).unwrap();
        // An unwritable destination (a path *under* a regular file) is a
        // clean Err naming the path — never a panic.
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, "not a dir").unwrap();
        let bad = blocker.join("sub/out.json");
        for flag in ["--metrics-out", "--trace-out", "--ledger-out"] {
            let err = call(&["batch", "--n", "8", "--count", "2", flag, bad.to_str().unwrap()])
                .unwrap_err();
            assert!(
                err.contains("blocker") && (err.contains("writing") || err.contains("appending")),
                "{flag}: {err}"
            );
        }
    }

    #[test]
    fn ledger_out_rows_validate_tail_stats_and_diff_with_zero_drift() {
        let dir = std::env::temp_dir().join("kmatch-cli-test16");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ledger = dir.join("ledger.jsonl");
        let l = ledger.to_str().unwrap();
        // Two identical runs append two same-fingerprint rows; a third
        // different workload adds a second fingerprint.
        for _ in 0..2 {
            call(&["batch", "--n", "10", "--count", "6", "--seed", "3", "--ledger-out", l])
                .unwrap();
        }
        call(&["batch", "--n", "6", "--count", "3", "--seed", "4", "--ledger-out", l]).unwrap();
        call(&["ledger", "validate", "--input", l]).unwrap();
        call(&["ledger", "tail", "--input", l, "--limit", "2"]).unwrap();
        call(&["ledger", "stats", "--input", l]).unwrap();
        let rows = kmatch_obs::read_ledger(&ledger).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].fingerprint, rows[1].fingerprint);
        assert_ne!(rows[0].fingerprint, rows[2].fingerprint);
        assert!(rows[0].proposals_vs_nlogn.is_some(), "gs rows carry the n ln n ratio");
        // Identical workloads show zero counter drift.
        call(&[
            "ledger", "diff", "--input", l, "--fingerprint", &rows[0].fingerprint,
        ])
        .unwrap();
        // The lone row of the second fingerprint cannot be diffed.
        assert!(call(&[
            "ledger", "diff", "--input", l, "--fingerprint", &rows[2].fingerprint
        ])
        .is_err());
        // Rows from different workloads drift — diff (keyed by the last
        // row's fingerprint by default) exits nonzero when counters move.
        let mut forged = rows[0].clone();
        forged.fingerprint = rows[2].fingerprint.clone();
        kmatch_obs::append_row(&ledger, &forged).unwrap();
        assert!(call(&["ledger", "diff", "--input", l]).is_err());
    }

    #[test]
    fn bind_ledger_row_records_theorem3_ratio() {
        let dir = std::env::temp_dir().join("kmatch-cli-test17");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let inst = dir.join("inst.json");
        call(&[
            "gen", "kpartite", "--k", "3", "--n", "6", "--seed", "2", "--out",
            inst.to_str().unwrap(),
        ])
        .unwrap();
        let ledger = dir.join("bind.jsonl");
        call(&[
            "bind",
            "--input",
            inst.to_str().unwrap(),
            "--incremental",
            "true",
            "--ledger-out",
            ledger.to_str().unwrap(),
        ])
        .unwrap();
        let rows = kmatch_obs::read_ledger(&ledger).unwrap();
        assert_eq!(rows.len(), 1);
        let ratio = rows[0].theorem3_ratio.expect("bind rows carry the Theorem-3 ratio");
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "Theorem 3 bounds proposals by (k-1)n², got ratio {ratio}"
        );
        assert!(rows[0].proposals_vs_nlogn.is_none(), "n ln n is a GS-only ratio");
    }

    #[test]
    fn serve_exposes_live_telemetry_and_deterministic_ledger() {
        let dir = std::env::temp_dir().join("kmatch-cli-test18");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("port");
        let ledger = dir.join("serve.jsonl");
        let (pf, l) = (
            port_file.to_str().unwrap().to_string(),
            ledger.to_str().unwrap().to_string(),
        );
        // The workload thread runs the whole serve command; the test
        // plays the scraping client, then stops the server via
        // /shutdown (which also breaks the linger loop).
        let serve = std::thread::spawn(move || {
            call(&[
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                &pf,
                "--n",
                "10",
                "--count",
                "8",
                "--seed",
                "5",
                "--iters",
                "2",
                "--flight-recorder",
                "64",
                "--ledger-out",
                &l,
                "--linger-ms",
                "30000",
            ])
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let text = text.trim().to_string();
                if !text.is_empty() {
                    break text;
                }
            }
            assert!(std::time::Instant::now() < deadline, "port file never appeared");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let get = |path: &str| kmatch_serve::http_get(&addr, path, 2000);
        assert_eq!(get("/healthz").unwrap(), (200, "ok\n".to_string()));
        // The first run report is published after the first iteration's
        // gauges are observed, so poll /report until it exists — from
        // then on /metrics must show live (non-NaN) conformance gauges.
        let report = loop {
            let (status, body) = get("/report").unwrap();
            if status == 200 {
                break body;
            }
            assert!(std::time::Instant::now() < deadline, "report never published");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        kmatch_obs::RunReport::validate_json_str(&report).unwrap();
        let (status, metrics) = get("/metrics").unwrap();
        assert_eq!(status, 200);
        for needle in [
            "kmatch_proposals_total",
            "kmatch_live_shards_absorbed",
            "kmatch_exec_busy_ns_total",
            "kmatch_theorem3_ratio ",
            "kmatch_proposals_vs_nlogn ",
        ] {
            assert!(metrics.contains(needle), "missing {needle}:\n{metrics}");
        }
        assert!(
            !metrics.contains("kmatch_theorem3_ratio NaN")
                && !metrics.contains("kmatch_proposals_vs_nlogn NaN"),
            "conformance gauges still unset:\n{metrics}"
        );
        let (status, trace) = get("/trace").unwrap();
        assert_eq!(status, 200);
        // The validator returns the distinct span names; the ring holds
        // the batch-chunk and binding spans, and the snapshot's track
        // carries the "serve ring" label verbatim in the document.
        let names = kmatch_trace::validate_trace_json(&trace).unwrap();
        assert!(names.iter().any(|n| n == span::BATCH_CHUNK), "{names:?}");
        assert!(names.iter().any(|n| n == span::BIND_EDGE), "{names:?}");
        assert!(trace.contains("serve ring"), "{trace}");
        assert_eq!(get("/nope").unwrap().0, 404);
        let (status, _) = get("/shutdown").unwrap();
        assert_eq!(status, 200);
        serve.join().unwrap().unwrap();
        // Both iterations solved the same seeded batch: two rows, one
        // fingerprint, zero counter drift.
        let rows = kmatch_obs::read_ledger(&ledger).unwrap();
        assert_eq!(rows.len(), 2);
        call(&["ledger", "validate", "--input", ledger.to_str().unwrap()]).unwrap();
        call(&["ledger", "diff", "--input", ledger.to_str().unwrap()]).unwrap();
        assert!(rows[0].straggler.is_some(), "serve rows carry straggler aggregates");
    }

    #[test]
    fn fetch_command_requires_a_live_server() {
        // Nothing listens on a fresh ephemeral port that was never
        // bound; fetch must surface that as a clean error.
        assert!(call(&[
            "fetch",
            "--addr",
            "127.0.0.1:1",
            "--path",
            "/healthz",
            "--timeout-ms",
            "200",
        ])
        .is_err());
    }
}
