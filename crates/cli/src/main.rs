//! `kmatch` — command-line interface to the stable-matching library.
//!
//! ```text
//! kmatch gen kpartite  --k 4 --n 8 --seed 1 [--alpha 0.0] --out inst.json
//! kmatch gen theorem1  --k 3 --n 4 --out rm.json
//! kmatch solve kary    --input inst.json [--tree path|star|random|priority] [--seed 7]
//! kmatch solve binary  --input rm.json
//! kmatch solve smp     --n 16 --seed 3 [--mode gs|fair|man|woman]
//! kmatch verify kary   --input inst.json --matching matching.json [--weak]
//! ```

mod args;

use std::fs;
use std::process::ExitCode;

use args::Args;
use kmatch_core::{
    bind_with_stats, family_cost, find_blocking_family, find_weak_blocking_family,
    priority_binding_tree, AttachChoice, GenderPriorities, KAryMatching,
};
use kmatch_graph::{random_tree, BindingTree};
use kmatch_gs::{gale_shapley, mean_proposer_rank, mean_responder_rank};
use kmatch_prefs::serde_support::{KPartiteDto, RoommatesDto};
use kmatch_prefs::{KPartiteInstance, RoommatesInstance};
use kmatch_roommates::kpartite::{solve_global_binary, KPartiteBinaryOutcome};
use kmatch_roommates::{fair_stable_marriage, oriented_stable_marriage, SmpOrientation};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const USAGE: &str = "\
kmatch — stable matching beyond bipartite graphs (IPPS 2016 reproduction)

USAGE:
  kmatch gen kpartite  --k K --n N [--seed S] [--alpha A] [--out FILE]
  kmatch gen theorem1  --k K --n N [--out FILE]
  kmatch solve kary    --input FILE [--tree path|star|random|priority] [--seed S]
  kmatch solve binary  --input FILE
  kmatch solve smp     --n N [--seed S] [--mode gs|fair|man|woman]
  kmatch batch         --n N [--count C] [--seed S] [--kind gs|roommates]
  kmatch verify kary   --input FILE --matching FILE [--weak]
  kmatch lattice       --n N [--seed S] [--limit L]
  kmatch trace         --input FILE            (roommates JSON, paper-style trace)
  kmatch render-tree   --k K [--tree path|star|balanced|random] [--seed S]
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw)?;
    match (args.positional(0), args.positional(1)) {
        (Some("gen"), Some("kpartite")) => gen_kpartite(&args),
        (Some("gen"), Some("theorem1")) => gen_theorem1(&args),
        (Some("solve"), Some("kary")) => solve_kary(&args),
        (Some("solve"), Some("binary")) => solve_binary(&args),
        (Some("solve"), Some("smp")) => solve_smp(&args),
        (Some("batch"), _) => batch_cmd(&args),
        (Some("verify"), Some("kary")) => verify_kary(&args),
        (Some("lattice"), _) => lattice(&args),
        (Some("trace"), _) => trace_cmd(&args),
        (Some("render-tree"), _) => render_tree_cmd(&args),
        _ => Err("unrecognized command".to_string()),
    }
}

fn lattice(args: &Args) -> Result<(), String> {
    args.check_known(&["n", "seed", "limit"])?;
    let n: usize = args.require("n")?;
    let seed: u64 = args.flag_or("seed", 0)?;
    let limit: usize = args.flag_or("limit", 100_000)?;
    let inst =
        kmatch_prefs::gen::uniform::uniform_bipartite(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let lattice = kmatch_gs::rotations::enumerate_stable_lattice(&inst, limit)?;
    println!("stable matchings : {}", lattice.matchings.len());
    println!("rotations fired  : {}", lattice.eliminations);
    let show = |name: &str, m: &kmatch_gs::BipartiteMatching| {
        println!(
            "{name:<14}: men {:.2}, women {:.2}",
            mean_proposer_rank(&inst, m),
            mean_responder_rank(&inst, m)
        );
    };
    show("man-optimal", &lattice.matchings[0]);
    show("egalitarian", lattice.egalitarian(&inst));
    let (poly, _) = kmatch_gs::egalitarian_stable_matching(&inst);
    show("egal (min-cut)", &poly);
    show("sex-equal", lattice.sex_equal(&inst));
    show(
        "woman-optimal",
        &kmatch_gs::responder_optimal(&inst).matching,
    );
    Ok(())
}

fn trace_cmd(args: &Args) -> Result<(), String> {
    args.check_known(&["input"])?;
    let input: String = args.require("input")?;
    let text = fs::read_to_string(&input).map_err(|e| format!("reading {input}: {e}"))?;
    let dto: RoommatesDto = serde_json::from_str(&text).map_err(|e| format!("{input}: {e}"))?;
    let inst = RoommatesInstance::try_from(dto).map_err(|e| format!("{input}: {e}"))?;
    let (outcome, events) = kmatch_roommates::solve_traced(&inst);
    let names = kmatch_viz::NameMap::numbered(inst.n(), "p");
    print!("{}", kmatch_viz::render_roommates_trace(&events, &names));
    match outcome.matching() {
        Some(m) => {
            let pairs: Vec<String> = m
                .pairs()
                .iter()
                .map(|&(a, b)| format!("({}, {})", names.of(a), names.of(b)))
                .collect();
            println!("stable matching: {}", pairs.join(" "));
        }
        None => println!("no stable matching"),
    }
    Ok(())
}

fn render_tree_cmd(args: &Args) -> Result<(), String> {
    args.check_known(&["k", "tree", "seed"])?;
    let k: usize = args.require("k")?;
    if k < 2 {
        return Err("need --k >= 2".to_string());
    }
    let tree = match args.flag("tree").unwrap_or("path") {
        "path" => BindingTree::path(k),
        "star" => BindingTree::star(k, (k - 1) as u16),
        "balanced" => BindingTree::balanced_binary(k),
        "random" => {
            let seed: u64 = args.flag_or("seed", 0)?;
            random_tree(k, &mut ChaCha8Rng::seed_from_u64(seed))
        }
        other => return Err(format!("unknown tree kind: {other}")),
    };
    println!("{tree}");
    print!("{}", kmatch_viz::render_tree(&tree));
    println!(
        "Δ = {} → {} parallel rounds",
        tree.max_degree(),
        tree.max_degree()
    );
    Ok(())
}

fn write_out(args: &Args, json: String) -> Result<(), String> {
    match args.flag("out") {
        Some(path) => {
            fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            println!("{json}");
            Ok(())
        }
    }
}

fn gen_kpartite(args: &Args) -> Result<(), String> {
    args.check_known(&["k", "n", "seed", "alpha", "out"])?;
    let k: usize = args.require("k")?;
    let n: usize = args.require("n")?;
    let seed: u64 = args.flag_or("seed", 0)?;
    let alpha: f64 = args.flag_or("alpha", 0.0)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let inst = if alpha > 0.0 {
        kmatch_prefs::gen::correlated::correlated_kpartite(k, n, alpha, &mut rng)
    } else {
        kmatch_prefs::gen::uniform::uniform_kpartite(k, n, &mut rng)
    };
    let json =
        serde_json::to_string_pretty(&KPartiteDto::from(&inst)).map_err(|e| e.to_string())?;
    write_out(args, json)
}

fn gen_theorem1(args: &Args) -> Result<(), String> {
    args.check_known(&["k", "n", "out"])?;
    let k: usize = args.require("k")?;
    let n: usize = args.require("n")?;
    if k < 3 {
        return Err("theorem1 needs --k >= 3".to_string());
    }
    let inst = kmatch_prefs::gen::adversarial::theorem1_roommates(k, n);
    let json =
        serde_json::to_string_pretty(&RoommatesDto::from(&inst)).map_err(|e| e.to_string())?;
    write_out(args, json)
}

fn load_kpartite(path: &str) -> Result<KPartiteInstance, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let dto: KPartiteDto = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    KPartiteInstance::try_from(dto).map_err(|e| format!("{path}: {e}"))
}

fn solve_kary(args: &Args) -> Result<(), String> {
    args.check_known(&["input", "tree", "seed", "out"])?;
    let input: String = args.require("input")?;
    let inst = load_kpartite(&input)?;
    let k = inst.k();
    let tree = match args.flag("tree").unwrap_or("path") {
        "path" => BindingTree::path(k),
        "star" => BindingTree::star(k, (k - 1) as u16),
        "random" => {
            let seed: u64 = args.flag_or("seed", 0)?;
            random_tree(k, &mut ChaCha8Rng::seed_from_u64(seed))
        }
        "priority" => priority_binding_tree(&GenderPriorities::by_id(k), AttachChoice::Chain),
        other => return Err(format!("unknown tree kind: {other}")),
    };
    let out = bind_with_stats(&inst, &tree);
    let stable = find_blocking_family(&inst, &out.matching).is_none();
    let cost = family_cost(&inst, &out.matching);
    println!("binding tree : {tree}");
    let bound = (k - 1) * inst.n() * inst.n();
    println!(
        "proposals    : {} (Theorem-3 bound (k-1)n^2 = {bound})",
        out.total_proposals()
    );
    println!("stable       : {stable}");
    println!("mean rank    : {:.3}", cost.mean_rank);
    for (f, tuple) in out.matching.to_tuples().iter().enumerate() {
        println!("family {f:>3}  : {tuple:?}");
    }
    if args.flag("out").is_some() {
        let json =
            serde_json::to_string_pretty(&out.matching.to_tuples()).map_err(|e| e.to_string())?;
        write_out(args, json)?;
    }
    Ok(())
}

fn solve_binary(args: &Args) -> Result<(), String> {
    args.check_known(&["input"])?;
    let input: String = args.require("input")?;
    let text = fs::read_to_string(&input).map_err(|e| format!("reading {input}: {e}"))?;
    let dto: RoommatesDto = serde_json::from_str(&text).map_err(|e| format!("{input}: {e}"))?;
    let inst = RoommatesInstance::try_from(dto).map_err(|e| format!("{input}: {e}"))?;
    // Infer n-per-gender is unknown for a raw roommates file; report raw ids.
    match solve_global_binary(&inst, inst.n() as u32) {
        KPartiteBinaryOutcome::Stable { pairs, stats } => {
            println!(
                "stable binary matching found ({} proposals):",
                stats.proposals
            );
            for (a, b) in pairs {
                println!("  ({}, {})", a.index, b.index);
            }
        }
        KPartiteBinaryOutcome::NoStableMatching { culprit, stats } => {
            println!(
                "no stable binary matching (participant {}'s reduced list emptied; {} proposals)",
                culprit.index, stats.proposals
            );
        }
    }
    Ok(())
}

fn solve_smp(args: &Args) -> Result<(), String> {
    args.check_known(&["n", "seed", "mode"])?;
    let n: usize = args.require("n")?;
    let seed: u64 = args.flag_or("seed", 0)?;
    let inst =
        kmatch_prefs::gen::uniform::uniform_bipartite(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let mode = args.flag("mode").unwrap_or("gs");
    let matching = match mode {
        "gs" => gale_shapley(&inst).matching,
        "fair" => fair_stable_marriage(&inst).matching,
        "man" => oriented_stable_marriage(&inst, SmpOrientation::SeedFromWomen).matching,
        "woman" => oriented_stable_marriage(&inst, SmpOrientation::SeedFromMen).matching,
        other => return Err(format!("unknown mode: {other}")),
    };
    println!("mode          : {mode}");
    println!(
        "men mean rank : {:.3}",
        mean_proposer_rank(&inst, &matching)
    );
    println!(
        "women mean rank: {:.3}",
        mean_responder_rank(&inst, &matching)
    );
    for (m, w) in matching.pairs() {
        println!("  ({m}, {w})");
    }
    Ok(())
}

/// Solve a stream of random instances through the parallel batch
/// front-ends — the CLI face of `kmatch_parallel::solve_batch`
/// (`--kind gs`) and `kmatch_parallel::roommates::solve_batch`
/// (`--kind roommates`), both with per-thread reusable workspaces and
/// zero steady-state allocation.
fn batch_cmd(args: &Args) -> Result<(), String> {
    args.check_known(&["n", "count", "seed", "kind"])?;
    let n: usize = args.require("n")?;
    let count: usize = args.flag_or("count", 1000)?;
    let seed: u64 = args.flag_or("seed", 0)?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match args.flag("kind").unwrap_or("gs") {
        "gs" => {
            let batch: Vec<kmatch_prefs::BipartiteInstance> = (0..count)
                .map(|_| kmatch_prefs::gen::uniform::uniform_bipartite(n, &mut rng))
                .collect();
            let start = std::time::Instant::now();
            let outcomes = kmatch_parallel::solve_batch(&batch);
            let elapsed = start.elapsed();
            let stats = kmatch_parallel::batch_stats(&outcomes);
            println!("instances      : {count} x n={n} (gs)");
            println!("total proposals: {}", stats.proposals);
            println!("max rounds     : {}", stats.rounds);
            println!(
                "wall time      : {:.3} ms ({:.1} instances/s)",
                elapsed.as_secs_f64() * 1e3,
                count as f64 / elapsed.as_secs_f64()
            );
        }
        "roommates" => {
            let batch: Vec<RoommatesInstance> = (0..count)
                .map(|_| kmatch_prefs::gen::uniform::uniform_roommates(n, &mut rng))
                .collect();
            let start = std::time::Instant::now();
            let outcomes = kmatch_parallel::roommates::solve_batch(&batch);
            let elapsed = start.elapsed();
            let stats = kmatch_parallel::roommates::batch_stats(&outcomes);
            println!("instances      : {count} x n={n} (roommates)");
            println!(
                "solvable       : {} ({:.1}%)",
                stats.solvable,
                100.0 * stats.solvable as f64 / count.max(1) as f64
            );
            println!("total proposals: {}", stats.proposals);
            println!("total rotations: {}", stats.rotations);
            println!(
                "wall time      : {:.3} ms ({:.1} instances/s)",
                elapsed.as_secs_f64() * 1e3,
                count as f64 / elapsed.as_secs_f64()
            );
        }
        other => return Err(format!("unknown batch kind: {other}")),
    }
    Ok(())
}

fn verify_kary(args: &Args) -> Result<(), String> {
    args.check_known(&["input", "matching", "weak"])?;
    let input: String = args.require("input")?;
    let matching_path: String = args.require("matching")?;
    let inst = load_kpartite(&input)?;
    let text =
        fs::read_to_string(&matching_path).map_err(|e| format!("reading {matching_path}: {e}"))?;
    let tuples: Vec<Vec<u32>> =
        serde_json::from_str(&text).map_err(|e| format!("{matching_path}: {e}"))?;
    let matching = KAryMatching::from_tuples(inst.k(), inst.n(), &tuples);
    let weak: bool = args.flag_or("weak", false)?;
    let verdict = if weak {
        find_weak_blocking_family(&inst, &matching, &GenderPriorities::by_id(inst.k()))
    } else {
        find_blocking_family(&inst, &matching)
    };
    match verdict {
        None => {
            println!(
                "STABLE ({})",
                if weak {
                    "weakened condition"
                } else {
                    "full condition"
                }
            );
            Ok(())
        }
        Some(bf) => {
            println!(
                "UNSTABLE: blocking family {:?} from families {:?}",
                bf.members, bf.source_families
            );
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(words: &[&str]) -> Result<(), String> {
        run(words.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn usage_error_on_nonsense() {
        assert!(call(&["frobnicate"]).is_err());
        assert!(call(&[]).is_err());
    }

    #[test]
    fn gen_and_solve_roundtrip() {
        let dir = std::env::temp_dir().join("kmatch-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.json");
        let inst_str = inst_path.to_str().unwrap();
        call(&[
            "gen", "kpartite", "--k", "3", "--n", "4", "--seed", "9", "--out", inst_str,
        ])
        .unwrap();
        call(&["solve", "kary", "--input", inst_str, "--tree", "path"]).unwrap();
        call(&["solve", "kary", "--input", inst_str, "--tree", "priority"]).unwrap();
    }

    #[test]
    fn theorem1_binary_reports_unsolvable() {
        let dir = std::env::temp_dir().join("kmatch-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rm.json");
        let p = path.to_str().unwrap();
        call(&["gen", "theorem1", "--k", "3", "--n", "4", "--out", p]).unwrap();
        call(&["solve", "binary", "--input", p]).unwrap();
    }

    #[test]
    fn lattice_command_runs() {
        call(&["lattice", "--n", "8", "--seed", "3"]).unwrap();
        assert!(call(&["lattice", "--seed", "3"]).is_err(), "--n required");
    }

    #[test]
    fn trace_and_render_commands() {
        let dir = std::env::temp_dir().join("kmatch-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rm3.json");
        let p = path.to_str().unwrap();
        call(&["gen", "theorem1", "--k", "3", "--n", "2", "--out", p]).unwrap();
        call(&["trace", "--input", p]).unwrap();
        call(&["render-tree", "--k", "6", "--tree", "balanced"]).unwrap();
        call(&["render-tree", "--k", "5", "--tree", "random", "--seed", "4"]).unwrap();
        assert!(call(&["render-tree", "--k", "1"]).is_err());
    }

    #[test]
    fn batch_kinds_run() {
        call(&["batch", "--n", "8", "--count", "16", "--seed", "2"]).unwrap();
        call(&[
            "batch",
            "--n",
            "8",
            "--count",
            "16",
            "--seed",
            "2",
            "--kind",
            "roommates",
        ])
        .unwrap();
        assert!(call(&["batch", "--n", "8", "--kind", "nope"]).is_err());
    }

    #[test]
    fn smp_modes_run() {
        for mode in ["gs", "fair", "man", "woman"] {
            call(&["solve", "smp", "--n", "8", "--seed", "1", "--mode", mode]).unwrap();
        }
        assert!(call(&["solve", "smp", "--n", "8", "--mode", "nope"]).is_err());
    }
}
