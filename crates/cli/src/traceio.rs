//! CLI plumbing for the tracing flags shared by `solve smp`, `batch`,
//! `bind`, and `delta`: `--trace-out FILE` picks the destination,
//! `--trace-format chrome|json` the exporter (Chrome trace-event JSON
//! for Perfetto, or the native `kmatch.trace/v1` document), and
//! `--flight-recorder N` swaps the unbounded recorder for a
//! fixed-capacity ring that keeps only the newest `N` events.

use kmatch_obs::Clock;
use kmatch_trace::{
    to_chrome_json, to_trace_json, FlightRecorder, SpanSink, TraceEvent, TraceRecorder, TraceTrack,
};

use crate::args::Args;

/// The tracing flags of one command invocation, parsed and validated.
pub struct TraceOpts {
    out: Option<String>,
    format: &'static str,
    flight: Option<usize>,
}

impl TraceOpts {
    /// Parse `--trace-out`/`--trace-format`/`--flight-recorder`.
    /// The latter two are only meaningful with a destination, so they
    /// are rejected without `--trace-out`.
    pub fn from_args(args: &Args) -> Result<Self, String> {
        let out = args.flag("trace-out").map(str::to_string);
        let format = match args.flag("trace-format").unwrap_or("chrome") {
            "chrome" => "chrome",
            "json" => "json",
            other => {
                return Err(format!(
                    "unknown trace format: {other} (expected chrome|json)"
                ))
            }
        };
        let flight = match args.flag("flight-recorder") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value for --flight-recorder: {v}"))?,
            ),
        };
        if out.is_none() && (args.flag("trace-format").is_some() || flight.is_some()) {
            return Err(
                "--trace-format and --flight-recorder require --trace-out FILE".to_string(),
            );
        }
        Ok(TraceOpts { out, format, flight })
    }

    /// Whether this run records spans at all.
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// Ring capacity for the per-chunk flight recorders of the traced
    /// batch front-ends (generous default when `--flight-recorder` is
    /// not given — batch timelines are bounded per chunk either way).
    pub fn chunk_capacity(&self) -> usize {
        self.flight.unwrap_or(1 << 16)
    }

    /// The recorder this invocation asked for, sampling `clock`.
    pub fn sink<'c, C: Clock>(&self, clock: &'c C) -> CliSink<'c, C> {
        match self.flight {
            Some(cap) => CliSink::Flight(FlightRecorder::new(clock, cap)),
            None => CliSink::Full(TraceRecorder::new(clock)),
        }
    }

    /// Export `tracks` to `--trace-out` in the chosen format (no-op when
    /// tracing is off).
    pub fn write(&self, tracks: &[TraceTrack]) -> Result<(), String> {
        let Some(path) = &self.out else {
            return Ok(());
        };
        let text = match self.format {
            "chrome" => to_chrome_json(tracks),
            _ => to_trace_json(tracks),
        };
        // Shared output-file discipline: create parent directories,
        // surface unwritable paths as a clean error (nonzero exit).
        kmatch_obs::report::write_text_file(std::path::Path::new(path), &text)
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path} ({} trace)", self.format);
        Ok(())
    }
}

/// Runtime-selected recorder: the unbounded [`TraceRecorder`] by
/// default, the ring-buffer [`FlightRecorder`] under
/// `--flight-recorder N`. Engines stay monomorphized over `SpanSink`;
/// the CLI pays one match per hook, which is noise at command-line
/// granularity.
pub enum CliSink<'c, C: Clock> {
    /// Unbounded recorder (keeps the whole timeline).
    Full(TraceRecorder<'c, C>),
    /// Fixed-capacity ring (keeps the newest events).
    Flight(FlightRecorder<'c, C>),
}

impl<C: Clock> CliSink<'_, C> {
    /// The recorded events, oldest first. Flight recorders that wrapped
    /// report how many events fell off the front.
    pub fn into_events(self) -> (Vec<TraceEvent>, u64) {
        match self {
            CliSink::Full(mut rec) => (rec.take(), 0),
            CliSink::Flight(rec) => {
                let dropped = rec.dropped();
                (rec.events(), dropped)
            }
        }
    }
}

impl<C: Clock> SpanSink for CliSink<'_, C> {
    const ENABLED: bool = true;
    // `--trace-out` is an explicit request to trace one run, so the CLI
    // sink keeps full (per-round) fidelity even when `--flight-recorder`
    // bounds retention: the ring then stores the fine spans it is
    // handed and simply wraps sooner. The phase-level-only discipline
    // applies where a FlightRecorder is armed *implicitly* — the traced
    // batch front-ends, which monomorphize over the ring directly.
    const FINE: bool = true;

    fn begin(&mut self, name: &'static str, arg: u64) {
        match self {
            CliSink::Full(rec) => rec.begin(name, arg),
            CliSink::Flight(rec) => rec.begin(name, arg),
        }
    }

    fn end(&mut self, name: &'static str) {
        match self {
            CliSink::Full(rec) => rec.end(name),
            CliSink::Flight(rec) => rec.end(name),
        }
    }

    fn instant(&mut self, name: &'static str, arg: u64) {
        match self {
            CliSink::Full(rec) => rec.instant(name, arg),
            CliSink::Flight(rec) => rec.instant(name, arg),
        }
    }
}
