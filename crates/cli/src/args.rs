//! Minimal flag parser (no external CLI dependency).
//!
//! Supports `--flag value` and `--flag=value` forms plus a positional
//! subcommand chain; unknown flags are an error so typos fail loudly.

use std::collections::BTreeMap;

/// Parsed command line: positional words followed by `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse raw arguments (without the program name).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                if let Some((key, value)) = stripped.split_once('=') {
                    out.flags.insert(key.to_string(), value.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("flag --{stripped} expects a value"))?;
                    out.flags.insert(stripped.to_string(), value);
                }
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// Positional word at `idx`.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positional.get(idx).map(String::as_str)
    }

    /// Raw flag value.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Parse a flag into any `FromStr` type, with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flag(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Require a flag to be present and parseable.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self
            .flag(key)
            .ok_or_else(|| format!("missing required flag --{key}"))?;
        v.parse()
            .map_err(|_| format!("invalid value for --{key}: {v}"))
    }

    /// Error on flags not in the allow list (catches typos).
    pub fn check_known(&self, known: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if !known.contains(&key.as_str()) {
                return Err(format!(
                    "unknown flag --{key} (expected one of: {})",
                    known.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positional_and_flags() {
        let a = parse(&["gen", "kpartite", "--k", "4", "--n=8"]);
        assert_eq!(a.positional(0), Some("gen"));
        assert_eq!(a.positional(1), Some("kpartite"));
        assert_eq!(a.flag("k"), Some("4"));
        assert_eq!(a.flag_or("n", 0usize).unwrap(), 8);
        assert_eq!(a.flag_or("seed", 42u64).unwrap(), 42);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Args::parse(vec!["--k".to_string()]).is_err());
    }

    #[test]
    fn unknown_flag_detected() {
        let a = parse(&["--oops", "1"]);
        assert!(a.check_known(&["k", "n"]).is_err());
        assert!(a.check_known(&["oops"]).is_ok());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&["x"]);
        assert!(a.require::<usize>("k").is_err());
    }
}
