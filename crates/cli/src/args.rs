//! Minimal flag parser (no external CLI dependency).
//!
//! Supports `--flag value`, `--flag=value`, and single-dash `-flag value`
//! forms plus a positional subcommand chain; unknown flags are an error
//! so typos fail loudly.

use std::collections::BTreeMap;

/// Parsed command line: positional words followed by `--key value` flags.
/// A flag may repeat (`--input a.json --input b.json`); [`Args::flag`]
/// returns the last occurrence and [`Args::flag_values`] all of them.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, Vec<String>>,
}

impl Args {
    /// Parse raw arguments (without the program name).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            // `-n 100000` parses like `--n 100000`; a lone `-` or a
            // leading digit (a negative number) stays positional.
            let stripped = arg.strip_prefix("--").or_else(|| {
                arg.strip_prefix('-')
                    .filter(|rest| rest.chars().next().is_some_and(char::is_alphabetic))
            });
            if let Some(stripped) = stripped {
                if let Some((key, value)) = stripped.split_once('=') {
                    out.flags
                        .entry(key.to_string())
                        .or_default()
                        .push(value.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("flag --{stripped} expects a value"))?;
                    out.flags.entry(stripped.to_string()).or_default().push(value);
                }
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// Positional word at `idx`.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positional.get(idx).map(String::as_str)
    }

    /// Raw flag value (the last occurrence when repeated).
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// Every occurrence of a repeatable flag, in command-line order.
    pub fn flag_values(&self, key: &str) -> impl Iterator<Item = &str> {
        self.flags
            .get(key)
            .into_iter()
            .flat_map(|v| v.iter().map(String::as_str))
    }

    /// Parse a flag into any `FromStr` type, with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flag(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Require a flag to be present and parseable.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self
            .flag(key)
            .ok_or_else(|| format!("missing required flag --{key}"))?;
        v.parse()
            .map_err(|_| format!("invalid value for --{key}: {v}"))
    }

    /// Error on flags not in the allow list (catches typos).
    pub fn check_known(&self, known: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if !known.contains(&key.as_str()) {
                return Err(format!(
                    "unknown flag --{key} (expected one of: {})",
                    known.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positional_and_flags() {
        let a = parse(&["gen", "kpartite", "--k", "4", "--n=8"]);
        assert_eq!(a.positional(0), Some("gen"));
        assert_eq!(a.positional(1), Some("kpartite"));
        assert_eq!(a.flag("k"), Some("4"));
        assert_eq!(a.flag_or("n", 0usize).unwrap(), 8);
        assert_eq!(a.flag_or("seed", 42u64).unwrap(), 42);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Args::parse(vec!["--k".to_string()]).is_err());
    }

    #[test]
    fn single_dash_flags_parse_like_double_dash() {
        let a = parse(&["solve", "smp", "-n", "100000", "-seed=3"]);
        assert_eq!(a.flag_or("n", 0usize).unwrap(), 100_000);
        assert_eq!(a.flag_or("seed", 0u64).unwrap(), 3);
        // A bare dash or a negative number stays positional.
        let b = parse(&["-", "-42"]);
        assert_eq!(b.positional(0), Some("-"));
        assert_eq!(b.positional(1), Some("-42"));
    }

    #[test]
    fn unknown_flag_detected() {
        let a = parse(&["--oops", "1"]);
        assert!(a.check_known(&["k", "n"]).is_err());
        assert!(a.check_known(&["oops"]).is_ok());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&["x"]);
        assert!(a.require::<usize>("k").is_err());
    }

    #[test]
    fn repeated_flag_keeps_every_occurrence() {
        let a = parse(&["batch", "--input", "a.json", "--input=b.json"]);
        assert_eq!(a.flag("input"), Some("b.json"), "flag() is the last one");
        let all: Vec<&str> = a.flag_values("input").collect();
        assert_eq!(all, ["a.json", "b.json"]);
        assert!(a.flag_values("absent").next().is_none());
    }
}
