//! Distributed Algorithm 1: iterative binding over message-passing GS.
//!
//! Every binding-tree edge runs the distributed GS protocol between its
//! two genders. Edges within one schedule round touch disjoint genders,
//! so their networks are independent — they execute concurrently, and the
//! critical path of a round is the slowest of its edges (the distributed
//! reading of Corollary 1's `Δ` bottleneck; the even–odd path schedule of
//! Corollary 2 finishes in two such rounds).

use kmatch_core::KAryMatching;
use kmatch_graph::{BindingTree, Schedule, UnionFind};
use kmatch_prefs::{GenderId, KPartiteInstance, KPartitePairView, Member};

use crate::gs_agents::distributed_gale_shapley;
use crate::network::NetworkStats;

/// Result of a distributed binding run.
#[derive(Debug, Clone)]
pub struct DistributedBindOutcome {
    /// The stable k-ary matching (identical to sequential Algorithm 1).
    pub matching: KAryMatching,
    /// Per-edge network counters, in binding-tree edge order.
    pub per_edge: Vec<NetworkStats>,
    /// Total messages across all bindings.
    pub total_messages: u64,
    /// Critical-path communication rounds: per schedule round, the max of
    /// its edges' round counts; summed over schedule rounds.
    pub critical_path_rounds: u64,
}

/// Execute Algorithm 1 distributedly following `schedule`.
pub fn distributed_bind(
    inst: &KPartiteInstance,
    tree: &BindingTree,
    schedule: &Schedule,
) -> DistributedBindOutcome {
    let (k, n) = (inst.k(), inst.n());
    assert_eq!(tree.k(), k, "binding tree must span the instance's genders");
    let mut uf = UnionFind::new(k * n);
    let mut per_edge = vec![NetworkStats::default(); tree.edges().len()];
    let mut critical_path_rounds = 0u64;
    for round in schedule.rounds() {
        let mut round_max = 0u64;
        for &e in round {
            let (i, j) = tree.edges()[e];
            let view = KPartitePairView::new(inst, GenderId(i), GenderId(j));
            let out = distributed_gale_shapley(&view);
            for (m, w) in out.matching.pairs() {
                uf.union(
                    Member {
                        gender: GenderId(i),
                        index: m,
                    }
                    .global(n as u32),
                    Member {
                        gender: GenderId(j),
                        index: w,
                    }
                    .global(n as u32),
                );
            }
            per_edge[e] = out.net;
            round_max = round_max.max(out.net.rounds as u64);
        }
        critical_path_rounds += round_max;
    }
    let matching = KAryMatching::from_classes(k, n, &uf.classes());
    let total_messages = per_edge.iter().map(|s| s.messages).sum();
    DistributedBindOutcome {
        matching,
        per_edge,
        total_messages,
        critical_path_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_core::binding::bind_with_stats;
    use kmatch_graph::prufer::random_tree;
    use kmatch_graph::schedule::{even_odd_path_schedule, tree_edge_coloring};
    use kmatch_prefs::gen::uniform::uniform_kpartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn distributed_equals_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(141);
        for (k, n) in [(3usize, 6usize), (5, 5), (8, 4)] {
            let inst = uniform_kpartite(k, n, &mut rng);
            let tree = random_tree(k, &mut rng);
            let schedule = tree_edge_coloring(&tree);
            let dist = distributed_bind(&inst, &tree, &schedule);
            let seq = bind_with_stats(&inst, &tree);
            assert_eq!(dist.matching, seq.matching, "k={k}, n={n}");
        }
    }

    #[test]
    fn message_totals_bounded_by_theorem3() {
        // messages ≤ 3 × proposals ≤ 3(k−1)n².
        let mut rng = ChaCha8Rng::seed_from_u64(142);
        let (k, n) = (6usize, 12usize);
        let inst = uniform_kpartite(k, n, &mut rng);
        let tree = BindingTree::path(k);
        let schedule = tree_edge_coloring(&tree);
        let dist = distributed_bind(&inst, &tree, &schedule);
        let seq = bind_with_stats(&inst, &tree);
        assert!(dist.total_messages >= 2 * seq.total_proposals());
        assert!(dist.total_messages <= 3 * seq.total_proposals());
        assert!(dist.total_messages <= (3 * (k - 1) * n * n) as u64);
    }

    #[test]
    fn even_odd_critical_path_is_two_gs_phases() {
        // The even-odd schedule has two rounds; the critical path is the
        // sum of the two slowest edges — far below the sequential sum.
        let mut rng = ChaCha8Rng::seed_from_u64(143);
        let (k, n) = (9usize, 8usize);
        let inst = uniform_kpartite(k, n, &mut rng);
        let tree = BindingTree::path(k);
        let even_odd = even_odd_path_schedule(&tree).unwrap();
        let dist = distributed_bind(&inst, &tree, &even_odd);
        let sequential_rounds: u64 = dist.per_edge.iter().map(|s| s.rounds as u64).sum();
        assert!(
            dist.critical_path_rounds < sequential_rounds,
            "{} !< {}",
            dist.critical_path_rounds,
            sequential_rounds
        );
        // Critical path = max of round-0 edges + max of round-1 edges.
        let max_of = |edges: &[usize]| -> u64 {
            edges
                .iter()
                .map(|&e| dist.per_edge[e].rounds as u64)
                .max()
                .unwrap()
        };
        let expected = max_of(&even_odd.rounds()[0]) + max_of(&even_odd.rounds()[1]);
        assert_eq!(dist.critical_path_rounds, expected);
    }

    #[test]
    fn star_schedule_serializes() {
        let mut rng = ChaCha8Rng::seed_from_u64(144);
        let (k, n) = (5usize, 6usize);
        let inst = uniform_kpartite(k, n, &mut rng);
        let tree = BindingTree::star(k, 0);
        let schedule = tree_edge_coloring(&tree);
        let dist = distributed_bind(&inst, &tree, &schedule);
        // Δ = k−1 rounds of one edge each: critical path = sum of all.
        let total: u64 = dist.per_edge.iter().map(|s| s.rounds as u64).sum();
        assert_eq!(dist.critical_path_rounds, total);
    }
}
