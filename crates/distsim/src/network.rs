//! The synchronous message-passing network.
//!
//! Execution proceeds in *communication rounds*: all messages sent during
//! round `r` are delivered at the start of round `r + 1` (synchronous,
//! reliable, FIFO-per-sender delivery — the standard synchronous model).
//! The network counts every message and round so experiments can restate
//! the paper's iteration bounds as message complexity.

/// A message in flight: sender, receiver, and an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending agent id.
    pub from: u32,
    /// Receiving agent id.
    pub to: u32,
    /// Application payload.
    pub payload: M,
}

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetworkStats {
    /// Total messages delivered.
    pub messages: u64,
    /// Communication rounds executed (rounds with at least one delivery
    /// or one send).
    pub rounds: u32,
}

/// A synchronous network over `n` agents exchanging messages of type `M`.
///
/// The driver loop is owned by the caller: each call to
/// [`Network::step`] delivers the messages sent in the previous round to
/// per-agent inboxes and hands them to the agent callback, collecting new
/// sends for the next round.
#[derive(Debug)]
pub struct Network<M> {
    n: usize,
    in_flight: Vec<Envelope<M>>,
    stats: NetworkStats,
}

impl<M> Network<M> {
    /// A network of `n` agents with empty channels.
    pub fn new(n: usize) -> Self {
        Network {
            n,
            in_flight: Vec::new(),
            stats: NetworkStats::default(),
        }
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Inject initial messages before the first round (e.g. "wake up"
    /// signals). Counted like normal sends.
    pub fn seed(&mut self, envelopes: impl IntoIterator<Item = Envelope<M>>) {
        self.in_flight.extend(envelopes);
    }

    /// Are any messages still in flight?
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Execute one synchronous round: deliver everything in flight,
    /// grouped per receiving agent, and collect the agents' replies.
    ///
    /// `agent` is called once per agent that received at least one message
    /// this round, with `(agent_id, inbox)`; it returns the messages that
    /// agent sends, which will be delivered next round.
    ///
    /// Returns `false` when the network was already idle (no round ran).
    pub fn step(&mut self, mut agent: impl FnMut(u32, &[Envelope<M>]) -> Vec<Envelope<M>>) -> bool {
        if self.in_flight.is_empty() {
            return false;
        }
        self.stats.rounds += 1;
        self.stats.messages += self.in_flight.len() as u64;
        // Group by receiver, preserving send order (stable partition).
        let mut inboxes: Vec<Vec<Envelope<M>>> = (0..self.n).map(|_| Vec::new()).collect();
        for env in self.in_flight.drain(..) {
            let to = env.to as usize;
            assert!(to < self.n, "receiver out of range");
            inboxes[to].push(env);
        }
        let mut next: Vec<Envelope<M>> = Vec::new();
        for (id, inbox) in inboxes.iter().enumerate() {
            if inbox.is_empty() {
                continue;
            }
            next.extend(agent(id as u32, inbox));
        }
        self.in_flight = next;
        true
    }

    /// Drive to quiescence, with a round limit as a hang guard.
    ///
    /// # Panics
    /// If the limit is exceeded (indicates a protocol bug).
    pub fn run_to_quiescence(
        &mut self,
        limit: u32,
        mut agent: impl FnMut(u32, &[Envelope<M>]) -> Vec<Envelope<M>>,
    ) {
        let mut rounds = 0;
        while self.step(&mut agent) {
            rounds += 1;
            assert!(
                rounds <= limit,
                "network did not quiesce within {limit} rounds"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_counts_messages_and_rounds() {
        let mut net: Network<&'static str> = Network::new(2);
        net.seed([Envelope {
            from: 0,
            to: 1,
            payload: "ping",
        }]);
        let mut pongs = 0;
        net.run_to_quiescence(10, |id, inbox| {
            let mut out = Vec::new();
            for env in inbox {
                if env.payload == "ping" && pongs < 3 {
                    pongs += 1;
                    out.push(Envelope {
                        from: id,
                        to: env.from,
                        payload: "pong",
                    });
                } else if env.payload == "pong" {
                    out.push(Envelope {
                        from: id,
                        to: env.from,
                        payload: "ping",
                    });
                }
            }
            out
        });
        assert_eq!(pongs, 3);
        // ping, pong, ping, pong, ping, pong, ping(dropped) = 7 messages.
        assert_eq!(net.stats().messages, 7);
        assert_eq!(net.stats().rounds, 7);
    }

    #[test]
    fn idle_network_does_not_step() {
        let mut net: Network<()> = Network::new(1);
        assert!(!net.step(|_, _| Vec::new()));
        assert_eq!(net.stats().rounds, 0);
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn hang_guard_fires() {
        let mut net: Network<u32> = Network::new(2);
        net.seed([Envelope {
            from: 0,
            to: 1,
            payload: 0,
        }]);
        net.run_to_quiescence(5, |id, inbox| {
            // Perpetual forwarding.
            inbox
                .iter()
                .map(|e| Envelope {
                    from: id,
                    to: e.from,
                    payload: e.payload,
                })
                .collect()
        });
    }

    #[test]
    fn fan_in_same_round() {
        // Two senders to one receiver: both delivered in one round.
        let mut net: Network<u32> = Network::new(3);
        net.seed([
            Envelope {
                from: 0,
                to: 2,
                payload: 10,
            },
            Envelope {
                from: 1,
                to: 2,
                payload: 20,
            },
        ]);
        let mut seen = Vec::new();
        net.run_to_quiescence(3, |_, inbox| {
            seen.extend(inbox.iter().map(|e| e.payload));
            Vec::new()
        });
        assert_eq!(seen, vec![10, 20]);
        assert_eq!(net.stats().rounds, 1);
    }
}
