//! # kmatch-distsim — a synchronous message-passing substrate
//!
//! §II-A of the paper describes Gale–Shapley as "a distributed algorithm,
//! where men propose to women iteratively", and the venue (IPPS) is a
//! parallel-processing conference — so this crate supplies the distributed
//! execution model the paper implies but never spells out:
//!
//! * [`network`] — a synchronous round-based message-passing network of
//!   agents: per-round delivery, per-agent inboxes, counted messages and
//!   rounds. No shared memory; the only inter-agent channel is messages.
//! * [`gs_agents`] — proposer/responder agents implementing deferred
//!   acceptance purely over messages (`Propose`, `Accept`, `Reject`).
//!   The tests prove the distributed run produces **exactly** the
//!   centralized engine's matching, round count, and proposal count.
//! * [`binding_agents`] — distributed Algorithm 1: every member of every
//!   gender is an agent; each binding-tree edge runs message-passing GS,
//!   with edges of the same schedule round executing in the same
//!   communication rounds (the distributed reading of Corollaries 1–2).
//!
//! Message complexity mirrors the paper's iteration counts: one `Propose`
//! per GS proposal, plus one `Accept`/`Reject` response — so the total
//! message count is exactly `2 ×` the proposal count, bounded by
//! `2(k−1)n²` for a full binding run (Theorem 3 restated for messages).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binding_agents;
pub mod gs_agents;
pub mod network;

pub use binding_agents::{distributed_bind, DistributedBindOutcome};
pub use gs_agents::{distributed_gale_shapley, DistributedGsOutcome};
pub use network::{Envelope, Network, NetworkStats};
