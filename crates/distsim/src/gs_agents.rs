//! Distributed Gale–Shapley over the message-passing network.
//!
//! Agents `0..n` are proposers, `n..2n` responders. The protocol is the
//! paper's §II-A dialogue made explicit:
//!
//! * a free proposer sends `Propose` to the best responder it has not yet
//!   proposed to;
//! * a responder replies `Accept` to the best suitor among its current
//!   fiancé and this round's proposers ("maybe"), `Reject` to the rest,
//!   and sends a displacement `Reject` to a fiancé it trades away;
//! * a proposer that receives `Reject` proposes onward; one that holds an
//!   `Accept` stays silent until displaced.
//!
//! Quiescence = everyone engaged. GS is confluent, so the result equals
//! the centralized engine's proposer-optimal matching with the **same
//! proposal count**; message count is `2 × proposals + displacements`.

use kmatch_gs::BipartiteMatching;
use kmatch_prefs::BipartitePrefs;

use crate::network::{Envelope, Network, NetworkStats};

/// Protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsMsg {
    /// Proposer → responder.
    Propose,
    /// Responder → proposer: provisional "maybe".
    Accept,
    /// Responder → proposer: refusal or displacement.
    Reject,
}

/// Result of a distributed GS run.
#[derive(Debug, Clone)]
pub struct DistributedGsOutcome {
    /// The proposer-optimal stable matching (identical to the centralized
    /// engine's).
    pub matching: BipartiteMatching,
    /// `Propose` messages sent (= the centralized proposal count).
    pub proposals: u64,
    /// Network counters (all message kinds, communication rounds).
    pub net: NetworkStats,
}

/// Run the protocol to quiescence.
pub fn distributed_gale_shapley<P: BipartitePrefs>(prefs: &P) -> DistributedGsOutcome {
    let n = prefs.n();
    assert!(n > 0, "empty instance");
    let nn = n as u32;
    let mut net: Network<GsMsg> = Network::new(2 * n);
    // Proposer state: next list index to propose to.
    let mut next = vec![0u32; n];
    // Responder state: current fiancé (proposer id) or NONE.
    const NONE: u32 = u32::MAX;
    let mut fiance = vec![NONE; n];
    let mut proposals = 0u64;

    // Round 0: every proposer proposes to its first choice.
    let seeds: Vec<Envelope<GsMsg>> = (0..nn)
        .map(|m| {
            proposals += 1;
            next[m as usize] = 1;
            Envelope {
                from: m,
                to: nn + prefs.proposer_list(m)[0],
                payload: GsMsg::Propose,
            }
        })
        .collect();
    net.seed(seeds);

    // Generous limit: each proposal takes ≤ 2 rounds, ≤ n² proposals.
    let limit = (4 * n * n + 8) as u32;
    net.run_to_quiescence(limit, |id, inbox| {
        let mut out = Vec::new();
        if id < nn {
            // Proposer: every Reject triggers the next proposal; Accepts
            // require no action.
            for env in inbox {
                if env.payload == GsMsg::Reject {
                    let m = id;
                    let idx = next[m as usize] as usize;
                    debug_assert!(idx < n, "proposer exhausted its list");
                    next[m as usize] += 1;
                    proposals += 1;
                    out.push(Envelope {
                        from: m,
                        to: nn + prefs.proposer_list(m)[idx],
                        payload: GsMsg::Propose,
                    });
                }
            }
        } else {
            // Responder: keep the best of {current fiancé} ∪ proposers.
            let w = id - nn;
            let mut best = fiance[w as usize];
            for env in inbox {
                debug_assert_eq!(env.payload, GsMsg::Propose, "responders only get proposals");
                let m = env.from;
                if best == NONE || prefs.responder_prefers(w, m, best) {
                    if best != NONE {
                        // Displacement or same-round loser.
                        out.push(Envelope {
                            from: id,
                            to: best,
                            payload: GsMsg::Reject,
                        });
                    }
                    best = m;
                } else {
                    out.push(Envelope {
                        from: id,
                        to: m,
                        payload: GsMsg::Reject,
                    });
                }
            }
            if best != fiance[w as usize] {
                out.push(Envelope {
                    from: id,
                    to: best,
                    payload: GsMsg::Accept,
                });
                fiance[w as usize] = best;
            }
            // Note: a previously-engaged fiancé displaced this round got
            // its Reject in the loop above (it was `best` when beaten).
        }
        out
    });

    let mut partner = vec![0u32; n];
    for (w, &m) in fiance.iter().enumerate() {
        assert_ne!(m, NONE, "GS terminates with everyone matched");
        partner[m as usize] = w as u32;
    }
    DistributedGsOutcome {
        matching: BipartiteMatching::from_proposer_partners(partner),
        proposals,
        net: net.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_gs::gale_shapley;
    use kmatch_prefs::gen::paper::{example1_first, example1_second};
    use kmatch_prefs::gen::structured::{cyclic_bipartite, identical_bipartite};
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn agrees_with_centralized_engine() {
        let mut rng = ChaCha8Rng::seed_from_u64(131);
        for n in [1usize, 2, 3, 8, 32, 100] {
            let inst = uniform_bipartite(n, &mut rng);
            let central = gale_shapley(&inst);
            let dist = distributed_gale_shapley(&inst);
            assert_eq!(dist.matching, central.matching, "n = {n}");
            assert_eq!(dist.proposals, central.stats.proposals, "n = {n}");
        }
    }

    #[test]
    fn paper_examples() {
        let out = distributed_gale_shapley(&example1_first());
        assert_eq!(out.matching.partner_of_proposer(0), 1);
        assert_eq!(out.matching.partner_of_proposer(1), 0);
        assert_eq!(out.proposals, 3);
        let out = distributed_gale_shapley(&example1_second());
        assert_eq!(out.matching.partner_of_proposer(0), 0);
        assert_eq!(out.proposals, 2);
    }

    #[test]
    fn message_complexity_bounds() {
        // messages = proposals + responses ≤ 3 × proposals; rounds bounded
        // by 2 per proposal chain.
        let inst = identical_bipartite(20);
        let out = distributed_gale_shapley(&inst);
        assert_eq!(out.proposals, 20 * 21 / 2);
        assert!(
            out.net.messages >= 2 * out.proposals,
            "every proposal gets a response"
        );
        assert!(out.net.messages <= 3 * out.proposals);
        // One-round instance: n proposals, n accepts → 2 rounds.
        let inst = cyclic_bipartite(16);
        let out = distributed_gale_shapley(&inst);
        assert_eq!(out.proposals, 16);
        assert_eq!(out.net.messages, 32);
        assert_eq!(out.net.rounds, 2);
    }
}
