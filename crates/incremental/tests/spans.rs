//! Span timelines of the incremental layer: dirty/clean binding-edge
//! spans and cache hit/miss instants.

use kmatch_incremental::{IncrementalBinder, IncrementalGs, IncrementalRoommates};
use kmatch_obs::{ManualClock, NoMetrics};
use kmatch_prefs::gen::uniform::{uniform_bipartite, uniform_kpartite, uniform_roommates};
use kmatch_prefs::{DeltaSide, GenderId, Member, PrefDelta};
use kmatch_trace::{check_well_formed, span, EventKind, TraceRecorder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn shuffled_row(n: usize, rng: &mut ChaCha8Rng) -> Vec<u32> {
    let mut row: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        row.swap(i, rng.gen_range(0..i + 1));
    }
    row
}

#[test]
fn binder_tags_edges_dirty_then_clean() {
    let mut rng = ChaCha8Rng::seed_from_u64(75);
    let (k, n) = (4usize, 6usize);
    let inst = uniform_kpartite(k, n, &mut rng);
    let tree = kmatch_graph::BindingTree::path(k);
    let mut binder = IncrementalBinder::new(inst, tree);
    let clock = ManualClock::new();

    // First bind: every edge is dirty and encloses a GS solve.
    let mut rec = TraceRecorder::new(&clock);
    binder.bind_spanned(&mut NoMetrics, &mut rec);
    let events = rec.take();
    check_well_formed(&events, false).unwrap();
    let dirty: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin && e.name == span::BIND_EDGE_DIRTY)
        .map(|e| e.arg)
        .collect();
    assert_eq!(dirty, vec![0, 1, 2]);
    assert!(!events.iter().any(|e| e.name == span::BIND_EDGE_CLEAN));

    // Untouched rebind: every edge is clean, no GS spans at all.
    let mut rec = TraceRecorder::new(&clock);
    binder.bind_spanned(&mut NoMetrics, &mut rec);
    let events = rec.take();
    check_well_formed(&events, false).unwrap();
    let clean: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin && e.name == span::BIND_EDGE_CLEAN)
        .map(|e| e.arg)
        .collect();
    assert_eq!(clean, vec![0, 1, 2]);
    assert!(!events.iter().any(|e| e.name == span::GS_SOLVE));

    // One pair rewrite: exactly one dirty span, at the touched edge.
    let row = shuffled_row(n, &mut rng);
    binder
        .set_pref_row(
            Member {
                gender: GenderId(1),
                index: 2,
            },
            GenderId(2),
            &row,
        )
        .unwrap();
    let mut rec = TraceRecorder::new(&clock);
    binder.bind_spanned(&mut NoMetrics, &mut rec);
    let events = rec.take();
    check_well_formed(&events, false).unwrap();
    let dirty: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin && e.name == span::BIND_EDGE_DIRTY)
        .map(|e| e.arg)
        .collect();
    assert_eq!(dirty, vec![1], "path edge (1, 2) is edge index 1");
}

#[test]
fn gs_session_emits_cache_instants() {
    let mut rng = ChaCha8Rng::seed_from_u64(76);
    let n = 8usize;
    let inst = uniform_bipartite(n, &mut rng);
    let mut session = IncrementalGs::new(inst);
    let clock = ManualClock::new();

    let mut rec = TraceRecorder::new(&clock);
    session.solve_spanned(&mut NoMetrics, &mut rec);
    let events = rec.take();
    check_well_formed(&events, false).unwrap();
    assert_eq!(events[0].name, span::CACHE_MISS);
    assert!(events.iter().any(|e| e.name == span::GS_SOLVE));

    // Same state again: pure cache hit, single instant, no engine spans.
    let mut rec = TraceRecorder::new(&clock);
    session.solve_spanned(&mut NoMetrics, &mut rec);
    let events = rec.take();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, span::CACHE_HIT);
    assert_eq!(events[0].kind, EventKind::Instant);

    // A rewrite misses and re-enters the engine (warm or cold).
    let row = shuffled_row(n, &mut rng);
    session
        .apply(&PrefDelta::SetRow {
            side: DeltaSide::Proposer,
            row: 3,
            prefs: row,
        })
        .unwrap();
    let mut rec = TraceRecorder::new(&clock);
    session.solve_spanned(&mut NoMetrics, &mut rec);
    let events = rec.take();
    check_well_formed(&events, false).unwrap();
    assert_eq!(events[0].name, span::CACHE_MISS);
    assert!(events.iter().any(|e| e.name == span::GS_SOLVE));
}

#[test]
fn roommates_session_emits_cache_instants() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let n = 8usize;
    let inst = uniform_roommates(n, &mut rng);
    let mut session = IncrementalRoommates::new(inst);
    let clock = ManualClock::new();

    let mut rec = TraceRecorder::new(&clock);
    session.solve_spanned(&mut NoMetrics, &mut rec);
    let events = rec.take();
    check_well_formed(&events, false).unwrap();
    assert_eq!(events[0].name, span::CACHE_MISS);
    assert!(events.iter().any(|e| e.name == span::IRVING_PHASE1));

    let mut rec = TraceRecorder::new(&clock);
    session.solve_spanned(&mut NoMetrics, &mut rec);
    let events = rec.take();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, span::CACHE_HIT);
}
