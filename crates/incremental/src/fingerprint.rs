//! Content fingerprints over preference rows.
//!
//! Incremental solving needs to answer "has this data changed?" in O(1)
//! after an O(row) update, without hashing whole instances on every query.
//! The scheme used throughout this crate:
//!
//! * each preference row gets a 64-bit hash, seeded with a *position tag*
//!   (side/gender and row index) so equal rows at different positions hash
//!   differently;
//! * row hashes are **XOR-combined** into an instance (or gender-pair)
//!   fingerprint — when one row changes, the combined value is patched by
//!   XOR-ing the old row hash out and the new one in, O(1) after the O(n)
//!   row rehash;
//! * everything is computed twice under independent seeds, giving a
//!   128-bit [`Fp`] key. Cache hits compare full keys, so a false hit
//!   needs a simultaneous 128-bit collision.
//!
//! The mixer is the FxHash rotate–xor–multiply round: fast, deterministic
//! across runs (no per-process randomness — fingerprints are *content*
//! addresses), and good enough bit diffusion for table keys.

use kmatch_prefs::{BipartitePrefs, DeltaSide, ResponderListSlice};

/// A 128-bit content fingerprint (two independently seeded 64-bit hashes).
pub type Fp = (u64, u64);

/// First hash seed.
pub const SEED0: u64 = 0x9e37_79b9_7f4a_7c15;
/// Second hash seed (independent stream).
pub const SEED1: u64 = 0x6c62_272e_07bb_0142;

const M: u64 = 0x517c_c1b7_2722_0a95;

/// One FxHash-style mixing round.
#[inline]
pub fn mix(h: u64, w: u64) -> u64 {
    (h.rotate_left(5) ^ w).wrapping_mul(M)
}

/// Hash one preference row under `seed`, tagged with its position so the
/// same ordering in a different row contributes a different value to the
/// XOR combination.
#[inline]
pub fn hash_row(seed: u64, tag: u64, row: &[u32]) -> u64 {
    let mut h = mix(seed, tag);
    h = mix(h, row.len() as u64);
    for &x in row {
        h = mix(h, x as u64);
    }
    h
}

/// Both lanes of [`hash_row`] at once.
#[inline]
pub fn hash_row_fp(tag: u64, row: &[u32]) -> Fp {
    (hash_row(SEED0, tag, row), hash_row(SEED1, tag, row))
}

/// XOR-patch `combined`: remove `old` and add `new`.
#[inline]
pub fn patch(combined: Fp, old: Fp, new: Fp) -> Fp {
    (combined.0 ^ old.0 ^ new.0, combined.1 ^ old.1 ^ new.1)
}

/// Position tag of a bipartite preference row (side + row index).
#[inline]
pub fn side_tag(side: DeltaSide, row: u32) -> u64 {
    match side {
        DeltaSide::Proposer => row as u64,
        DeltaSide::Responder => (1u64 << 32) | row as u64,
    }
}

/// Content fingerprint of a whole bipartite instance: the XOR combination
/// of all `2n` row hashes. Equal-content instances fingerprint equal no
/// matter how they were built — [`crate::IncrementalGs`] maintains the
/// same value incrementally, and the cached batch front-end recomputes it
/// here from scratch.
pub fn bipartite_fingerprint<P>(prefs: &P) -> Fp
where
    P: BipartitePrefs + ResponderListSlice,
{
    let n = prefs.n();
    let mut combined = (0u64, 0u64);
    for m in 0..n as u32 {
        let h = hash_row_fp(side_tag(DeltaSide::Proposer, m), prefs.proposer_list(m));
        combined = (combined.0 ^ h.0, combined.1 ^ h.1);
    }
    for w in 0..n as u32 {
        let h = hash_row_fp(side_tag(DeltaSide::Responder, w), prefs.responder_list_slice(w));
        combined = (combined.0 ^ h.0, combined.1 ^ h.1);
    }
    combined
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hash_is_position_sensitive() {
        let row = [3u32, 1, 2, 0];
        assert_ne!(hash_row_fp(0, &row), hash_row_fp(1, &row));
        assert_ne!(hash_row_fp(0, &row), hash_row_fp(0, &[3, 1, 0, 2]));
        assert_eq!(hash_row_fp(7, &row), hash_row_fp(7, &row));
    }

    #[test]
    fn patch_round_trips() {
        let a = hash_row_fp(0, &[0, 1, 2]);
        let b = hash_row_fp(1, &[2, 1, 0]);
        let b2 = hash_row_fp(1, &[1, 2, 0]);
        let combined = (a.0 ^ b.0, a.1 ^ b.1);
        let patched = patch(combined, b, b2);
        assert_eq!(patched, (a.0 ^ b2.0, a.1 ^ b2.1));
        assert_eq!(patch(patched, b2, b), combined);
    }
}
