//! Content-addressed solve cache.
//!
//! Batch workloads routinely resubmit instances they have already solved
//! (parameter sweeps revisit configurations; delta streams often undo
//! themselves). [`SolveCache`] maps a 128-bit content [`Fp`] to a stored
//! result, with FIFO eviction at a fixed capacity so a long-running
//! session cannot grow without bound. Lookups never validate the stored
//! value against the instance — the fingerprint *is* the identity, which
//! is sound because [`crate::fingerprint`] keys include every row of the
//! instance under two independent seeds.

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::fingerprint::Fp;

/// Default capacity used by the incremental sessions.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// A bounded FIFO map from content fingerprints to solve results.
#[derive(Debug, Clone)]
pub struct SolveCache<V> {
    map: HashMap<Fp, V>,
    order: VecDeque<Fp>,
    capacity: usize,
}

impl<V> SolveCache<V> {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SolveCache {
            map: HashMap::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// The stored value for `key`, if any.
    pub fn get(&self, key: Fp) -> Option<&V> {
        self.map.get(&key)
    }

    /// Store `value` under `key`; returns `true` when an *older* entry was
    /// evicted to make room. Re-inserting an existing key replaces its
    /// value without evicting.
    pub fn insert(&mut self, key: Fp, value: V) -> bool {
        if self.map.insert(key, value).is_some() {
            return false;
        }
        self.order.push_back(key);
        if self.order.len() > self.capacity {
            let oldest = self.order.pop_front().expect("len > capacity ≥ 1");
            self.map.remove(&oldest);
            return true;
        }
        false
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The eviction threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<V> Default for SolveCache<V> {
    fn default() -> Self {
        SolveCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = SolveCache::new(2);
        assert!(!c.insert((1, 1), "a"));
        assert!(!c.insert((2, 2), "b"));
        assert!(c.insert((3, 3), "c"), "third insert evicts the oldest");
        assert!(c.get((1, 1)).is_none());
        assert_eq!(c.get((2, 2)), Some(&"b"));
        assert_eq!(c.get((3, 3)), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c = SolveCache::new(2);
        c.insert((1, 1), "a");
        c.insert((2, 2), "b");
        assert!(!c.insert((1, 1), "a2"));
        assert_eq!(c.get((1, 1)), Some(&"a2"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c = SolveCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert((1, 1), "a");
        assert!(c.insert((2, 2), "b"));
        assert_eq!(c.len(), 1);
    }
}
