//! Incremental stable-roommates session.
//!
//! [`IncrementalRoommates`] wraps a [`RoommatesInstance`] and its
//! [`RoommatesWorkspace`], recording every row rewrite as a
//! [`RoommatesRowDelta`] so a re-solve can go through
//! [`RoommatesWorkspace::resolve_delta`]: when the rewrite stays inside
//! the dead zone the previous execution never probed, the previous
//! outcome is replayed in O(n); any edit that could loosen a phase-1
//! threshold falls back to a cold solve (see `kmatch_roommates::warm` for
//! the execution-identity argument). On top of that sits the same
//! content-addressed [`SolveCache`] as the GS session — an instance state
//! seen before returns its stored outcome without touching the engine,
//! including *unsolvable* states, whose culprit certificate is cached too.

use kmatch_obs::{Metrics, NoMetrics};
use kmatch_prefs::{PrefsError, RoommatesInstance};
use kmatch_trace::{span, NoSpans, SpanSink};
use kmatch_roommates::{
    RoommatesMatching, RoommatesOutcome, RoommatesRowDelta, RoommatesWorkspace, SolveStats,
};

use crate::cache::SolveCache;
use crate::fingerprint::{hash_row_fp, patch, Fp};

/// A cached roommates result: either a stable matching's partner array or
/// the unsolvability culprit, plus the stats of the run that produced it.
#[derive(Debug, Clone)]
struct CachedRoommates {
    stable: bool,
    partner: Vec<u32>,
    culprit: u32,
    stats: SolveStats,
}

impl CachedRoommates {
    fn of(outcome: &RoommatesOutcome) -> Self {
        match outcome {
            RoommatesOutcome::Stable { matching, stats } => CachedRoommates {
                stable: true,
                partner: matching.partners().to_vec(),
                culprit: 0,
                stats: *stats,
            },
            RoommatesOutcome::NoStableMatching { culprit, stats } => CachedRoommates {
                stable: false,
                partner: Vec::new(),
                culprit: *culprit,
                stats: *stats,
            },
        }
    }

    fn replay(&self) -> RoommatesOutcome {
        if self.stable {
            RoommatesOutcome::Stable {
                matching: RoommatesMatching::new(self.partner.clone()),
                stats: self.stats,
            }
        } else {
            RoommatesOutcome::NoStableMatching {
                culprit: self.culprit,
                stats: self.stats,
            }
        }
    }
}

/// A long-lived roommates solving session accepting row rewrites.
pub struct IncrementalRoommates {
    inst: RoommatesInstance,
    ws: RoommatesWorkspace,
    rows: Vec<Fp>,
    combined: Fp,
    cache: SolveCache<CachedRoommates>,
    /// Rewrites applied since the engine last ran (cache hits keep them).
    pending: Vec<RoommatesRowDelta>,
}

impl IncrementalRoommates {
    /// Start a session over `inst` with the default cache capacity.
    pub fn new(inst: RoommatesInstance) -> Self {
        Self::with_cache_capacity(inst, crate::cache::DEFAULT_CACHE_CAPACITY)
    }

    /// Start a session with an explicit solve-cache capacity.
    pub fn with_cache_capacity(inst: RoommatesInstance, capacity: usize) -> Self {
        let n = inst.n();
        let mut rows = Vec::with_capacity(n);
        let mut combined = (0u64, 0u64);
        for p in 0..n as u32 {
            let h = hash_row_fp(p as u64, inst.list(p));
            combined = (combined.0 ^ h.0, combined.1 ^ h.1);
            rows.push(h);
        }
        IncrementalRoommates {
            inst,
            ws: RoommatesWorkspace::new(),
            rows,
            combined,
            cache: SolveCache::new(capacity),
            pending: Vec::new(),
        }
    }

    /// The instance in its current (post-rewrite) state.
    pub fn instance(&self) -> &RoommatesInstance {
        &self.inst
    }

    /// The current 128-bit content fingerprint of the instance.
    pub fn fingerprint(&self) -> Fp {
        self.combined
    }

    /// Rewrite participant `p`'s preference row, capturing the old row so
    /// the next solve can prove (or refute) dead-zone confinement. A
    /// rejected row leaves the session unchanged.
    pub fn set_row(&mut self, p: u32, row: &[u32]) -> Result<(), PrefsError> {
        let old_row = self.inst.list(p).to_vec();
        self.inst.set_row(p, row)?;
        let new = hash_row_fp(p as u64, self.inst.list(p));
        let idx = p as usize;
        self.combined = patch(self.combined, self.rows[idx], new);
        self.rows[idx] = new;
        self.pending.push(RoommatesRowDelta {
            participant: p,
            old_row,
        });
        Ok(())
    }

    /// Solve the current state: cached replay, warm dead-zone replay, or
    /// cold Irving solve — whichever the state admits.
    pub fn solve(&mut self) -> RoommatesOutcome {
        self.solve_metered(&mut NoMetrics)
    }

    /// [`IncrementalRoommates::solve`] with metric hooks (one
    /// [`Metrics::cache_lookup`] per call, warm/cold counters from
    /// [`RoommatesWorkspace::resolve_delta_metered`], and
    /// [`Metrics::cache_eviction`] on overflow).
    pub fn solve_metered<M: Metrics>(&mut self, metrics: &mut M) -> RoommatesOutcome {
        self.solve_spanned(metrics, &mut NoSpans)
    }

    /// [`IncrementalRoommates::solve_metered`] that additionally emits a
    /// span timeline: a `cache.hit` or `cache.miss` instant for the
    /// lookup, and on a miss the warm/cold Irving spans of
    /// [`RoommatesWorkspace::resolve_delta`] (`irving.warm.resolve` /
    /// `irving.warm.fallback` instants plus the phase spans). With
    /// [`kmatch_trace::NoSpans`] this monomorphizes to exactly
    /// [`IncrementalRoommates::solve_metered`].
    pub fn solve_spanned<M: Metrics, S: SpanSink>(
        &mut self,
        metrics: &mut M,
        spans: &mut S,
    ) -> RoommatesOutcome {
        let key = self.combined;
        if let Some(cached) = self.cache.get(key) {
            metrics.cache_lookup(true);
            spans.instant(span::CACHE_HIT, 0);
            return cached.replay();
        }
        metrics.cache_lookup(false);
        spans.instant(span::CACHE_MISS, 0);
        let out = self
            .ws
            .resolve_delta_spanned(&self.inst, &self.pending, metrics, spans);
        self.pending.clear();
        if self.cache.insert(key, CachedRoommates::of(&out)) {
            metrics.cache_eviction();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_obs::SolverMetrics;
    use kmatch_prefs::gen::paper::section3b_right;
    use kmatch_prefs::gen::uniform::uniform_roommates;
    use kmatch_roommates::solve;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn assert_same_outcome(a: &RoommatesOutcome, b: &RoommatesOutcome) {
        match (a, b) {
            (
                RoommatesOutcome::Stable { matching: x, .. },
                RoommatesOutcome::Stable { matching: y, .. },
            ) => assert_eq!(x, y),
            (
                RoommatesOutcome::NoStableMatching { culprit: x, .. },
                RoommatesOutcome::NoStableMatching { culprit: y, .. },
            ) => assert_eq!(x, y),
            _ => panic!("stability verdicts disagree"),
        }
    }

    #[test]
    fn session_tracks_cold_solver_across_rewrites() {
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        let n = 10usize;
        let inst = uniform_roommates(n, &mut rng);
        let mut session = IncrementalRoommates::new(inst);
        for _ in 0..40 {
            let p = rng.gen_range(0..n as u32);
            let mut row = session.instance().list(p).to_vec();
            let i = rng.gen_range(0..row.len());
            let j = rng.gen_range(0..row.len());
            row.swap(i, j);
            session.set_row(p, &row).unwrap();
            let out = session.solve();
            assert_same_outcome(&out, &solve(session.instance()));
        }
    }

    #[test]
    fn undo_rewrite_hits_the_cache_even_when_unsolvable() {
        let inst = section3b_right();
        let mut session = IncrementalRoommates::new(inst);
        let mut m = SolverMetrics::new();
        let first = session.solve_metered(&mut m);
        assert!(!first.is_stable());
        let p = 0u32;
        let old = session.instance().list(p).to_vec();
        let mut rev = old.clone();
        rev.reverse();
        session.set_row(p, &rev).unwrap();
        session.solve_metered(&mut m);
        session.set_row(p, &old).unwrap();
        let again = session.solve_metered(&mut m);
        assert_eq!(m.cache_hits, 1, "restored state must be content-addressed");
        assert_same_outcome(&again, &first);
    }

    #[test]
    fn cache_hit_then_fresh_rewrite_still_matches_cold() {
        let mut rng = ChaCha8Rng::seed_from_u64(82);
        let n = 8usize;
        let inst = uniform_roommates(n, &mut rng);
        let mut session = IncrementalRoommates::new(inst);
        session.solve();
        let old = session.instance().list(2).to_vec();
        let mut rev = old.clone();
        rev.reverse();
        session.set_row(2, &rev).unwrap();
        session.solve();
        session.set_row(2, &old).unwrap();
        session.solve(); // hit — workspace is now one revision stale
        let mut row = session.instance().list(5).to_vec();
        row.reverse();
        session.set_row(5, &row).unwrap();
        assert_same_outcome(&session.solve(), &solve(session.instance()));
    }
}
