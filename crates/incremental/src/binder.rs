//! Dirty-edge incremental k-ary rebinding.
//!
//! Algorithm 1 binds along a spanning tree: one `GS(i, j)` per tree edge,
//! then a union–find merge of all pair lists. Each edge's GS run reads
//! *only* the preference rows of genders `i` over `j` and `j` over `i` —
//! so when an update stream touches one gender pair, every other edge's
//! pair list is still exactly right. [`IncrementalBinder`] exploits that:
//! it fingerprints the two directed row sets behind each binding edge
//! (XOR-combined per direction, patched in O(n) per row rewrite), and a
//! [`IncrementalBinder::bind`] re-solves **only the edges whose
//! fingerprint changed**, reusing the cached pair lists everywhere else.
//! Only the (cheap, `O(k·n·α)`) union–find merge re-runs in full.
//!
//! For a single-gender-pair update on a (k−1)-edge tree this re-executes
//! ~`1/(k−1)` of the binding work; the per-edge metrics make the claim
//! checkable — clean edges record **zero proposals** via
//! [`Metrics::binding_edge`] and a `dirty = false`
//! [`Metrics::binding_edge_reuse`].

use kmatch_core::{merge_edge_pairs, BindingOutcome};
use kmatch_graph::BindingTree;
use kmatch_gs::{GsStats, GsWorkspace};
use kmatch_obs::{Metrics, NoMetrics};
use kmatch_prefs::{
    CsrPrefs, GenderId, KPartiteInstance, KPartitePairView, Member, PrefsError,
};
use kmatch_trace::{span, NoSpans, SpanSink};

use crate::fingerprint::{hash_row_fp, mix, patch, Fp};

/// Cached state of one binding-tree edge: the fingerprint of the rows it
/// read when last solved, plus the pairs and stats that solve produced.
#[derive(Debug, Clone, Default)]
struct EdgeCache {
    /// Fingerprint of the edge's inputs at the last solve; `None` until
    /// the edge has been solved once.
    key: Option<Fp>,
    /// Global-id pairs of the edge's proposer-optimal matching.
    pairs: Vec<(u32, u32)>,
    /// Stats of the solve that produced `pairs`.
    stats: GsStats,
}

/// A k-partite binding session that re-solves only dirty edges.
pub struct IncrementalBinder {
    inst: KPartiteInstance,
    tree: BindingTree,
    /// Row fingerprints, indexed `(g·n + i)·k + h`: member `i` of gender
    /// `g`'s row over gender `h` (the diagonal `g == h` stays zero).
    row_fp: Vec<Fp>,
    /// Directed pair fingerprints, indexed `g·k + h`: XOR over the row
    /// fingerprints of all of gender `g`'s rows over gender `h`.
    dir_fp: Vec<Fp>,
    edges: Vec<EdgeCache>,
    ws: GsWorkspace,
    csr: CsrPrefs,
}

impl IncrementalBinder {
    /// Start a binding session for `inst` along `tree`. The first
    /// [`IncrementalBinder::bind`] solves every edge; later binds solve
    /// only what subsequent rewrites dirtied.
    ///
    /// # Panics
    /// If the tree's gender count differs from the instance's.
    pub fn new(inst: KPartiteInstance, tree: BindingTree) -> Self {
        let (k, n) = (inst.k(), inst.n());
        assert_eq!(tree.k(), k, "binding tree must span the instance's genders");
        let mut row_fp = vec![(0u64, 0u64); k * n * k];
        let mut dir_fp = vec![(0u64, 0u64); k * k];
        for g in 0..k as u16 {
            for h in 0..k as u16 {
                if g == h {
                    continue;
                }
                let d = g as usize * k + h as usize;
                for i in 0..n as u32 {
                    let m = Member {
                        gender: GenderId(g),
                        index: i,
                    };
                    let fp = hash_row_fp(Self::tag(k, g, i, h), inst.pref_list(m, GenderId(h)));
                    row_fp[(g as usize * n + i as usize) * k + h as usize] = fp;
                    dir_fp[d] = (dir_fp[d].0 ^ fp.0, dir_fp[d].1 ^ fp.1);
                }
            }
        }
        let edges = vec![EdgeCache::default(); tree.edges().len()];
        IncrementalBinder {
            inst,
            tree,
            row_fp,
            dir_fp,
            edges,
            ws: GsWorkspace::new(),
            csr: CsrPrefs::new(),
        }
    }

    fn tag(k: usize, g: u16, i: u32, h: u16) -> u64 {
        ((g as u64 * k as u64 + h as u64) << 32) | i as u64
    }

    /// The instance in its current (post-rewrite) state.
    pub fn instance(&self) -> &KPartiteInstance {
        &self.inst
    }

    /// The binding tree this session binds along.
    pub fn tree(&self) -> &BindingTree {
        &self.tree
    }

    /// Rewrite member `m`'s preference row over gender `h`, patching the
    /// affected directed-pair fingerprint in O(n). A rejected row leaves
    /// the session unchanged.
    pub fn set_pref_row(
        &mut self,
        m: Member,
        h: GenderId,
        row: &[u32],
    ) -> Result<(), PrefsError> {
        self.inst.set_pref_row(m, h, row)?;
        let (k, n) = (self.inst.k(), self.inst.n());
        let (g, i) = (m.gender.0, m.index);
        let idx = (g as usize * n + i as usize) * k + h.0 as usize;
        let new = hash_row_fp(Self::tag(k, g, i, h.0), self.inst.pref_list(m, h));
        let d = g as usize * k + h.0 as usize;
        self.dir_fp[d] = patch(self.dir_fp[d], self.row_fp[idx], new);
        self.row_fp[idx] = new;
        Ok(())
    }

    /// The current fingerprint of binding edge `(i, j)`: both directed
    /// row sets, direction-sensitively mixed (GS is proposer-asymmetric).
    fn edge_key(&self, i: u16, j: u16) -> Fp {
        let k = self.inst.k();
        let ij = self.dir_fp[i as usize * k + j as usize];
        let ji = self.dir_fp[j as usize * k + i as usize];
        (mix(mix(ij.0, ji.0), 1), mix(mix(ij.1, ji.1), 2))
    }

    /// Bind along the tree, re-solving only dirty edges.
    pub fn bind(&mut self) -> BindingOutcome {
        self.bind_metered(&mut NoMetrics)
    }

    /// [`IncrementalBinder::bind`] with metric hooks.
    ///
    /// Every edge records one [`Metrics::binding_edge_reuse`] (dirty or
    /// clean) and one [`Metrics::binding_edge`] proposal sample — **zero**
    /// for clean edges, which execute no GS work at all. The returned
    /// `per_edge` stats likewise report work actually executed this call,
    /// so a clean edge shows zero proposals and zero rounds.
    pub fn bind_metered<M: Metrics>(&mut self, metrics: &mut M) -> BindingOutcome {
        self.bind_spanned(metrics, &mut NoSpans)
    }

    /// [`IncrementalBinder::bind_metered`] that additionally emits a span
    /// timeline: each edge gets a `bind.edge.dirty` or `bind.edge.clean`
    /// span (arg = edge index in tree order), and dirty edges enclose
    /// their GS re-solve's `gs.solve`/`gs.round` spans — clean spans are
    /// near-instant, making fingerprint reuse visible on the timeline.
    /// With [`kmatch_trace::NoSpans`] this monomorphizes to exactly
    /// [`IncrementalBinder::bind_metered`].
    pub fn bind_spanned<M: Metrics, S: SpanSink>(
        &mut self,
        metrics: &mut M,
        spans: &mut S,
    ) -> BindingOutcome {
        let n = self.inst.n() as u32;
        let (k, nn) = (self.inst.k(), self.inst.n());
        let mut per_edge = Vec::with_capacity(self.edges.len());
        let mut all_pairs: Vec<(u32, u32)> = Vec::with_capacity(self.edges.len() * nn);
        for (e, &(i, j)) in self.tree.edges().iter().enumerate() {
            let key = self.edge_key(i, j);
            let cached = &mut self.edges[e];
            let dirty = cached.key != Some(key);
            metrics.binding_edge_reuse(dirty);
            if dirty {
                spans.begin(span::BIND_EDGE_DIRTY, e as u64);
                let view = KPartitePairView::new(&self.inst, GenderId(i), GenderId(j));
                self.csr.load(&view);
                let out = self.ws.solve_spanned(&self.csr, metrics, spans);
                cached.pairs.clear();
                cached.pairs.extend(out.matching.pairs().map(|(m, w)| {
                    (
                        Member {
                            gender: GenderId(i),
                            index: m,
                        }
                        .global(n),
                        Member {
                            gender: GenderId(j),
                            index: w,
                        }
                        .global(n),
                    )
                }));
                cached.stats = out.stats;
                cached.key = Some(key);
                metrics.binding_edge(out.stats.proposals);
                spans.end(span::BIND_EDGE_DIRTY);
                per_edge.push(out.stats);
            } else {
                spans.begin(span::BIND_EDGE_CLEAN, e as u64);
                metrics.binding_edge(0);
                spans.end(span::BIND_EDGE_CLEAN);
                per_edge.push(GsStats::default());
            }
            all_pairs.extend_from_slice(&cached.pairs);
        }
        let matching = merge_edge_pairs(k, nn, all_pairs);
        BindingOutcome { matching, per_edge }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_core::{bind_with_stats, is_kary_stable};
    use kmatch_graph::prufer::random_tree;
    use kmatch_obs::SolverMetrics;
    use kmatch_prefs::gen::uniform::uniform_kpartite;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn shuffled_row(n: usize, rng: &mut ChaCha8Rng) -> Vec<u32> {
        let mut row: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            row.swap(i, rng.gen_range(0..i + 1));
        }
        row
    }

    #[test]
    fn first_bind_equals_algorithm1() {
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        for (k, n) in [(3usize, 8usize), (5, 6)] {
            let inst = uniform_kpartite(k, n, &mut rng);
            let tree = random_tree(k, &mut rng);
            let cold = bind_with_stats(&inst, &tree);
            let mut binder = IncrementalBinder::new(inst, tree);
            let out = binder.bind();
            assert_eq!(out.matching, cold.matching);
            assert_eq!(out.per_edge, cold.per_edge);
        }
    }

    #[test]
    fn one_pair_update_resolves_one_edge() {
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let (k, n) = (5usize, 8usize);
        let inst = uniform_kpartite(k, n, &mut rng);
        let tree = kmatch_graph::BindingTree::path(k);
        let mut binder = IncrementalBinder::new(inst, tree);
        binder.bind();
        // Rewrite one row of gender 2 over gender 3 — only path edge
        // (2, 3) reads that data.
        let row = shuffled_row(n, &mut rng);
        binder
            .set_pref_row(
                Member {
                    gender: GenderId(2),
                    index: 4,
                },
                GenderId(3),
                &row,
            )
            .unwrap();
        let mut m = SolverMetrics::new();
        let out = binder.bind_metered(&mut m);
        assert_eq!(m.edges_dirty, 1, "exactly one edge reads the dirty rows");
        assert_eq!(m.edges_clean, (k - 2) as u64);
        // Clean edges execute zero proposals — confirmed per edge.
        let dirty_edges: Vec<usize> = out
            .per_edge
            .iter()
            .enumerate()
            .filter(|(_, s)| s.proposals > 0)
            .map(|(e, _)| e)
            .collect();
        assert_eq!(dirty_edges.len(), 1);
        assert_eq!(binder.tree().edges()[dirty_edges[0]], (2, 3));
        // And the merged result is still exactly Algorithm 1's.
        let cold = bind_with_stats(binder.instance(), binder.tree());
        assert_eq!(out.matching, cold.matching);
    }

    #[test]
    fn rebind_with_no_updates_is_all_clean() {
        let mut rng = ChaCha8Rng::seed_from_u64(93);
        let inst = uniform_kpartite(4, 6, &mut rng);
        let tree = random_tree(4, &mut rng);
        let mut binder = IncrementalBinder::new(inst, tree);
        let first = binder.bind();
        let mut m = SolverMetrics::new();
        let again = binder.bind_metered(&mut m);
        assert_eq!(m.edges_dirty, 0);
        assert_eq!(m.edges_clean, 3);
        assert_eq!(m.proposals, 0, "no GS work on a fully clean rebind");
        assert_eq!(again.matching, first.matching);
    }

    #[test]
    fn random_update_stream_tracks_algorithm1() {
        let mut rng = ChaCha8Rng::seed_from_u64(94);
        let (k, n) = (4usize, 6usize);
        let inst = uniform_kpartite(k, n, &mut rng);
        let tree = random_tree(k, &mut rng);
        let mut binder = IncrementalBinder::new(inst, tree);
        for _ in 0..30 {
            let g = rng.gen_range(0..k as u16);
            let mut h = rng.gen_range(0..k as u16);
            if h == g {
                h = (h + 1) % k as u16;
            }
            let m = Member {
                gender: GenderId(g),
                index: rng.gen_range(0..n as u32),
            };
            let row = shuffled_row(n, &mut rng);
            binder.set_pref_row(m, GenderId(h), &row).unwrap();
            let out = binder.bind();
            let cold = bind_with_stats(binder.instance(), binder.tree());
            assert_eq!(out.matching, cold.matching);
            assert!(is_kary_stable(binder.instance(), &out.matching));
        }
    }

    #[test]
    fn update_off_tree_rows_leaves_all_edges_clean() {
        // A star tree centred on gender 0 never reads gender 1's rows
        // over gender 2, so rewriting them dirties nothing.
        let mut rng = ChaCha8Rng::seed_from_u64(95);
        let (k, n) = (4usize, 5usize);
        let inst = uniform_kpartite(k, n, &mut rng);
        let tree = kmatch_graph::BindingTree::star(k, 0);
        let mut binder = IncrementalBinder::new(inst, tree);
        binder.bind();
        let row = shuffled_row(n, &mut rng);
        binder
            .set_pref_row(
                Member {
                    gender: GenderId(1),
                    index: 0,
                },
                GenderId(2),
                &row,
            )
            .unwrap();
        let mut m = SolverMetrics::new();
        binder.bind_metered(&mut m);
        assert_eq!(m.edges_dirty, 0);
        assert_eq!(m.edges_clean, (k - 1) as u64);
    }
}
