//! # kmatch-incremental — incremental re-solving
//!
//! The solvers in `kmatch-gs`, `kmatch-roommates`, and `kmatch-core` are
//! built for one-shot throughput. Real workloads mutate: a member
//! re-ranks one list and asks for the new matching. Solving from scratch
//! discards everything the previous execution learned; this crate keeps
//! it, at three layers:
//!
//! * [`IncrementalGs`] — a bipartite session whose solves warm-start from
//!   the previous deferred-acceptance execution
//!   (`GsWorkspace::resolve_delta` re-frees only affected proposers) and
//!   short-circuit entirely through a content-addressed [`SolveCache`]
//!   when an instance state recurs.
//! * [`IncrementalRoommates`] — the Irving analogue: dead-zone rewrites
//!   replay the previous outcome in O(n) (see `kmatch_roommates::warm`),
//!   anything that could loosen a phase-1 threshold falls back to a cold
//!   solve, and recurring states (solvable or not) come from the cache.
//! * [`IncrementalBinder`] — dirty-edge k-ary rebinding: each binding-tree
//!   edge is fingerprinted over the preference rows it reads, a rebind
//!   re-solves only dirty edges and reuses cached pair lists elsewhere
//!   (clean edges execute zero proposals), and only the union–find merge
//!   re-runs in full — ~`1/(k−1)` of the work for a one-gender-pair
//!   update.
//!
//! Content addressing is per-row FxHash-style fingerprinting, XOR-combined
//! so a row edit patches the combined key in O(n) ([`fingerprint`]); the
//! cache ([`cache`]) is a bounded FIFO keyed by 128-bit fingerprints.
//! Every layer is differentially tested byte-equal against its cold
//! counterpart, and every tier records `SolverMetrics` counters
//! (`cache_hits`/`cache_misses`/`cache_evictions`,
//! `edges_dirty`/`edges_clean`, `warm_solves`/`warm_fallbacks`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binder;
pub mod cache;
pub mod fingerprint;
pub mod gs;
pub mod roommates;

pub use binder::IncrementalBinder;
pub use cache::{SolveCache, DEFAULT_CACHE_CAPACITY};
pub use fingerprint::{bipartite_fingerprint, hash_row_fp, Fp};
pub use gs::IncrementalGs;
pub use roommates::IncrementalRoommates;
