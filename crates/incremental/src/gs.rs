//! Incremental Gale–Shapley session.
//!
//! [`IncrementalGs`] owns a bipartite instance together with everything a
//! re-solve wants warm: the [`CsrPrefs`] arena (patched row-locally per
//! delta instead of reloaded), the [`GsWorkspace`] holding the previous
//! execution (so [`GsWorkspace::resolve_delta`] re-frees only the
//! proposers a delta can affect), per-row content fingerprints (XOR-
//! combined, patched in O(n) per delta), and a content-addressed
//! [`SolveCache`] of previously seen instance states.
//!
//! A [`IncrementalGs::solve`] therefore resolves in one of three tiers:
//!
//! 1. **cached** — the combined fingerprint has been solved before: the
//!    stored matching is cloned back, no engine work at all;
//! 2. **warm** — the workspace replays the delta cascade and re-runs
//!    deferred acceptance for the few re-freed proposers;
//! 3. **cold** — no previous execution (first solve, or a size change):
//!    the engine solves from scratch.
//!
//! All three produce the same proposer-optimal matching — tier 2 by the
//! McVitie–Wilson order-independence argument (see `kmatch-gs`), tier 1
//! because the fingerprint is a content address of the full instance.

use kmatch_gs::{BipartiteMatching, GsOutcome, GsStats, GsWorkspace};
use kmatch_obs::{Metrics, NoMetrics};
use kmatch_prefs::{BipartiteInstance, CsrPrefs, DeltaSide, PrefDelta, PrefsError};
use kmatch_trace::{span, NoSpans, SpanSink};

use crate::cache::SolveCache;
use crate::fingerprint::{hash_row_fp, patch, side_tag, Fp};

/// Per-row fingerprints of a bipartite instance, XOR-combined into one
/// 128-bit content key.
#[derive(Debug, Clone)]
struct BipartiteFp {
    /// `2n` row hashes: proposer rows `0..n`, responder rows `n..2n`.
    rows: Vec<Fp>,
    combined: Fp,
}

impl BipartiteFp {
    fn new(inst: &BipartiteInstance) -> Self {
        let n = inst.n();
        let mut rows = Vec::with_capacity(2 * n);
        let mut combined = (0u64, 0u64);
        for m in 0..n as u32 {
            let h = hash_row_fp(side_tag(DeltaSide::Proposer, m), inst.proposer_list(m));
            combined = (combined.0 ^ h.0, combined.1 ^ h.1);
            rows.push(h);
        }
        for w in 0..n as u32 {
            let h = hash_row_fp(side_tag(DeltaSide::Responder, w), inst.responder_list(w));
            combined = (combined.0 ^ h.0, combined.1 ^ h.1);
            rows.push(h);
        }
        BipartiteFp { rows, combined }
    }

    fn update_row(&mut self, side: DeltaSide, row: u32, list: &[u32]) {
        let idx = match side {
            DeltaSide::Proposer => row as usize,
            DeltaSide::Responder => self.rows.len() / 2 + row as usize,
        };
        let new = hash_row_fp(side_tag(side, row), list);
        self.combined = patch(self.combined, self.rows[idx], new);
        self.rows[idx] = new;
    }
}

/// A long-lived bipartite solving session accepting preference deltas.
pub struct IncrementalGs {
    inst: BipartiteInstance,
    csr: CsrPrefs,
    ws: GsWorkspace,
    fp: BipartiteFp,
    cache: SolveCache<BipartiteMatching>,
    /// Deltas applied since the engine last actually ran (cache hits do
    /// not drain this — the workspace still reflects the older state).
    pending: Vec<PrefDelta>,
}

impl IncrementalGs {
    /// Start a session over `inst` with the default cache capacity.
    pub fn new(inst: BipartiteInstance) -> Self {
        Self::with_cache_capacity(inst, crate::cache::DEFAULT_CACHE_CAPACITY)
    }

    /// Start a session with an explicit solve-cache capacity.
    pub fn with_cache_capacity(inst: BipartiteInstance, capacity: usize) -> Self {
        let csr = CsrPrefs::from_prefs(&inst);
        let fp = BipartiteFp::new(&inst);
        IncrementalGs {
            inst,
            csr,
            ws: GsWorkspace::new(),
            fp,
            cache: SolveCache::new(capacity),
            pending: Vec::new(),
        }
    }

    /// The instance in its current (post-delta) state.
    pub fn instance(&self) -> &BipartiteInstance {
        &self.inst
    }

    /// Members per side.
    pub fn n(&self) -> usize {
        self.inst.n()
    }

    /// The current 128-bit content fingerprint of the instance.
    pub fn fingerprint(&self) -> Fp {
        self.fp.combined
    }

    /// Number of matchings currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Apply one preference delta: the instance mutates in place, the CSR
    /// arena refreshes only the dirty rows, and the content fingerprint is
    /// patched — all O(n). A rejected delta leaves the session unchanged.
    pub fn apply(&mut self, delta: &PrefDelta) -> Result<(), PrefsError> {
        self.inst.apply_delta(delta)?;
        self.csr.apply_delta(delta, &self.inst);
        let list = match delta.side() {
            DeltaSide::Proposer => self.inst.proposer_list(delta.row()),
            DeltaSide::Responder => self.inst.responder_list(delta.row()),
        };
        self.fp.update_row(delta.side(), delta.row(), list);
        self.pending.push(delta.clone());
        Ok(())
    }

    /// Solve the current state — cached, warm, or cold, whichever is
    /// cheapest (see the module docs).
    pub fn solve(&mut self) -> GsOutcome {
        self.solve_metered(&mut NoMetrics)
    }

    /// [`IncrementalGs::solve`] with metric hooks: every call records one
    /// [`Metrics::cache_lookup`]; engine runs add the warm/cold counters
    /// of `GsWorkspace::resolve_delta_metered`; insertions that push an
    /// older entry out record [`Metrics::cache_eviction`].
    pub fn solve_metered<M: Metrics>(&mut self, metrics: &mut M) -> GsOutcome {
        self.solve_spanned(metrics, &mut NoSpans)
    }

    /// [`IncrementalGs::solve_metered`] that additionally emits a span
    /// timeline: a `cache.hit` or `cache.miss` instant for the lookup,
    /// and on a miss the warm/cold engine spans of
    /// [`GsWorkspace::resolve_delta`] (`gs.warm.resolve` /
    /// `gs.warm.fallback` instants plus the `gs.solve` span). With
    /// [`kmatch_trace::NoSpans`] this monomorphizes to exactly
    /// [`IncrementalGs::solve_metered`].
    pub fn solve_spanned<M: Metrics, S: SpanSink>(
        &mut self,
        metrics: &mut M,
        spans: &mut S,
    ) -> GsOutcome {
        let key = self.fp.combined;
        if let Some(matching) = self.cache.get(key) {
            metrics.cache_lookup(true);
            spans.instant(span::CACHE_HIT, 0);
            return GsOutcome {
                matching: matching.clone(),
                stats: GsStats::default(),
                trace: None,
            };
        }
        metrics.cache_lookup(false);
        spans.instant(span::CACHE_MISS, 0);
        let out = self
            .ws
            .resolve_delta_spanned(&self.csr, &self.pending, metrics, spans);
        self.pending.clear();
        if self.cache.insert(key, out.matching.clone()) {
            metrics.cache_eviction();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_gs::gale_shapley;
    use kmatch_obs::SolverMetrics;
    use kmatch_prefs::gen::uniform::uniform_bipartite;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_delta(n: usize, rng: &mut ChaCha8Rng) -> PrefDelta {
        let side = if rng.gen_bool(0.5) {
            DeltaSide::Proposer
        } else {
            DeltaSide::Responder
        };
        let row = rng.gen_range(0..n as u32);
        match rng.gen_range(0..3u32) {
            0 => {
                let mut prefs: Vec<u32> = (0..n as u32).collect();
                for i in (1..n).rev() {
                    prefs.swap(i, rng.gen_range(0..i + 1));
                }
                PrefDelta::SetRow { side, row, prefs }
            }
            1 => PrefDelta::Swap {
                side,
                row,
                a: rng.gen_range(0..n as u32),
                b: rng.gen_range(0..n as u32),
            },
            _ => PrefDelta::Splice {
                side,
                row,
                from: rng.gen_range(0..n as u32),
                to: rng.gen_range(0..n as u32),
            },
        }
    }

    #[test]
    fn session_tracks_cold_solver_across_delta_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let inst = uniform_bipartite(24, &mut rng);
        let mut session = IncrementalGs::new(inst.clone());
        let mut shadow = inst;
        for _ in 0..40 {
            let delta = random_delta(24, &mut rng);
            session.apply(&delta).unwrap();
            shadow.apply_delta(&delta).unwrap();
            let out = session.solve();
            assert_eq!(out.matching, gale_shapley(&shadow).matching);
        }
    }

    #[test]
    fn undo_delta_hits_the_cache() {
        let mut rng = ChaCha8Rng::seed_from_u64(72);
        let inst = uniform_bipartite(16, &mut rng);
        let mut session = IncrementalGs::new(inst);
        let mut m = SolverMetrics::new();
        let first = session.solve_metered(&mut m);
        // Swap two entries and solve, then swap them back: the original
        // fingerprint recurs and the stored matching comes straight back.
        let swap = PrefDelta::Swap {
            side: DeltaSide::Proposer,
            row: 3,
            a: 0,
            b: 5,
        };
        session.apply(&swap).unwrap();
        session.solve_metered(&mut m);
        session.apply(&swap).unwrap();
        let again = session.solve_metered(&mut m);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 2);
        assert_eq!(again.matching, first.matching);
        assert_eq!(again.stats, GsStats::default(), "no engine work on a hit");
    }

    #[test]
    fn solve_after_cache_hit_still_matches_cold() {
        // A cache hit leaves the workspace one revision behind; the next
        // miss must still warm-start correctly from the accumulated
        // pending deltas.
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        let inst = uniform_bipartite(20, &mut rng);
        let mut session = IncrementalGs::new(inst.clone());
        session.solve();
        let swap = PrefDelta::Swap {
            side: DeltaSide::Responder,
            row: 7,
            a: 1,
            b: 9,
        };
        session.apply(&swap).unwrap();
        session.solve();
        session.apply(&swap).unwrap();
        session.solve(); // cache hit — engine state is now stale
        let fresh = random_delta(20, &mut rng);
        session.apply(&fresh).unwrap();
        let mut shadow = inst;
        shadow.apply_delta(&fresh).unwrap();
        assert_eq!(session.solve().matching, gale_shapley(&shadow).matching);
    }

    #[test]
    fn eviction_fires_metric_and_bounds_cache() {
        let mut rng = ChaCha8Rng::seed_from_u64(74);
        let inst = uniform_bipartite(12, &mut rng);
        let mut session = IncrementalGs::with_cache_capacity(inst, 2);
        let mut m = SolverMetrics::new();
        for _ in 0..5 {
            let delta = random_delta(12, &mut rng);
            session.apply(&delta).unwrap();
            session.solve_metered(&mut m);
        }
        assert!(session.cache_len() <= 2);
        assert!(m.cache_evictions >= m.cache_misses.saturating_sub(2 + m.cache_hits));
    }

    #[test]
    fn incremental_fingerprint_matches_from_scratch() {
        let mut rng = ChaCha8Rng::seed_from_u64(76);
        let inst = uniform_bipartite(14, &mut rng);
        let mut session = IncrementalGs::new(inst);
        for _ in 0..20 {
            let delta = random_delta(14, &mut rng);
            session.apply(&delta).unwrap();
            assert_eq!(
                session.fingerprint(),
                crate::fingerprint::bipartite_fingerprint(session.instance()),
                "patched fingerprint must equal a full rehash"
            );
        }
    }

    #[test]
    fn rejected_delta_leaves_session_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(75);
        let inst = uniform_bipartite(10, &mut rng);
        let mut session = IncrementalGs::new(inst.clone());
        let fp = session.fingerprint();
        let bad = PrefDelta::Swap {
            side: DeltaSide::Proposer,
            row: 99,
            a: 0,
            b: 1,
        };
        assert!(session.apply(&bad).is_err());
        assert_eq!(session.fingerprint(), fp);
        assert_eq!(session.solve().matching, gale_shapley(&inst).matching);
    }
}
