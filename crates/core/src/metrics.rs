//! Family-happiness metrics for k-ary matchings.
//!
//! Used by the experiment harness to compare the matchings produced by
//! different binding trees (§IV-B notes different trees produce different
//! stable matchings — these metrics quantify *how* different).

use kmatch_prefs::{GenderId, KPartiteInstance, Member};

use crate::kary::KAryMatching;

/// Happiness summary of a k-ary matching.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyCost {
    /// Mean rank each member assigns to its `k − 1` family partners,
    /// averaged over all members (0 = everyone's family is their first
    /// choices).
    pub mean_rank: f64,
    /// Per-gender mean rank, exposing which genders the binding-tree
    /// orientation favored (proposer-optimality per edge).
    pub per_gender_mean: Vec<f64>,
    /// Worst rank any member assigns to a family partner.
    pub max_rank: u32,
}

/// Compute happiness metrics of `matching` under `inst`.
pub fn family_cost(inst: &KPartiteInstance, matching: &KAryMatching) -> FamilyCost {
    let (k, n) = (inst.k(), inst.n());
    let mut per_gender_total = vec![0u64; k];
    let mut max_rank = 0u32;
    for f in matching.family_ids() {
        #[allow(clippy::needless_range_loop)]
        for g in 0..k {
            let me = matching.member_of(f, GenderId::from(g));
            for h in 0..k {
                if h == g {
                    continue;
                }
                let partner = matching.member_of(f, GenderId::from(h));
                let r = inst.rank_of(me, partner.gender, partner.index);
                per_gender_total[g] += r as u64;
                max_rank = max_rank.max(r);
            }
        }
    }
    let per_member_pairs = ((k - 1) * n) as f64;
    let per_gender_mean: Vec<f64> = per_gender_total
        .iter()
        .map(|&t| t as f64 / per_member_pairs)
        .collect();
    let mean_rank = per_gender_total.iter().sum::<u64>() as f64 / (per_member_pairs * k as f64);
    FamilyCost {
        mean_rank,
        per_gender_mean,
        max_rank,
    }
}

/// Rank member `m` assigns to its own family's gender-`h` member.
pub fn member_rank_of_partner(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
    m: Member,
    h: GenderId,
) -> u32 {
    let partner = matching.current_partner(m, h);
    inst.rank_of(m, h, partner.index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::bind;
    use kmatch_graph::BindingTree;
    use kmatch_prefs::gen::paper::fig3_tripartite;

    #[test]
    fn fig3_costs() {
        let inst = fig3_tripartite();
        let tree = BindingTree::new(3, vec![(0, 1), (1, 2)]).unwrap();
        let m = bind(&inst, &tree);
        let cost = family_cost(&inst, &m);
        assert_eq!(cost.per_gender_mean.len(), 3);
        assert!(
            cost.mean_rank >= 0.0 && cost.mean_rank <= 1.0,
            "n = 2 ranks are 0 or 1"
        );
        assert!(cost.max_rank <= 1);
    }

    #[test]
    fn member_rank_lookup() {
        let inst = fig3_tripartite();
        let tree = BindingTree::new(3, vec![(0, 1), (1, 2)]).unwrap();
        let matching = bind(&inst, &tree);
        // Family 0 = (m, w, u); m ranks w first (rank 0) and u last (rank 1,
        // since m prefers u').
        let m = Member::new(0usize, 0);
        assert_eq!(member_rank_of_partner(&inst, &matching, m, GenderId(1)), 0);
        assert_eq!(member_rank_of_partner(&inst, &matching, m, GenderId(2)), 1);
    }

    #[test]
    fn different_trees_different_costs() {
        // §IV-B: different binding trees may favor different genders.
        let inst = fig3_tripartite();
        let t1 = BindingTree::new(3, vec![(0, 1), (1, 2)]).unwrap();
        let t2 = BindingTree::new(3, vec![(0, 2), (2, 1)]).unwrap();
        let c1 = family_cost(&inst, &bind(&inst, &t1));
        let c2 = family_cost(&inst, &bind(&inst, &t2));
        assert_ne!(
            c1.per_gender_mean, c2.per_gender_mean,
            "tree choice matters"
        );
    }
}
