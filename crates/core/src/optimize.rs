//! Binding-tree search: exploiting §IV-B's observation that "different
//! bindings may generate different stable k-ary matchings".
//!
//! Algorithm 1 is correct for *any* spanning tree, which turns the tree
//! (and its edge orientations) into a free optimization knob: Cayley gives
//! `k^{k−2}` trees, each orientable `2^{k−1}` ways, every one producing a
//! stable matching. [`optimize_tree`] samples that space and keeps the
//! matching minimizing a caller-supplied objective (by default the mean
//! family rank of `crate::metrics::family_cost`); [`exhaustive_best_tree`]
//! scans *all* trees for small `k` as ground truth.

use kmatch_graph::{random_tree, BindingTree};
use kmatch_prefs::KPartiteInstance;
use rand::Rng;

use crate::binding::bind;
use crate::kary::KAryMatching;
use crate::metrics::family_cost;

/// Result of a tree search.
#[derive(Debug, Clone)]
pub struct TreeSearchOutcome {
    /// The best tree found.
    pub tree: BindingTree,
    /// Its matching.
    pub matching: KAryMatching,
    /// The objective value (lower is better).
    pub objective: f64,
    /// Trees evaluated.
    pub evaluated: usize,
}

/// Mean family rank — the default objective.
pub fn mean_rank_objective(inst: &KPartiteInstance, m: &KAryMatching) -> f64 {
    family_cost(inst, m).mean_rank
}

/// Sample `samples` random trees (Prüfer-uniform, plus the canonical path
/// and a star as seeds) with random orientations, keeping the matching
/// that minimizes `objective`.
pub fn optimize_tree(
    inst: &KPartiteInstance,
    samples: usize,
    rng: &mut impl Rng,
    objective: impl Fn(&KPartiteInstance, &KAryMatching) -> f64,
) -> TreeSearchOutcome {
    let k = inst.k();
    let mut best: Option<TreeSearchOutcome> = None;
    let consider = |tree: BindingTree, best: &mut Option<TreeSearchOutcome>, count: usize| {
        let matching = bind(inst, &tree);
        let value = objective(inst, &matching);
        if best.as_ref().is_none_or(|b| value < b.objective) {
            *best = Some(TreeSearchOutcome {
                tree,
                matching,
                objective: value,
                evaluated: count,
            });
        } else if let Some(b) = best.as_mut() {
            b.evaluated = count;
        }
    };
    let mut count = 0;
    for seed_tree in [BindingTree::path(k), BindingTree::star(k, (k - 1) as u16)] {
        count += 1;
        consider(seed_tree, &mut best, count);
    }
    for _ in 0..samples {
        count += 1;
        let tree = random_tree(k, rng);
        // Random orientation: flip each edge with probability 1/2.
        let edges = tree
            .edges()
            .iter()
            .map(|&(a, b)| if rng.gen_bool(0.5) { (b, a) } else { (a, b) })
            .collect();
        let oriented = BindingTree::new(k, edges).expect("reorientation preserves the tree");
        consider(oriented, &mut best, count);
    }
    best.expect("at least the seed trees were evaluated")
}

/// Evaluate **every** labeled tree (both canonical orientations) for small
/// `k`; ground truth for the sampler.
pub fn exhaustive_best_tree(
    inst: &KPartiteInstance,
    max_trees: usize,
    objective: impl Fn(&KPartiteInstance, &KAryMatching) -> f64,
) -> TreeSearchOutcome {
    let k = inst.k();
    let mut best: Option<TreeSearchOutcome> = None;
    let mut count = 0;
    for tree in kmatch_graph::all_trees(k, max_trees) {
        for t in [tree.clone(), tree.reversed()] {
            count += 1;
            let matching = bind(inst, &t);
            let value = objective(inst, &matching);
            if best.as_ref().is_none_or(|b| value < b.objective) {
                best = Some(TreeSearchOutcome {
                    tree: t,
                    matching,
                    objective: value,
                    evaluated: count,
                });
            }
        }
    }
    let mut out = best.expect("k >= 2 has at least one tree");
    out.evaluated = count;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::is_kary_stable;
    use kmatch_prefs::gen::uniform::uniform_kpartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sampler_never_beats_exhaustive_and_stays_stable() {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        for _ in 0..5 {
            let inst = uniform_kpartite(4, 4, &mut rng);
            let exact = exhaustive_best_tree(&inst, 64, mean_rank_objective);
            let sampled = optimize_tree(&inst, 30, &mut rng, mean_rank_objective);
            assert!(is_kary_stable(&inst, &exact.matching));
            assert!(is_kary_stable(&inst, &sampled.matching));
            assert!(
                sampled.objective >= exact.objective - 1e-12,
                "sampling cannot beat the exhaustive optimum"
            );
        }
    }

    #[test]
    fn optimizer_improves_on_default_path() {
        // Averaged over instances, the best-of-samples tree must be at
        // least as happy as the canonical path tree (it considers it).
        let mut rng = ChaCha8Rng::seed_from_u64(72);
        for _ in 0..10 {
            let inst = uniform_kpartite(5, 6, &mut rng);
            let path_cost = mean_rank_objective(&inst, &bind(&inst, &BindingTree::path(5)));
            let best = optimize_tree(&inst, 25, &mut rng, mean_rank_objective);
            assert!(best.objective <= path_cost + 1e-12);
            assert_eq!(best.evaluated, 27, "2 seeds + 25 samples");
        }
    }

    #[test]
    fn tree_choice_genuinely_matters() {
        // On some instance the gap between best and worst tree is
        // non-trivial — §IV-B's point, quantified.
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        let mut saw_gap = false;
        for _ in 0..10 {
            let inst = uniform_kpartite(4, 5, &mut rng);
            let mut values = Vec::new();
            for tree in kmatch_graph::all_trees(4, 64) {
                values.push(mean_rank_objective(&inst, &bind(&inst, &tree)));
            }
            let best = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let worst = values.iter().cloned().fold(0.0f64, f64::max);
            if worst > best * 1.15 {
                saw_gap = true;
                break;
            }
        }
        assert!(
            saw_gap,
            "expected ≥15% happiness spread across trees somewhere"
        );
    }

    #[test]
    fn custom_objective_respected() {
        // Optimize for gender 0's happiness only.
        let mut rng = ChaCha8Rng::seed_from_u64(74);
        let inst = uniform_kpartite(3, 5, &mut rng);
        let obj = |inst: &kmatch_prefs::KPartiteInstance, m: &KAryMatching| {
            family_cost(inst, m).per_gender_mean[0]
        };
        let best = optimize_tree(&inst, 20, &mut rng, obj);
        let default = obj(&inst, &bind(&inst, &BindingTree::path(3)));
        assert!(best.objective <= default + 1e-12);
    }
}
