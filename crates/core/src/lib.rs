//! # kmatch-core — stable k-ary matching in k-partite graphs
//!
//! The primary contribution of *"Stable Matching Beyond Bipartite Graphs"*
//! (Wu, IPPS 2016): a **k-ary matching** groups the `k·n` members of a
//! balanced k-partite graph into `n` families of one member per gender, and
//! it is *stable* when no **blocking family** exists — no k-tuple whose
//! every member strictly prefers every cross-family member of the tuple to
//! the corresponding member of its current family (§II-C).
//!
//! * [`kary::KAryMatching`] — the matching representation.
//! * [`binding`] — **Algorithm 1**, the iterative binding GS algorithm:
//!   one Gale–Shapley pass per edge of a spanning *binding tree* over the
//!   genders, merged into families by the equivalence relation "in the same
//!   matching tuple". Theorem 2: always stable; Theorem 3: at most
//!   `(k−1)·n²` proposals.
//! * [`blocking`] — blocking-family search (the stability verifier), a
//!   pruned DFS over candidate tuples with exhaustive ground truth.
//! * [`weak`] — §IV-D's **weakened** blocking condition under a gender
//!   priority order (only each sub-family's *lead member* must prefer the
//!   change), its verifier, and **Algorithm 2**, the priority-based binding
//!   that defeats it via bitonic trees (Theorem 5).
//! * [`theorems`] — executable demonstrations of Theorem 1 (no stable
//!   *binary* matching for k > 2) and Theorem 4 (k − 1 bindings is tight).
//! * [`metrics`] — family-happiness metrics for the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binding;
pub mod blocking;
pub mod kary;
pub mod metrics;
pub mod optimize;
pub mod partitioned;
pub mod quorum;
pub mod theorems;
pub mod weak;

pub use binding::{bind, bind_metered, bind_spanned, bind_with_stats, merge_edge_pairs, BindingOutcome};
pub use blocking::{
    find_blocking_family, find_blocking_family_bitset, find_blocking_family_naive, is_kary_stable,
    BlockingFamily,
};
pub use kary::KAryMatching;
pub use metrics::{family_cost, FamilyCost};
pub use optimize::{exhaustive_best_tree, optimize_tree, TreeSearchOutcome};
pub use partitioned::{is_partition_stable, partitioned_bind, GenderPartition, PartitionedOutcome};
pub use quorum::{
    find_quorum_blocking_family, find_quorum_blocking_family_naive, is_quorum_stable,
    stability_threshold,
};
pub use theorems::{theorem1_verdict, Theorem1Verdict};
pub use weak::{
    all_priority_trees, find_weak_blocking_family, find_weak_blocking_family_naive,
    is_weakly_stable, priority_bind, priority_binding_tree, AttachChoice, GenderPriorities,
};
