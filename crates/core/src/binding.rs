//! Algorithm 1: the iterative binding GS algorithm.
//!
//! For each edge `(i, j)` of a spanning binding tree over the genders, run
//! `GS(i, j)` (gender `i` proposing); collect all resulting pairs; derive
//! the equivalence classes of "in the same matching tuple" (reflexive,
//! symmetric, transitive closure of the pair relation) — those classes are
//! the matching k-tuples.
//!
//! * Theorem 2: the result is always a perfect, stable k-ary matching.
//! * Theorem 3: at most `(k−1)·n²` proposals in total.
//! * §IV-B: different binding trees generally produce different stable
//!   matchings (there are `k^{k−2}` trees by Cayley's formula).

use kmatch_graph::{BindingTree, UnionFind};
use kmatch_gs::{gale_shapley, GsStats, GsWorkspace};
use kmatch_obs::Metrics;
use kmatch_prefs::{GenderId, KPartiteInstance, KPartitePairView, Member};
use kmatch_trace::{span, NoSpans, SpanSink};

use crate::kary::KAryMatching;

/// Result of one run of Algorithm 1.
#[derive(Debug, Clone)]
pub struct BindingOutcome {
    /// The stable k-ary matching (Theorem 2).
    pub matching: KAryMatching,
    /// Per-edge GS statistics, in binding-tree edge order.
    pub per_edge: Vec<GsStats>,
}

impl BindingOutcome {
    /// Total proposals across all bindings — bounded by `(k−1)·n²`
    /// (Theorem 3).
    pub fn total_proposals(&self) -> u64 {
        self.per_edge.iter().map(|s| s.proposals).sum()
    }

    /// Maximum GS rounds over the bindings (the per-edge critical path).
    pub fn max_rounds(&self) -> u32 {
        self.per_edge.iter().map(|s| s.rounds).max().unwrap_or(0)
    }
}

/// Merge binding-edge pair lists — global member ids, as produced by
/// [`Member::global`] — into the k-ary matching they induce: the
/// reflexive–symmetric–transitive closure of "bound into the same tuple",
/// read off a union–find over the `k·n` members. This is the shared
/// epilogue of every binding front-end (serial, parallel, incremental).
pub fn merge_edge_pairs<I>(k: usize, n: usize, pairs: I) -> KAryMatching
where
    I: IntoIterator<Item = (u32, u32)>,
{
    let mut uf = UnionFind::new(k * n);
    for (a, b) in pairs {
        uf.union(a, b);
    }
    KAryMatching::from_classes(k, n, &uf.classes())
}

/// Run `GS(i, j)` for one binding edge and merge its pairs into the
/// union–find over global member ids.
pub(crate) fn bind_edge(
    inst: &KPartiteInstance,
    uf: &mut UnionFind,
    proposer: GenderId,
    responder: GenderId,
) -> GsStats {
    let n = inst.n() as u32;
    let view = KPartitePairView::new(inst, proposer, responder);
    let out = gale_shapley(&view);
    for (m, w) in out.matching.pairs() {
        let a = Member {
            gender: proposer,
            index: m,
        }
        .global(n);
        let b = Member {
            gender: responder,
            index: w,
        }
        .global(n);
        uf.union(a, b);
    }
    out.stats
}

/// Algorithm 1 with instrumentation: bind along `tree`, returning the
/// stable k-ary matching plus per-edge GS statistics.
///
/// # Panics
/// If the tree's gender count differs from the instance's.
pub fn bind_with_stats(inst: &KPartiteInstance, tree: &BindingTree) -> BindingOutcome {
    let (k, n) = (inst.k(), inst.n());
    assert_eq!(tree.k(), k, "binding tree must span the instance's genders");
    let mut uf = UnionFind::new(k * n);
    let per_edge: Vec<GsStats> = tree
        .edges()
        .iter()
        .map(|&(i, j)| bind_edge(inst, &mut uf, GenderId(i), GenderId(j)))
        .collect();
    let classes = uf.classes();
    let matching = KAryMatching::from_classes(k, n, &classes);
    BindingOutcome { matching, per_edge }
}

/// Algorithm 1, matching only.
///
/// ```
/// use kmatch_core::{bind, is_kary_stable};
/// use kmatch_graph::BindingTree;
/// use kmatch_prefs::gen::paper::fig3_tripartite;
///
/// let inst = fig3_tripartite();
/// // The paper's M−W, W−U binding yields (m,w,u), (m',w',u').
/// let tree = BindingTree::new(3, vec![(0, 1), (1, 2)]).unwrap();
/// let matching = bind(&inst, &tree);
/// assert_eq!(matching.to_tuples(), vec![vec![0, 0, 0], vec![1, 1, 1]]);
/// assert!(is_kary_stable(&inst, &matching)); // Theorem 2
/// ```
pub fn bind(inst: &KPartiteInstance, tree: &BindingTree) -> KAryMatching {
    bind_with_stats(inst, tree).matching
}

/// [`bind_with_stats`] with metric hooks: per-binding-edge proposal counts
/// feed [`Metrics::binding_edge`] (the `proposals_per_edge` histogram), and
/// the run ends with one [`Metrics::theorem3_check`] of the total against
/// the paper's `(k−1)·n²` bound — so every metered k-ary run validates
/// Theorem 3 empirically. All bindings solve through one reused
/// [`GsWorkspace`], so the engine-level workspace fresh/reuse counters see
/// `k − 2` reuses per call after the first edge.
///
/// # Panics
/// If the tree's gender count differs from the instance's.
pub fn bind_metered<M: Metrics>(
    inst: &KPartiteInstance,
    tree: &BindingTree,
    metrics: &mut M,
) -> BindingOutcome {
    bind_spanned(inst, tree, metrics, &mut NoSpans)
}

/// [`bind_metered`] that additionally emits a span timeline: one
/// `bind.edge` span per binding edge (arg = edge index in tree order),
/// each enclosing the edge's `gs.solve`/`gs.round` spans — the timeline
/// form of Theorem 3's per-edge decomposition. With
/// [`kmatch_trace::NoSpans`] this monomorphizes to exactly
/// [`bind_metered`].
///
/// # Panics
/// If the tree's gender count differs from the instance's.
pub fn bind_spanned<M: Metrics, S: SpanSink>(
    inst: &KPartiteInstance,
    tree: &BindingTree,
    metrics: &mut M,
    spans: &mut S,
) -> BindingOutcome {
    let (k, n) = (inst.k(), inst.n());
    assert_eq!(tree.k(), k, "binding tree must span the instance's genders");
    let mut uf = UnionFind::new(k * n);
    let mut ws = GsWorkspace::new();
    let per_edge: Vec<GsStats> = tree
        .edges()
        .iter()
        .enumerate()
        .map(|(e, &(i, j))| {
            let view = KPartitePairView::new(inst, GenderId(i), GenderId(j));
            spans.begin(span::BIND_EDGE, e as u64);
            let out = ws.solve_spanned(&view, metrics, spans);
            for (m, w) in out.matching.pairs() {
                let a = Member {
                    gender: GenderId(i),
                    index: m,
                }
                .global(n as u32);
                let b = Member {
                    gender: GenderId(j),
                    index: w,
                }
                .global(n as u32);
                uf.union(a, b);
            }
            metrics.binding_edge(out.stats.proposals);
            spans.end(span::BIND_EDGE);
            out.stats
        })
        .collect();
    let outcome = BindingOutcome {
        matching: KAryMatching::from_classes(k, n, &uf.classes()),
        per_edge,
    };
    let bound = ((k - 1) * n * n) as u64;
    metrics.theorem3_check(outcome.total_proposals(), bound);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::is_kary_stable;
    use kmatch_graph::prufer::{all_trees, random_tree};
    use kmatch_prefs::gen::paper::fig3_tripartite;
    use kmatch_prefs::gen::uniform::uniform_kpartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fig3_mw_wu_binding_matches_paper() {
        // "Assume that the binding process is M−W and W−U. The former binds
        // m with w (and m' with w'), and the latter binds w with u (and w'
        // and u') to form ternary matchings (m,w,u) and (m',w',u')."
        let inst = fig3_tripartite();
        let tree = BindingTree::new(3, vec![(0, 1), (1, 2)]).unwrap();
        let m = bind(&inst, &tree);
        assert_eq!(m.to_tuples(), vec![vec![0, 0, 0], vec![1, 1, 1]]);
    }

    #[test]
    fn fig3_alternative_trees_match_section_4b() {
        let inst = fig3_tripartite();
        // "bindings M−U and U−W will generate a stable matching of
        // (m,w',u') and (m',w,u)"
        let tree = BindingTree::new(3, vec![(0, 2), (2, 1)]).unwrap();
        let m = bind(&inst, &tree);
        assert_eq!(m.to_tuples(), vec![vec![0, 1, 1], vec![1, 0, 0]]);
        // "while bindings M−U and M−W will generate a stable matching of
        // (m,w,u') and (m',w',u)"
        let tree = BindingTree::new(3, vec![(0, 2), (0, 1)]).unwrap();
        let m = bind(&inst, &tree);
        assert_eq!(m.to_tuples(), vec![vec![0, 0, 1], vec![1, 1, 0]]);
    }

    #[test]
    fn theorem2_stable_for_every_tree_small() {
        // Every one of the 3 binding trees on 3 genders (and all 16 on 4)
        // must give a stable matching.
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for k in [3usize, 4] {
            let inst = uniform_kpartite(k, 3, &mut rng);
            for tree in all_trees(k, 50) {
                let m = bind(&inst, &tree);
                assert!(is_kary_stable(&inst, &m), "unstable for tree {tree}");
            }
        }
    }

    #[test]
    fn theorem3_proposal_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        for (k, n) in [(3usize, 8usize), (5, 16), (8, 10)] {
            let inst = uniform_kpartite(k, n, &mut rng);
            let tree = random_tree(k, &mut rng);
            let out = bind_with_stats(&inst, &tree);
            let bound = ((k - 1) * n * n) as u64;
            assert!(
                out.total_proposals() <= bound,
                "(k-1)n² = {bound} exceeded: {}",
                out.total_proposals()
            );
            assert!(
                out.total_proposals() >= ((k - 1) * n) as u64,
                "at least n per binding"
            );
        }
    }

    #[test]
    fn metered_binding_matches_plain_and_checks_theorem3() {
        use kmatch_obs::SolverMetrics;
        let mut rng = ChaCha8Rng::seed_from_u64(27);
        let mut m = SolverMetrics::new();
        for (k, n) in [(3usize, 8usize), (5, 12)] {
            let inst = uniform_kpartite(k, n, &mut rng);
            let tree = random_tree(k, &mut rng);
            let plain = bind_with_stats(&inst, &tree);
            let before = m.theorem3_checks;
            let metered = bind_metered(&inst, &tree, &mut m);
            assert_eq!(plain.matching.to_tuples(), metered.matching.to_tuples());
            assert_eq!(plain.per_edge, metered.per_edge);
            assert_eq!(m.theorem3_checks, before + 1);
            assert_eq!(m.theorem3_violations, 0, "Theorem 3 must hold");
        }
        // One histogram sample per binding edge: (3−1) + (5−1).
        assert_eq!(m.binding_edges, 6);
        assert_eq!(m.proposals_per_edge.count(), 6);
        assert_eq!(
            m.proposals,
            m.proposals_per_edge.sum(),
            "k-ary proposals all flow through binding edges"
        );
    }

    #[test]
    fn matching_is_perfect_partition() {
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let inst = uniform_kpartite(5, 12, &mut rng);
        let tree = BindingTree::path(5);
        let m = bind(&inst, &tree);
        // KAryMatching::from_classes already asserts the partition
        // property; double-check family count and membership here.
        assert_eq!(m.n(), 12);
        for f in m.family_ids() {
            assert_eq!(m.family(f).len(), 5);
        }
    }

    #[test]
    fn orientation_changes_outcome_not_stability() {
        // Reversing edge orientations flips proposer-optimality per edge:
        // possibly a different matching, always stable.
        let mut rng = ChaCha8Rng::seed_from_u64(26);
        let inst = uniform_kpartite(4, 6, &mut rng);
        let tree = BindingTree::path(4);
        let fwd = bind(&inst, &tree);
        let rev = bind(&inst, &tree.reversed());
        assert!(is_kary_stable(&inst, &fwd));
        assert!(is_kary_stable(&inst, &rev));
    }
}
