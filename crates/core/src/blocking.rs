//! Blocking-family search: the k-ary stability verifier.
//!
//! §II-C: "A k-tuple is called a blocking family if each member in the
//! family strictly prefers each member of that family to the each member of
//! his or her current family", refined in §IV-A: members coming from the
//! same existing family form a *same-family group* and "there is no need to
//! compare members from the same-family group".
//!
//! Formally, a candidate tuple `C = (c_0, …, c_{k−1})` blocks matching `M`
//! iff its members span at least two current families and, for every
//! ordered pair of genders `(g, h)` with `family(c_g) ≠ family(c_h)`,
//! member `c_g` strictly prefers `c_h` to the gender-`h` member of its own
//! current family.
//!
//! The search is a DFS over genders that exploits the fact that the
//! condition is **pairwise**: as soon as two chosen members violate it the
//! whole subtree is pruned. Worst case `O(n^k)` (the problem is a complete
//! `k`-partite constraint search) but heavily pruned in practice — stable
//! matchings reject most pairs immediately.
//!
//! Three verifiers share the same semantics and are cross-validated against
//! each other:
//!
//! * [`find_blocking_family`] — the pairwise-pruned DFS (reference).
//! * [`find_blocking_family_bitset`] — the production verifier: the
//!   acceptance relation is precomputed into per-member bitsets
//!   ("strictly better than my current partner, or same family"), so the
//!   DFS maintains one candidate bitset per remaining gender and prunes a
//!   whole subtree with a single word test. Used by [`is_kary_stable`].
//! * [`find_blocking_family_naive`] — exhaustive `n^k` ground truth.

use kmatch_prefs::{GenderId, KPartiteInstance, Member};

use crate::kary::KAryMatching;

/// A witness of k-ary instability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingFamily {
    /// The blocking tuple: `members[g]` is the gender-`g` member.
    pub members: Vec<u32>,
    /// The distinct current families the members come from (the paper's
    /// `k′`, with `2 ≤ k′ ≤ k`).
    pub source_families: Vec<u32>,
}

/// Does `a` accept `b` as the gender-`h` member of a prospective family,
/// given the current matching? True when they are already in the same
/// family (same-family group — no comparison needed) or when `a` strictly
/// prefers `b` to its current gender-`h` partner.
#[inline]
fn accepts(inst: &KPartiteInstance, matching: &KAryMatching, a: Member, b: Member) -> bool {
    if matching.family_of(a) == matching.family_of(b) {
        return true;
    }
    let current = matching.current_partner(a, b.gender);
    inst.rank_of(a, b.gender, b.index) < inst.rank_of(a, b.gender, current.index)
}

/// Find a blocking family of `matching`, or `None` if it is stable.
///
/// Deterministic: the DFS explores genders in ascending order and members
/// in index order, so the lexicographically-least blocking tuple is
/// returned.
pub fn find_blocking_family(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
) -> Option<BlockingFamily> {
    let k = inst.k();
    let n = inst.n();
    assert_eq!(
        matching.k(),
        k,
        "matching arity must equal instance genders"
    );
    assert_eq!(matching.n(), n, "matching size must equal instance size");
    let mut chosen: Vec<u32> = Vec::with_capacity(k);
    if dfs(inst, matching, &mut chosen) {
        let members = chosen;
        let mut source_families: Vec<u32> = members
            .iter()
            .enumerate()
            .map(|(g, &i)| matching.family_of(Member::new(g, i)))
            .collect();
        source_families.sort_unstable();
        source_families.dedup();
        return Some(BlockingFamily {
            members,
            source_families,
        });
    }
    None
}

fn dfs(inst: &KPartiteInstance, matching: &KAryMatching, chosen: &mut Vec<u32>) -> bool {
    let k = inst.k();
    let g = chosen.len();
    if g == k {
        // Complete tuple: blocking iff it spans ≥ 2 families (a tuple equal
        // to an existing family trivially "accepts" itself but blocks
        // nothing).
        let first = matching.family_of(Member::new(0usize, chosen[0]));
        return chosen
            .iter()
            .enumerate()
            .any(|(h, &i)| matching.family_of(Member::new(h, i)) != first);
    }
    'candidates: for i in 0..inst.n() as u32 {
        let cand = Member::new(g, i);
        // Pairwise feasibility against every already-chosen member.
        for (h, &j) in chosen.iter().enumerate() {
            let prev = Member::new(h, j);
            if !accepts(inst, matching, prev, cand) || !accepts(inst, matching, cand, prev) {
                continue 'candidates;
            }
        }
        chosen.push(i);
        if dfs(inst, matching, chosen) {
            return true;
        }
        chosen.pop();
    }
    false
}

/// Is the k-ary matching stable (free of blocking families)?
pub fn is_kary_stable(inst: &KPartiteInstance, matching: &KAryMatching) -> bool {
    find_blocking_family_bitset(inst, matching).is_none()
}

/// Bitset-accelerated blocking-family search. Returns exactly the result
/// of [`find_blocking_family`] (the same lexicographically-least tuple).
///
/// Two precomputed tables drive the search:
///
/// 1. **Acceptance bitsets** — for every member `a` and foreign gender
///    `h`, bit `j` records `accepts(a, (h, j))`: one pass over the rank
///    tables, after which no rank is ever read again.
/// 2. **Mutual bitsets** — the intersection of each acceptance bit with
///    its reverse (`accepts((h, j), a)`), so pairwise feasibility of a
///    candidate against a chosen member is a single AND of words.
///
/// The DFS keeps, per remaining gender, the bitset of candidates
/// compatible with everything chosen so far; extending the tuple is
/// `words` ANDs per gender, candidates come out of `trailing_zeros` in
/// ascending order (preserving the lexicographic-least guarantee), and an
/// emptied gender kills the subtree on the spot — the word test that
/// replaces the reference verifier's per-pair rank comparisons.
pub fn find_blocking_family_bitset(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
) -> Option<BlockingFamily> {
    let k = inst.k();
    let n = inst.n();
    assert_eq!(
        matching.k(),
        k,
        "matching arity must equal instance genders"
    );
    assert_eq!(matching.n(), n, "matching size must equal instance size");
    let words = n.div_ceil(64);
    // Row of member (g, i)'s bitset over gender h (self rows unused).
    let row = |g: usize, i: u32, h: usize| ((g * n + i as usize) * k + h) * words;

    // Pass 1: forward acceptance.
    let mut accept = vec![0u64; k * n * k * words];
    for g in 0..k {
        for i in 0..n as u32 {
            let a = Member::new(g, i);
            let fam_a = matching.family_of(a);
            for h in (0..k).filter(|&h| h != g) {
                let hg = GenderId::from(h);
                let cur = matching.current_partner(a, hg);
                let cur_rank = inst.rank_of(a, hg, cur.index);
                let r = row(g, i, h);
                for j in 0..n as u32 {
                    let ok = inst.rank_of(a, hg, j) < cur_rank
                        || matching.family_of(Member::new(h, j)) == fam_a;
                    if ok {
                        accept[r + j as usize / 64] |= 1u64 << (j % 64);
                    }
                }
            }
        }
    }

    // Pass 2: intersect with the reverse direction.
    let mut mutual = accept.clone();
    for g in 0..k {
        for i in 0..n as u32 {
            for h in (0..k).filter(|&h| h != g) {
                let r = row(g, i, h);
                for j in 0..n as u32 {
                    let back = row(h, j, g) + i as usize / 64;
                    if accept[back] >> (i % 64) & 1 == 0 {
                        mutual[r + j as usize / 64] &= !(1u64 << (j % 64));
                    }
                }
            }
        }
    }

    let mut search = BitsetSearch {
        k,
        n,
        words,
        mutual: &mutual,
        matching,
        // feasible[(d * k + h) * words ..]: candidates of gender h
        // compatible with the first d chosen members.
        feasible: vec![0u64; (k + 1) * k * words],
        chosen: vec![0u32; k],
    };
    let tail = if n.is_multiple_of(64) {
        !0u64
    } else {
        (1u64 << (n % 64)) - 1
    };
    for h in 0..k {
        for w in 0..words {
            search.feasible[h * words + w] = if w + 1 == words { tail } else { !0 };
        }
    }
    if !search.dfs(0) {
        return None;
    }
    let members = search.chosen;
    let mut source_families: Vec<u32> = members
        .iter()
        .enumerate()
        .map(|(g, &i)| matching.family_of(Member::new(g, i)))
        .collect();
    source_families.sort_unstable();
    source_families.dedup();
    Some(BlockingFamily {
        members,
        source_families,
    })
}

struct BitsetSearch<'a> {
    k: usize,
    n: usize,
    words: usize,
    mutual: &'a [u64],
    matching: &'a KAryMatching,
    feasible: Vec<u64>,
    chosen: Vec<u32>,
}

impl BitsetSearch<'_> {
    fn dfs(&mut self, d: usize) -> bool {
        if d == self.k {
            // Complete tuple: blocking iff it spans ≥ 2 families.
            let first = self.matching.family_of(Member::new(0usize, self.chosen[0]));
            return self
                .chosen
                .iter()
                .enumerate()
                .any(|(h, &i)| self.matching.family_of(Member::new(h, i)) != first);
        }
        for w in 0..self.words {
            let mut bits = self.feasible[(d * self.k + d) * self.words + w];
            while bits != 0 {
                let i = (w * 64) as u32 + bits.trailing_zeros();
                bits &= bits - 1;
                self.chosen[d] = i;
                // Narrow every remaining gender by this candidate's mutual
                // bitset; an emptied gender prunes the subtree outright.
                let mut alive = true;
                for h in (d + 1)..self.k {
                    let src = (d * self.k + h) * self.words;
                    let dst = ((d + 1) * self.k + h) * self.words;
                    let m = ((d * self.n + i as usize) * self.k + h) * self.words;
                    let mut any = 0u64;
                    for t in 0..self.words {
                        let v = self.feasible[src + t] & self.mutual[m + t];
                        self.feasible[dst + t] = v;
                        any |= v;
                    }
                    if any == 0 {
                        alive = false;
                        break;
                    }
                }
                if alive && self.dfs(d + 1) {
                    return true;
                }
            }
        }
        false
    }
}

/// Ground-truth verifier: enumerate every one of the `n^k` candidate
/// tuples with no pruning and test the §II-C/§IV-A condition directly.
/// Exponential — small instances only; used to cross-validate the pruned
/// DFS in tests and property tests.
pub fn find_blocking_family_naive(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
) -> Option<BlockingFamily> {
    let k = inst.k();
    let n = inst.n();
    let mut tuple = vec![0u32; k];
    loop {
        let members: Vec<Member> = tuple
            .iter()
            .enumerate()
            .map(|(g, &i)| Member::new(g, i))
            .collect();
        let spans = members
            .iter()
            .any(|&m| matching.family_of(m) != matching.family_of(members[0]));
        if spans {
            let ok = members.iter().all(|&a| {
                members
                    .iter()
                    .filter(|&&b| b.gender != a.gender)
                    .all(|&b| accepts(inst, matching, a, b))
            });
            if ok {
                let mut source_families: Vec<u32> =
                    members.iter().map(|&m| matching.family_of(m)).collect();
                source_families.sort_unstable();
                source_families.dedup();
                return Some(BlockingFamily {
                    members: tuple,
                    source_families,
                });
            }
        }
        // Odometer advance.
        let mut pos = 0;
        loop {
            if pos == k {
                return None;
            }
            tuple[pos] += 1;
            if (tuple[pos] as usize) < n {
                break;
            }
            tuple[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_prefs::gen::paper::fig3_tripartite;

    fn matching(tuples: &[Vec<u32>]) -> KAryMatching {
        KAryMatching::from_tuples(3, 2, tuples)
    }

    #[test]
    fn fig3_binding_result_is_stable() {
        // Families (m,w,u), (m',w',u') — the M−W, W−U binding outcome.
        let inst = fig3_tripartite();
        let m = matching(&[vec![0, 0, 0], vec![1, 1, 1]]);
        assert!(is_kary_stable(&inst, &m));
    }

    #[test]
    fn fig3_alternative_bindings_also_stable() {
        // §IV-B: (m,w',u'),(m',w,u) and (m,w,u'),(m',w',u) are the
        // outcomes of other binding trees — all stable.
        let inst = fig3_tripartite();
        assert!(is_kary_stable(
            &inst,
            &matching(&[vec![0, 1, 1], vec![1, 0, 0]])
        ));
        assert!(is_kary_stable(
            &inst,
            &matching(&[vec![0, 0, 1], vec![1, 1, 0]])
        ));
    }

    #[test]
    fn detects_paper_style_blocking_family() {
        // §II-C's example shape: families (m,w,u), (m',w',u') where m
        // prefers w', u' and both prefer m — build such an instance.
        // m: w' > w, u' > u;  w': m > m';  u': m > m'; rest arbitrary.
        let lists = vec![
            vec![
                vec![vec![], vec![1, 0], vec![1, 0]], // m : w' > w, u' > u
                vec![vec![], vec![1, 0], vec![1, 0]], // m': w' > w, u' > u
            ],
            vec![
                vec![vec![0, 1], vec![], vec![0, 1]], // w : m > m'
                vec![vec![0, 1], vec![], vec![0, 1]], // w': m > m'
            ],
            vec![
                vec![vec![0, 1], vec![0, 1], vec![]], // u : m > m'
                vec![vec![0, 1], vec![0, 1], vec![]], // u': m > m'
            ],
        ];
        let inst = kmatch_prefs::KPartiteInstance::from_lists(&lists).unwrap();
        let m = matching(&[vec![0, 0, 0], vec![1, 1, 1]]);
        let bf = find_blocking_family(&inst, &m).expect("(m, w', u') blocks");
        assert_eq!(bf.members, vec![0, 1, 1], "m with w' and u'");
        assert_eq!(bf.source_families, vec![0, 1], "drawn from two families");
    }

    #[test]
    fn tuple_equal_to_existing_family_never_blocks() {
        let inst = fig3_tripartite();
        let m = matching(&[vec![0, 0, 0], vec![1, 1, 1]]);
        // Even on an unstable-ish instance the existing family (0,0,0)
        // itself must not be reported; verified implicitly by stability
        // above, and directly by the k' >= 2 rule here.
        assert!(find_blocking_family(&inst, &m)
            .map(|bf| bf.source_families.len() >= 2)
            .unwrap_or(true));
    }

    #[test]
    fn dfs_agrees_with_naive_enumeration() {
        use kmatch_graph::prufer::random_tree;
        use kmatch_prefs::gen::uniform::uniform_kpartite;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;
        for seed in 0..30u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let inst = uniform_kpartite(3, 3, &mut rng);
            // Stable matchings (from binding) AND arbitrary matchings
            // (cyclic-shift families) must both be decided identically.
            let stable = crate::binding::bind(&inst, &random_tree(3, &mut rng));
            let arbitrary =
                KAryMatching::from_tuples(3, 3, &[vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]]);
            for m in [&stable, &arbitrary] {
                let dfs = find_blocking_family(&inst, m);
                let naive = find_blocking_family_naive(&inst, m);
                assert_eq!(dfs.is_some(), naive.is_some(), "seed {seed}");
            }
        }
    }

    #[test]
    fn bitset_agrees_with_dfs_and_naive() {
        use kmatch_graph::prufer::random_tree;
        use kmatch_prefs::gen::uniform::uniform_kpartite;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;
        for seed in 0..30u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(1000 + seed);
            let inst = uniform_kpartite(3, 4, &mut rng);
            let stable = crate::binding::bind(&inst, &random_tree(3, &mut rng));
            let arbitrary = KAryMatching::from_tuples(
                3,
                4,
                &[
                    vec![0, 1, 2],
                    vec![1, 2, 3],
                    vec![2, 3, 0],
                    vec![3, 0, 1],
                ],
            );
            for m in [&stable, &arbitrary] {
                let dfs = find_blocking_family(&inst, m);
                let bitset = find_blocking_family_bitset(&inst, m);
                // Exact equality: both searches are lexicographic.
                assert_eq!(bitset, dfs, "seed {seed}");
                let naive = find_blocking_family_naive(&inst, m);
                assert_eq!(bitset.is_some(), naive.is_some(), "seed {seed}");
            }
        }
    }

    #[test]
    fn bitset_handles_multiword_instances() {
        // n > 64 exercises the multi-word bitset rows.
        use kmatch_graph::prufer::random_tree;
        use kmatch_prefs::gen::uniform::uniform_kpartite;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let inst = uniform_kpartite(3, 70, &mut rng);
        let stable = crate::binding::bind(&inst, &random_tree(3, &mut rng));
        assert_eq!(
            find_blocking_family_bitset(&inst, &stable),
            find_blocking_family(&inst, &stable)
        );
        // A deliberately shuffled matching on the same instance.
        let tuples: Vec<Vec<u32>> = (0..70u32)
            .map(|f| vec![f, (f + 1) % 70, (f + 2) % 70])
            .collect();
        let shuffled = KAryMatching::from_tuples(3, 70, &tuples);
        assert_eq!(
            find_blocking_family_bitset(&inst, &shuffled),
            find_blocking_family(&inst, &shuffled)
        );
    }

    #[test]
    fn bitset_respects_same_family_exemption_and_k_prime() {
        let inst = fig3_tripartite();
        let m = matching(&[vec![0, 0, 0], vec![1, 1, 1]]);
        assert!(find_blocking_family_bitset(&inst, &m).is_none());
    }

    #[test]
    fn same_family_group_members_not_compared() {
        // Construct a matching where a blocking family takes TWO members
        // from one family; those two must not be required to prefer each
        // other. k = 3, n = 2:
        //   families F0 = (m, w, u), F1 = (m', w', u').
        //   Candidate C = (m, w, u'): m,w from F0 (same group), u' from F1.
        //   Required: m prefers u' over u; w prefers u' over u;
        //             u' prefers m over m' and w over w'.
        //   NOT required: anything between m and w.
        let lists = vec![
            vec![
                vec![vec![], vec![1, 0], vec![1, 0]], // m : w' > w (!), u' > u
                vec![vec![], vec![1, 0], vec![0, 1]], // m'
            ],
            vec![
                vec![vec![1, 0], vec![], vec![1, 0]], // w : m' > m (!), u' > u
                vec![vec![0, 1], vec![], vec![0, 1]], // w'
            ],
            vec![
                vec![vec![0, 1], vec![0, 1], vec![]], // u
                vec![vec![0, 1], vec![0, 1], vec![]], // u': m > m', w > w'
            ],
        ];
        let inst = kmatch_prefs::KPartiteInstance::from_lists(&lists).unwrap();
        let m = matching(&[vec![0, 0, 0], vec![1, 1, 1]]);
        // m ranks w LAST among women and w ranks m last among men — yet
        // (m, w, u') must still block because they are in the same family.
        let bf = find_blocking_family(&inst, &m).expect("same-group exemption applies");
        assert_eq!(bf.members, vec![0, 0, 1]);
    }
}
