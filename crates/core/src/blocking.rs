//! Blocking-family search: the k-ary stability verifier.
//!
//! §II-C: "A k-tuple is called a blocking family if each member in the
//! family strictly prefers each member of that family to the each member of
//! his or her current family", refined in §IV-A: members coming from the
//! same existing family form a *same-family group* and "there is no need to
//! compare members from the same-family group".
//!
//! Formally, a candidate tuple `C = (c_0, …, c_{k−1})` blocks matching `M`
//! iff its members span at least two current families and, for every
//! ordered pair of genders `(g, h)` with `family(c_g) ≠ family(c_h)`,
//! member `c_g` strictly prefers `c_h` to the gender-`h` member of its own
//! current family.
//!
//! The search is a DFS over genders that exploits the fact that the
//! condition is **pairwise**: as soon as two chosen members violate it the
//! whole subtree is pruned. Worst case `O(n^k)` (the problem is a complete
//! `k`-partite constraint search) but heavily pruned in practice — stable
//! matchings reject most pairs immediately.

use kmatch_prefs::{KPartiteInstance, Member};

use crate::kary::KAryMatching;

/// A witness of k-ary instability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingFamily {
    /// The blocking tuple: `members[g]` is the gender-`g` member.
    pub members: Vec<u32>,
    /// The distinct current families the members come from (the paper's
    /// `k′`, with `2 ≤ k′ ≤ k`).
    pub source_families: Vec<u32>,
}

/// Does `a` accept `b` as the gender-`h` member of a prospective family,
/// given the current matching? True when they are already in the same
/// family (same-family group — no comparison needed) or when `a` strictly
/// prefers `b` to its current gender-`h` partner.
#[inline]
fn accepts(inst: &KPartiteInstance, matching: &KAryMatching, a: Member, b: Member) -> bool {
    if matching.family_of(a) == matching.family_of(b) {
        return true;
    }
    let current = matching.current_partner(a, b.gender);
    inst.rank_of(a, b.gender, b.index) < inst.rank_of(a, b.gender, current.index)
}

/// Find a blocking family of `matching`, or `None` if it is stable.
///
/// Deterministic: the DFS explores genders in ascending order and members
/// in index order, so the lexicographically-least blocking tuple is
/// returned.
pub fn find_blocking_family(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
) -> Option<BlockingFamily> {
    let k = inst.k();
    let n = inst.n();
    assert_eq!(
        matching.k(),
        k,
        "matching arity must equal instance genders"
    );
    assert_eq!(matching.n(), n, "matching size must equal instance size");
    let mut chosen: Vec<u32> = Vec::with_capacity(k);
    if dfs(inst, matching, &mut chosen) {
        let members = chosen;
        let mut source_families: Vec<u32> = members
            .iter()
            .enumerate()
            .map(|(g, &i)| matching.family_of(Member::new(g, i)))
            .collect();
        source_families.sort_unstable();
        source_families.dedup();
        return Some(BlockingFamily {
            members,
            source_families,
        });
    }
    None
}

fn dfs(inst: &KPartiteInstance, matching: &KAryMatching, chosen: &mut Vec<u32>) -> bool {
    let k = inst.k();
    let g = chosen.len();
    if g == k {
        // Complete tuple: blocking iff it spans ≥ 2 families (a tuple equal
        // to an existing family trivially "accepts" itself but blocks
        // nothing).
        let first = matching.family_of(Member::new(0usize, chosen[0]));
        return chosen
            .iter()
            .enumerate()
            .any(|(h, &i)| matching.family_of(Member::new(h, i)) != first);
    }
    'candidates: for i in 0..inst.n() as u32 {
        let cand = Member::new(g, i);
        // Pairwise feasibility against every already-chosen member.
        for (h, &j) in chosen.iter().enumerate() {
            let prev = Member::new(h, j);
            if !accepts(inst, matching, prev, cand) || !accepts(inst, matching, cand, prev) {
                continue 'candidates;
            }
        }
        chosen.push(i);
        if dfs(inst, matching, chosen) {
            return true;
        }
        chosen.pop();
    }
    false
}

/// Is the k-ary matching stable (free of blocking families)?
pub fn is_kary_stable(inst: &KPartiteInstance, matching: &KAryMatching) -> bool {
    find_blocking_family(inst, matching).is_none()
}

/// Ground-truth verifier: enumerate every one of the `n^k` candidate
/// tuples with no pruning and test the §II-C/§IV-A condition directly.
/// Exponential — small instances only; used to cross-validate the pruned
/// DFS in tests and property tests.
pub fn find_blocking_family_naive(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
) -> Option<BlockingFamily> {
    let k = inst.k();
    let n = inst.n();
    let mut tuple = vec![0u32; k];
    loop {
        let members: Vec<Member> = tuple
            .iter()
            .enumerate()
            .map(|(g, &i)| Member::new(g, i))
            .collect();
        let spans = members
            .iter()
            .any(|&m| matching.family_of(m) != matching.family_of(members[0]));
        if spans {
            let ok = members.iter().all(|&a| {
                members
                    .iter()
                    .filter(|&&b| b.gender != a.gender)
                    .all(|&b| accepts(inst, matching, a, b))
            });
            if ok {
                let mut source_families: Vec<u32> =
                    members.iter().map(|&m| matching.family_of(m)).collect();
                source_families.sort_unstable();
                source_families.dedup();
                return Some(BlockingFamily {
                    members: tuple,
                    source_families,
                });
            }
        }
        // Odometer advance.
        let mut pos = 0;
        loop {
            if pos == k {
                return None;
            }
            tuple[pos] += 1;
            if (tuple[pos] as usize) < n {
                break;
            }
            tuple[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_prefs::gen::paper::fig3_tripartite;

    fn matching(tuples: &[Vec<u32>]) -> KAryMatching {
        KAryMatching::from_tuples(3, 2, tuples)
    }

    #[test]
    fn fig3_binding_result_is_stable() {
        // Families (m,w,u), (m',w',u') — the M−W, W−U binding outcome.
        let inst = fig3_tripartite();
        let m = matching(&[vec![0, 0, 0], vec![1, 1, 1]]);
        assert!(is_kary_stable(&inst, &m));
    }

    #[test]
    fn fig3_alternative_bindings_also_stable() {
        // §IV-B: (m,w',u'),(m',w,u) and (m,w,u'),(m',w',u) are the
        // outcomes of other binding trees — all stable.
        let inst = fig3_tripartite();
        assert!(is_kary_stable(
            &inst,
            &matching(&[vec![0, 1, 1], vec![1, 0, 0]])
        ));
        assert!(is_kary_stable(
            &inst,
            &matching(&[vec![0, 0, 1], vec![1, 1, 0]])
        ));
    }

    #[test]
    fn detects_paper_style_blocking_family() {
        // §II-C's example shape: families (m,w,u), (m',w',u') where m
        // prefers w', u' and both prefer m — build such an instance.
        // m: w' > w, u' > u;  w': m > m';  u': m > m'; rest arbitrary.
        let lists = vec![
            vec![
                vec![vec![], vec![1, 0], vec![1, 0]], // m : w' > w, u' > u
                vec![vec![], vec![1, 0], vec![1, 0]], // m': w' > w, u' > u
            ],
            vec![
                vec![vec![0, 1], vec![], vec![0, 1]], // w : m > m'
                vec![vec![0, 1], vec![], vec![0, 1]], // w': m > m'
            ],
            vec![
                vec![vec![0, 1], vec![0, 1], vec![]], // u : m > m'
                vec![vec![0, 1], vec![0, 1], vec![]], // u': m > m'
            ],
        ];
        let inst = kmatch_prefs::KPartiteInstance::from_lists(&lists).unwrap();
        let m = matching(&[vec![0, 0, 0], vec![1, 1, 1]]);
        let bf = find_blocking_family(&inst, &m).expect("(m, w', u') blocks");
        assert_eq!(bf.members, vec![0, 1, 1], "m with w' and u'");
        assert_eq!(bf.source_families, vec![0, 1], "drawn from two families");
    }

    #[test]
    fn tuple_equal_to_existing_family_never_blocks() {
        let inst = fig3_tripartite();
        let m = matching(&[vec![0, 0, 0], vec![1, 1, 1]]);
        // Even on an unstable-ish instance the existing family (0,0,0)
        // itself must not be reported; verified implicitly by stability
        // above, and directly by the k' >= 2 rule here.
        assert!(find_blocking_family(&inst, &m)
            .map(|bf| bf.source_families.len() >= 2)
            .unwrap_or(true));
    }

    #[test]
    fn dfs_agrees_with_naive_enumeration() {
        use kmatch_graph::prufer::random_tree;
        use kmatch_prefs::gen::uniform::uniform_kpartite;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;
        for seed in 0..30u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let inst = uniform_kpartite(3, 3, &mut rng);
            // Stable matchings (from binding) AND arbitrary matchings
            // (cyclic-shift families) must both be decided identically.
            let stable = crate::binding::bind(&inst, &random_tree(3, &mut rng));
            let arbitrary =
                KAryMatching::from_tuples(3, 3, &[vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]]);
            for m in [&stable, &arbitrary] {
                let dfs = find_blocking_family(&inst, m);
                let naive = find_blocking_family_naive(&inst, m);
                assert_eq!(dfs.is_some(), naive.is_some(), "seed {seed}");
            }
        }
    }

    #[test]
    fn same_family_group_members_not_compared() {
        // Construct a matching where a blocking family takes TWO members
        // from one family; those two must not be required to prefer each
        // other. k = 3, n = 2:
        //   families F0 = (m, w, u), F1 = (m', w', u').
        //   Candidate C = (m, w, u'): m,w from F0 (same group), u' from F1.
        //   Required: m prefers u' over u; w prefers u' over u;
        //             u' prefers m over m' and w over w'.
        //   NOT required: anything between m and w.
        let lists = vec![
            vec![
                vec![vec![], vec![1, 0], vec![1, 0]], // m : w' > w (!), u' > u
                vec![vec![], vec![1, 0], vec![0, 1]], // m'
            ],
            vec![
                vec![vec![1, 0], vec![], vec![1, 0]], // w : m' > m (!), u' > u
                vec![vec![0, 1], vec![], vec![0, 1]], // w'
            ],
            vec![
                vec![vec![0, 1], vec![0, 1], vec![]], // u
                vec![vec![0, 1], vec![0, 1], vec![]], // u': m > m', w > w'
            ],
        ];
        let inst = kmatch_prefs::KPartiteInstance::from_lists(&lists).unwrap();
        let m = matching(&[vec![0, 0, 0], vec![1, 1, 1]]);
        // m ranks w LAST among women and w ranks m last among men — yet
        // (m, w, u') must still block because they are in the same family.
        let bf = find_blocking_family(&inst, &m).expect("same-group exemption applies");
        assert_eq!(bf.members, vec![0, 0, 1]);
    }
}
