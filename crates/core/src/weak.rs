//! §IV-D: the weakened blocking condition and Algorithm 2.
//!
//! Under a strict **gender priority order**, a blocking family's members
//! partition into same-family groups, and each group has a *lead member* —
//! the one whose gender has the highest priority in the group. The
//! *weakened* blocking family drops the preference requirements between
//! cross-group **non-lead pairs**: a cross-group pair must mutually prefer
//! each other only when at least one of the two is a lead (leads must
//! prefer every cross-group member; every member must prefer cross-group
//! leads). Fewer constraints than §II-C's full condition ⇒ blocking is
//! easier ⇒ stability is a **stronger** property ("which makes k-ary
//! stable matching harder").
//!
//! *Interpretation note* (recorded in DESIGN.md): the paper's phrasing —
//! 'the condition "each member" is replaced by "lead member of the
//! corresponding families"' — is ambiguous about whether the replacement
//! applies to the subjects, the objects, or both. Reading it as
//! subjects-only ("only leads need to prefer, against every cross-group
//! member") makes Theorem 5 empirically **false** (random bitonic-tree
//! bindings then admit weakened blocking families). The reading that makes
//! the paper's own proof of Theorem 5 go through — the proof needs both
//! directions of preference across the tree edge between a lead and a
//! higher-priority cross-group gender — is the one implemented here.
//!
//! Arbitrary binding trees no longer suffice (Fig. 5a); trees that are
//! **bitonic** in the priority labels do (Theorem 5). **Algorithm 2** grows
//! a bitonic tree by attaching the remaining genders in decreasing
//! priority, each to any node already in the tree — `(k−1)!` possible trees
//! (Fig. 6).

use kmatch_graph::{is_bitonic_sequence, BindingTree, UnionFind};
use kmatch_gs::GsStats;
use kmatch_prefs::{GenderId, KPartiteInstance, Member};

use crate::binding::bind_edge;
use crate::blocking::BlockingFamily;
use crate::kary::KAryMatching;

/// A strict priority order over genders.
///
/// `priority[g]` is the priority value of gender `g`; higher wins. The
/// paper's convention (gender id = priority) is [`GenderPriorities::by_id`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenderPriorities {
    priority: Vec<u32>,
}

impl GenderPriorities {
    /// Paper convention: gender `g` has priority `g`.
    pub fn by_id(k: usize) -> Self {
        GenderPriorities {
            priority: (0..k as u32).collect(),
        }
    }

    /// Explicit priorities; must be distinct.
    pub fn new(priority: Vec<u32>) -> Self {
        let mut sorted = priority.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), priority.len(), "priorities must be distinct");
        GenderPriorities { priority }
    }

    /// Number of genders.
    pub fn k(&self) -> usize {
        self.priority.len()
    }

    /// Priority of gender `g`.
    #[inline]
    pub fn of(&self, g: GenderId) -> u32 {
        self.priority[g.idx()]
    }

    /// The highest-priority gender (`imax` in Algorithm 2).
    pub fn highest(&self) -> GenderId {
        let g = self
            .priority
            .iter()
            .enumerate()
            .max_by_key(|&(_, p)| p)
            .expect("non-empty priorities")
            .0;
        GenderId::from(g)
    }

    /// Genders sorted by descending priority.
    pub fn descending(&self) -> Vec<GenderId> {
        let mut order: Vec<GenderId> = (0..self.k()).map(GenderId::from).collect();
        order.sort_by_key(|&g| std::cmp::Reverse(self.of(g)));
        order
    }

    /// Is `tree` bitonic with respect to these priorities (every pairwise
    /// path's priority sequence is bitonic)?
    pub fn is_bitonic_under(&self, tree: &BindingTree) -> bool {
        let k = tree.k() as u16;
        for a in 0..k {
            for b in (a + 1)..k {
                let seq: Vec<u16> = tree
                    .path_between(a, b)
                    .into_iter()
                    .map(|g| self.of(GenderId(g)) as u16)
                    .collect();
                if !is_bitonic_sequence(&seq) {
                    return false;
                }
            }
        }
        true
    }
}

/// Find a **weakened** blocking family, or `None` if the matching is
/// weakly stable.
///
/// DFS over genders in descending priority: the first member placed in
/// each same-family group is automatically its lead, so lead constraints
/// can be checked incrementally.
pub fn find_weak_blocking_family(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
    priorities: &GenderPriorities,
) -> Option<BlockingFamily> {
    let k = inst.k();
    assert_eq!(
        matching.k(),
        k,
        "matching arity must equal instance genders"
    );
    assert_eq!(priorities.k(), k, "priorities must cover all genders");
    let order = priorities.descending();
    // chosen[d] = member chosen for gender order[d].
    let mut chosen: Vec<Member> = Vec::with_capacity(k);
    // leads: (family, member) for each group, in creation order.
    let mut leads: Vec<(u32, Member)> = Vec::with_capacity(k);
    if weak_dfs(inst, matching, &order, &mut chosen, &mut leads) {
        let mut members = vec![0u32; k];
        for m in &chosen {
            members[m.gender.idx()] = m.index;
        }
        let mut source_families: Vec<u32> = chosen.iter().map(|&m| matching.family_of(m)).collect();
        source_families.sort_unstable();
        source_families.dedup();
        return Some(BlockingFamily {
            members,
            source_families,
        });
    }
    None
}

/// Does `l` strictly prefer `c` to its current gender-`c.gender` family
/// member?
#[inline]
fn lead_accepts(inst: &KPartiteInstance, matching: &KAryMatching, l: Member, c: Member) -> bool {
    let current = matching.current_partner(l, c.gender);
    inst.rank_of(l, c.gender, c.index) < inst.rank_of(l, c.gender, current.index)
}

fn weak_dfs(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
    order: &[GenderId],
    chosen: &mut Vec<Member>,
    leads: &mut Vec<(u32, Member)>,
) -> bool {
    let depth = chosen.len();
    if depth == order.len() {
        return leads.len() >= 2;
    }
    let g = order[depth];
    'candidates: for i in 0..inst.n() as u32 {
        let cand = Member {
            gender: g,
            index: i,
        };
        let fam = matching.family_of(cand);
        let joins_existing = leads.iter().any(|&(f, _)| f == fam);
        let cand_is_lead = !joins_existing;
        // Cross-group pairs involving at least one lead must mutually
        // prefer each other. We walk in descending priority, so each
        // previously chosen member's lead status is already fixed.
        for &prev in chosen.iter() {
            let pfam = matching.family_of(prev);
            if pfam == fam {
                continue; // Same-family group: exempt.
            }
            let prev_is_lead = leads.iter().any(|&(_, l)| l == prev);
            if (prev_is_lead || cand_is_lead)
                && (!lead_accepts(inst, matching, prev, cand)
                    || !lead_accepts(inst, matching, cand, prev))
            {
                continue 'candidates;
            }
        }
        if cand_is_lead {
            leads.push((fam, cand));
        }
        chosen.push(cand);
        if weak_dfs(inst, matching, order, chosen, leads) {
            return true;
        }
        chosen.pop();
        if cand_is_lead {
            leads.pop();
        }
    }
    false
}

/// Ground-truth verifier for the weakened condition: enumerate all `n^k`
/// tuples, derive groups and leads directly from the definition, and check
/// that every cross-group pair containing at least one lead mutually
/// prefers each other. Exponential — cross-validation only.
pub fn find_weak_blocking_family_naive(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
    priorities: &GenderPriorities,
) -> Option<BlockingFamily> {
    let k = inst.k();
    let n = inst.n();
    let mut tuple = vec![0u32; k];
    loop {
        let members: Vec<Member> = tuple
            .iter()
            .enumerate()
            .map(|(g, &i)| Member::new(g, i))
            .collect();
        // Group by current family; the lead of a group is its
        // highest-priority gender member.
        let fams: Vec<u32> = members.iter().map(|&m| matching.family_of(m)).collect();
        let mut distinct: Vec<u32> = fams.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() >= 2 {
            let is_lead = |idx: usize| -> bool {
                members
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| fams[j] == fams[idx])
                    .all(|(j, m)| {
                        j == idx || priorities.of(m.gender) < priorities.of(members[idx].gender)
                    })
            };
            let ok = (0..k).all(|a| {
                (0..k).all(|b| {
                    if a == b || fams[a] == fams[b] {
                        return true;
                    }
                    if is_lead(a) || is_lead(b) {
                        lead_accepts(inst, matching, members[a], members[b])
                            && lead_accepts(inst, matching, members[b], members[a])
                    } else {
                        true
                    }
                })
            });
            if ok {
                return Some(BlockingFamily {
                    members: tuple,
                    source_families: distinct,
                });
            }
        }
        let mut pos = 0;
        loop {
            if pos == k {
                return None;
            }
            tuple[pos] += 1;
            if (tuple[pos] as usize) < n {
                break;
            }
            tuple[pos] = 0;
            pos += 1;
        }
    }
}

/// Is the matching stable under the **weakened** blocking condition?
/// Implies [`crate::blocking::is_kary_stable`] (weak stability is the
/// stronger property).
pub fn is_weakly_stable(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
    priorities: &GenderPriorities,
) -> bool {
    find_weak_blocking_family(inst, matching, priorities).is_none()
}

/// How Algorithm 2 picks the tree node to attach the next gender to; every
/// choice yields a bitonic tree, and the `(k−1)!` combinations enumerate
/// all priority-based binding trees (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttachChoice {
    /// Attach to the highest-priority node already in the tree (yields the
    /// star centered at `imax` when used throughout).
    #[default]
    HighestPriority,
    /// Attach to the most recently added node (yields the descending
    /// priority path).
    Chain,
}

/// Algorithm 2's tree construction: start from the highest-priority gender
/// and attach the remaining genders in decreasing priority, each to the
/// node selected by `choice`. Edges are oriented tree-node → new-node.
pub fn priority_binding_tree(priorities: &GenderPriorities, choice: AttachChoice) -> BindingTree {
    let k = priorities.k();
    let order = priorities.descending();
    let mut edges = Vec::with_capacity(k - 1);
    let mut in_tree: Vec<GenderId> = vec![order[0]];
    for &j in &order[1..] {
        let i = match choice {
            AttachChoice::HighestPriority => in_tree[0],
            AttachChoice::Chain => *in_tree.last().expect("tree is non-empty"),
        };
        edges.push((i.0, j.0));
        in_tree.push(j);
    }
    BindingTree::new(k, edges).expect("Algorithm 2 grows a tree")
}

/// Enumerate **all** `(k−1)!` priority-based binding trees by exploring
/// every attachment choice (Fig. 6's recurrence `T(k) = (k−1)·T(k−1)`).
pub fn all_priority_trees(priorities: &GenderPriorities) -> Vec<BindingTree> {
    let k = priorities.k();
    let order = priorities.descending();
    let mut out = Vec::new();
    let mut edges: Vec<(u16, u16)> = Vec::with_capacity(k - 1);
    let mut in_tree: Vec<GenderId> = vec![order[0]];
    fn recurse(
        order: &[GenderId],
        in_tree: &mut Vec<GenderId>,
        edges: &mut Vec<(u16, u16)>,
        out: &mut Vec<BindingTree>,
        k: usize,
    ) {
        let depth = in_tree.len();
        if depth == k {
            out.push(BindingTree::new(k, edges.clone()).expect("valid growth"));
            return;
        }
        let j = order[depth];
        for idx in 0..depth {
            let i = in_tree[idx];
            edges.push((i.0, j.0));
            in_tree.push(j);
            recurse(order, in_tree, edges, out, k);
            in_tree.pop();
            edges.pop();
        }
    }
    recurse(&order, &mut in_tree, &mut edges, &mut out, k);
    out
}

/// Algorithm 2 end-to-end: build a priority tree and bind along it.
/// Theorem 5 guarantees the result is weakly stable.
pub fn priority_bind(
    inst: &KPartiteInstance,
    priorities: &GenderPriorities,
    choice: AttachChoice,
) -> (KAryMatching, Vec<GsStats>) {
    let tree = priority_binding_tree(priorities, choice);
    let (k, n) = (inst.k(), inst.n());
    let mut uf = UnionFind::new(k * n);
    let per_edge: Vec<GsStats> = tree
        .edges()
        .iter()
        .map(|&(i, j)| bind_edge(inst, &mut uf, GenderId(i), GenderId(j)))
        .collect();
    (KAryMatching::from_classes(k, n, &uf.classes()), per_edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::bind;
    use crate::blocking::is_kary_stable;
    use kmatch_prefs::gen::uniform::uniform_kpartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn priority_trees_are_bitonic() {
        for k in 2..=7 {
            let pr = GenderPriorities::by_id(k);
            for choice in [AttachChoice::HighestPriority, AttachChoice::Chain] {
                let tree = priority_binding_tree(&pr, choice);
                assert!(pr.is_bitonic_under(&tree), "{tree} not bitonic");
            }
        }
    }

    #[test]
    fn all_priority_trees_count_and_bitonic() {
        // Fig. 6: T(k) = (k-1)!.
        let expected = [1usize, 1, 2, 6, 24];
        for k in 2..=5 {
            let pr = GenderPriorities::by_id(k);
            let trees = all_priority_trees(&pr);
            assert_eq!(trees.len(), expected[k - 1], "T({k}) = (k-1)!");
            for t in &trees {
                assert!(pr.is_bitonic_under(t));
            }
        }
    }

    #[test]
    fn theorem5_priority_binding_weakly_stable() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let pr3 = GenderPriorities::by_id(3);
        let pr4 = GenderPriorities::by_id(4);
        for _ in 0..10 {
            let inst = uniform_kpartite(3, 4, &mut rng);
            let (m, _) = priority_bind(&inst, &pr3, AttachChoice::Chain);
            assert!(is_weakly_stable(&inst, &m, &pr3));
            let inst = uniform_kpartite(4, 3, &mut rng);
            for choice in [AttachChoice::HighestPriority, AttachChoice::Chain] {
                let (m, _) = priority_bind(&inst, &pr4, choice);
                assert!(is_weakly_stable(&inst, &m, &pr4));
            }
        }
    }

    #[test]
    fn theorem5_all_bitonic_trees_weakly_stable() {
        // Stronger sweep: EVERY priority tree of k = 4 on several
        // instances.
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let pr = GenderPriorities::by_id(4);
        for _ in 0..5 {
            let inst = uniform_kpartite(4, 3, &mut rng);
            for tree in all_priority_trees(&pr) {
                let m = bind(&inst, &tree);
                assert!(is_weakly_stable(&inst, &m, &pr), "tree {tree} failed");
            }
        }
    }

    #[test]
    fn weak_stability_implies_full_stability() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let pr = GenderPriorities::by_id(4);
        for _ in 0..10 {
            let inst = uniform_kpartite(4, 3, &mut rng);
            let (m, _) = priority_bind(&inst, &pr, AttachChoice::Chain);
            if is_weakly_stable(&inst, &m, &pr) {
                assert!(
                    is_kary_stable(&inst, &m),
                    "weak stability is the stronger property"
                );
            }
        }
    }

    #[test]
    fn fig5a_non_bitonic_tree_can_fail_weak_stability() {
        // Fig. 5(a): the path 4-1-2-3 (0-indexed: 3-0-1-2) is not bitonic;
        // search nearby seeds for an instance where binding along it
        // produces a weakened blocking family, demonstrating §IV-D's claim
        // that arbitrary trees no longer suffice.
        let pr = GenderPriorities::by_id(4);
        let bad_tree = BindingTree::new(4, vec![(3, 0), (0, 1), (1, 2)]).unwrap();
        assert!(!pr.is_bitonic_under(&bad_tree));
        let mut found = false;
        for seed in 0..200 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let inst = uniform_kpartite(4, 3, &mut rng);
            let m = bind(&inst, &bad_tree);
            // Theorem 2 still guarantees FULL stability…
            assert!(is_kary_stable(&inst, &m));
            // …but weak stability can break.
            if !is_weakly_stable(&inst, &m, &pr) {
                found = true;
                break;
            }
        }
        assert!(
            found,
            "expected some instance where the non-bitonic tree fails"
        );
    }

    #[test]
    fn dfs_agrees_with_naive_enumeration() {
        // The incremental-lead DFS must decide exactly like the direct
        // definition, on matchings both from bitonic and arbitrary trees.
        use kmatch_graph::prufer::random_tree;
        let pr = GenderPriorities::by_id(4);
        for seed in 0..40u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let inst = uniform_kpartite(4, 3, &mut rng);
            let tree = random_tree(4, &mut rng);
            let m = bind(&inst, &tree);
            let dfs = find_weak_blocking_family(&inst, &m, &pr);
            let naive = find_weak_blocking_family_naive(&inst, &m, &pr);
            assert_eq!(dfs.is_some(), naive.is_some(), "seed {seed}, tree {tree}");
        }
    }

    #[test]
    fn dfs_agrees_with_naive_under_permuted_priorities() {
        use kmatch_graph::prufer::random_tree;
        let pr = GenderPriorities::new(vec![2, 0, 3, 1]);
        for seed in 100..120u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let inst = uniform_kpartite(4, 3, &mut rng);
            let tree = random_tree(4, &mut rng);
            let m = bind(&inst, &tree);
            assert_eq!(
                find_weak_blocking_family(&inst, &m, &pr).is_some(),
                find_weak_blocking_family_naive(&inst, &m, &pr).is_some(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn custom_priorities_respected() {
        let pr = GenderPriorities::new(vec![5, 1, 9]);
        assert_eq!(pr.highest(), GenderId(2));
        assert_eq!(pr.descending(), vec![GenderId(2), GenderId(0), GenderId(1)]);
        let tree = priority_binding_tree(&pr, AttachChoice::Chain);
        // Chain: 2 -> 0 -> 1.
        assert_eq!(tree.edges(), &[(2, 0), (0, 1)]);
        assert!(pr.is_bitonic_under(&tree));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_priorities_rejected() {
        let _ = GenderPriorities::new(vec![1, 1, 2]);
    }
}
