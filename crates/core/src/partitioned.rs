//! Partitioned k-ary matching in k′-partite graphs (the paper's §VII
//! second future-work direction).
//!
//! "We plan to study a more general k-ary matching in k′-partite graphs,
//! where k < k′ and ck = nk′ for some constant c."
//!
//! This module implements the *block-partition* case of that program: the
//! k′ genders are partitioned into blocks of `k` genders each (requires
//! `k | k′`), and Algorithm 1 runs independently inside every block. The
//! result is `c = n·k′/k` families of arity `k` — satisfying the paper's
//! counting constraint `c·k = n·k′` — and each family is **stable against
//! every blocking family drawn from its own block's genders** (Theorem 2
//! applied per block).
//!
//! Cross-block blocking is not defined in this restricted model: a family
//! only contains genders of one block, so a §II-C-style blocking k-tuple —
//! one member per gender of a single block — can only raid families of the
//! same block. The fully general model (families mixing genders
//! arbitrarily) remains open, as in the paper.

use kmatch_graph::BindingTree;
use kmatch_prefs::{GenderId, KPartiteInstance, Member};

use crate::binding::bind_with_stats;
use crate::blocking::find_blocking_family;
use crate::kary::KAryMatching;

/// A partition of the `k′` genders into equal blocks of `k` genders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenderPartition {
    blocks: Vec<Vec<GenderId>>,
}

impl GenderPartition {
    /// Validate a partition: blocks must be non-overlapping, cover all
    /// `k_total` genders, and share one size ≥ 2.
    pub fn new(k_total: usize, blocks: Vec<Vec<GenderId>>) -> Result<Self, String> {
        if blocks.is_empty() {
            return Err("partition needs at least one block".to_string());
        }
        let k = blocks[0].len();
        if k < 2 {
            return Err("blocks need at least 2 genders".to_string());
        }
        let mut seen = vec![false; k_total];
        for block in &blocks {
            if block.len() != k {
                return Err(format!("unequal block sizes: {} vs {k}", block.len()));
            }
            for &g in block {
                if g.idx() >= k_total {
                    return Err(format!("gender {g} out of range"));
                }
                if seen[g.idx()] {
                    return Err(format!("gender {g} in two blocks"));
                }
                seen[g.idx()] = true;
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("partition must cover every gender".to_string());
        }
        Ok(GenderPartition { blocks })
    }

    /// Contiguous partition `[0..k], [k..2k], …` of `k_total` genders.
    ///
    /// # Panics
    /// If `k` does not divide `k_total`.
    pub fn contiguous(k_total: usize, k: usize) -> Self {
        assert!(
            k >= 2 && k_total.is_multiple_of(k),
            "need k >= 2 dividing k_total"
        );
        let blocks = (0..k_total / k)
            .map(|b| (b * k..(b + 1) * k).map(GenderId::from).collect())
            .collect();
        GenderPartition { blocks }
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Vec<GenderId>] {
        &self.blocks
    }

    /// Family arity `k` (= block size).
    pub fn family_arity(&self) -> usize {
        self.blocks[0].len()
    }
}

/// A family of the partitioned matching: which block it lives in, its
/// block-local family id, and its members in original-instance coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockFamily {
    /// Index of the block in the partition.
    pub block: usize,
    /// The members, one per gender of the block (original gender ids).
    pub members: Vec<Member>,
}

/// Outcome of partitioned binding: per-block matchings plus global stats.
#[derive(Debug, Clone)]
pub struct PartitionedOutcome {
    /// Per-block k-ary matchings in *block-local* gender coordinates.
    pub per_block: Vec<KAryMatching>,
    /// All families in original-instance coordinates.
    pub families: Vec<BlockFamily>,
    /// Total GS proposals across all blocks.
    pub total_proposals: u64,
}

/// Run Algorithm 1 independently inside every block of the partition,
/// using a path binding tree over each block's genders (in block order).
pub fn partitioned_bind(
    inst: &KPartiteInstance,
    partition: &GenderPartition,
) -> PartitionedOutcome {
    let k = partition.family_arity();
    let mut per_block = Vec::with_capacity(partition.blocks().len());
    let mut families = Vec::new();
    let mut total_proposals = 0u64;
    for (b, block) in partition.blocks().iter().enumerate() {
        let sub = inst.restrict_to_genders(block);
        let out = bind_with_stats(&sub, &BindingTree::path(k));
        total_proposals += out.total_proposals();
        for f in out.matching.family_ids() {
            let members = out
                .matching
                .family(f)
                .iter()
                .enumerate()
                .map(|(local_g, &i)| Member {
                    gender: block[local_g],
                    index: i,
                })
                .collect();
            families.push(BlockFamily { block: b, members });
        }
        per_block.push(out.matching);
    }
    PartitionedOutcome {
        per_block,
        families,
        total_proposals,
    }
}

/// Verify block-local stability: no blocking family inside any block.
pub fn is_partition_stable(
    inst: &KPartiteInstance,
    partition: &GenderPartition,
    outcome: &PartitionedOutcome,
) -> bool {
    partition
        .blocks()
        .iter()
        .zip(&outcome.per_block)
        .all(|(block, matching)| {
            let sub = inst.restrict_to_genders(block);
            find_blocking_family(&sub, matching).is_none()
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmatch_prefs::gen::uniform::uniform_kpartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn six_genders_into_two_ternary_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(64);
        let inst = uniform_kpartite(6, 4, &mut rng);
        let partition = GenderPartition::contiguous(6, 3);
        let out = partitioned_bind(&inst, &partition);
        // c·k = n·k′: 8 families of 3 = 24 = 4·6 members.
        assert_eq!(out.families.len(), 8);
        assert!(out.families.iter().all(|f| f.members.len() == 3));
        assert!(is_partition_stable(&inst, &partition, &out));
        // Every member appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for f in &out.families {
            for &m in &f.members {
                assert!(seen.insert(m), "member {m} duplicated");
            }
        }
        assert_eq!(seen.len(), 24);
        // Families never mix blocks.
        for f in &out.families {
            let blocks: std::collections::HashSet<usize> =
                f.members.iter().map(|m| m.gender.idx() / 3).collect();
            assert_eq!(blocks.len(), 1);
        }
    }

    #[test]
    fn custom_partition_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(65);
        let inst = uniform_kpartite(4, 3, &mut rng);
        // Interleaved blocks {0, 2} and {1, 3}: families are pairs.
        let partition = GenderPartition::new(
            4,
            vec![
                vec![GenderId(0), GenderId(2)],
                vec![GenderId(1), GenderId(3)],
            ],
        )
        .unwrap();
        let out = partitioned_bind(&inst, &partition);
        assert_eq!(out.families.len(), 6);
        assert!(is_partition_stable(&inst, &partition, &out));
        assert!(out.total_proposals <= 2 * 9, "two bipartite GS runs, n = 3");
    }

    #[test]
    fn partition_validation() {
        use kmatch_prefs::GenderId as G;
        assert!(GenderPartition::new(4, vec![]).is_err());
        assert!(GenderPartition::new(4, vec![vec![G(0)], vec![G(1)]]).is_err());
        assert!(GenderPartition::new(4, vec![vec![G(0), G(1)], vec![G(1), G(2)]]).is_err());
        assert!(GenderPartition::new(4, vec![vec![G(0), G(1)]]).is_err());
        assert!(GenderPartition::new(4, vec![vec![G(0), G(1), G(2)], vec![G(3)]]).is_err());
        assert!(GenderPartition::new(4, vec![vec![G(0), G(1)], vec![G(2), G(3)]]).is_ok());
    }

    #[test]
    #[should_panic(expected = "dividing")]
    fn contiguous_requires_divisibility() {
        let _ = GenderPartition::contiguous(5, 2);
    }
}
