//! Quorum-based blocking conditions (the paper's §VII future work).
//!
//! "Our future direction includes examining other possible weakened
//! blocking families … One possibility is to explore quorum-based
//! approaches to relax unstable conditions used in the extended stable
//! matching."
//!
//! We realize that direction as a family of blocking conditions indexed by
//! a quorum `q ∈ 1..=k`: a candidate tuple (spanning ≥ 2 current families)
//! blocks when **at least `q` of its members are *satisfied***, where a
//! member is satisfied iff it strictly prefers every cross-group member of
//! the tuple to the corresponding member of its current family (same-family
//! group members are exempt from comparison, as in §IV-A).
//!
//! * `q = k` is exactly §II-C's full blocking family — Theorem 2 applies
//!   and Algorithm 1 always yields a `k`-quorum-stable matching.
//! * Smaller `q` admits more blocking families, so `q`-quorum stability is
//!   *monotone*: a matching stable at quorum `q` is stable at every
//!   `q′ > q`.
//! * At small `q` stability generally becomes unattainable (a single
//!   envious member with two agreeing partners can block at `q = 1`);
//!   the experiment harness (table T14) charts the attainability frontier
//!   of Algorithm 1's output as `q` varies.

use kmatch_prefs::{KPartiteInstance, Member};

use crate::blocking::BlockingFamily;
use crate::kary::KAryMatching;

/// Is `m` *satisfied* by candidate tuple `tuple` (one member index per
/// gender): does `m` strictly prefer every cross-family member of the
/// tuple to its current same-gender counterpart?
fn satisfied(inst: &KPartiteInstance, matching: &KAryMatching, tuple: &[u32], g: usize) -> bool {
    let me = Member::new(g, tuple[g]);
    let my_family = matching.family_of(me);
    for (h, &j) in tuple.iter().enumerate() {
        if h == g {
            continue;
        }
        let other = Member::new(h, j);
        if matching.family_of(other) == my_family {
            continue; // Same-family group: exempt.
        }
        let current = matching.current_partner(me, other.gender);
        if inst.rank_of(me, other.gender, j) >= inst.rank_of(me, other.gender, current.index) {
            return false;
        }
    }
    true
}

/// Find a `q`-quorum blocking family: a tuple spanning ≥ 2 families with at
/// least `quorum` satisfied members. Exhaustive DFS with a satisfaction
/// upper-bound prune; ground truth for small instances
/// (`n^k` worst case — keep `k·ln n` modest).
pub fn find_quorum_blocking_family(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
    quorum: usize,
) -> Option<BlockingFamily> {
    let k = inst.k();
    assert!(quorum >= 1 && quorum <= k, "quorum must be in 1..=k");
    assert_eq!(
        matching.k(),
        k,
        "matching arity must equal instance genders"
    );
    let mut tuple = vec![0u32; k];
    let mut violated = vec![false; k];
    if quorum_bb(inst, matching, quorum, &mut tuple, &mut violated, 0, 0) {
        let mut source_families: Vec<u32> = tuple
            .iter()
            .enumerate()
            .map(|(g, &i)| matching.family_of(Member::new(g, i)))
            .collect();
        source_families.sort_unstable();
        source_families.dedup();
        return Some(BlockingFamily {
            members: tuple,
            source_families,
        });
    }
    None
}

/// Branch-and-bound DFS. Dissatisfaction is *monotone*: once a chosen
/// member fails a pairwise preference against some cross-family member of
/// the partial tuple, no extension can satisfy it. So we track a violation
/// flag per position and prune whenever more than `k − quorum` members are
/// already violated.
#[allow(clippy::too_many_arguments)]
fn quorum_bb(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
    quorum: usize,
    tuple: &mut [u32],
    violated: &mut [bool],
    violations: usize,
    g: usize,
) -> bool {
    let k = inst.k();
    if g == k {
        // Spans at least two families? (Non-violated members are exactly
        // the satisfied ones: every cross pair was checked on insertion.)
        let first = matching.family_of(Member::new(0usize, tuple[0]));
        let spans = (1..k).any(|h| matching.family_of(Member::new(h, tuple[h])) != first);
        return spans && k - violations >= quorum;
    }
    'candidates: for i in 0..inst.n() as u32 {
        tuple[g] = i;
        let cand = Member::new(g, i);
        let cand_family = matching.family_of(cand);
        // Incrementally update violations against earlier members.
        let mut new_violations = violations;
        let mut flipped: Vec<usize> = Vec::new();
        let mut cand_violated = false;
        for h in 0..g {
            let prev = Member::new(h, tuple[h]);
            if matching.family_of(prev) == cand_family {
                continue; // Same-family group: exempt.
            }
            // Does prev accept cand?
            let prev_cur = matching.current_partner(prev, cand.gender);
            if !violated[h]
                && inst.rank_of(prev, cand.gender, i)
                    >= inst.rank_of(prev, cand.gender, prev_cur.index)
            {
                violated[h] = true;
                flipped.push(h);
                new_violations += 1;
            }
            // Does cand accept prev?
            if !cand_violated {
                let cand_cur = matching.current_partner(cand, prev.gender);
                if inst.rank_of(cand, prev.gender, prev.index)
                    >= inst.rank_of(cand, prev.gender, cand_cur.index)
                {
                    cand_violated = true;
                    new_violations += 1;
                }
            }
            if new_violations > k - quorum {
                for &h in &flipped {
                    violated[h] = false;
                }
                continue 'candidates;
            }
        }
        violated[g] = cand_violated;
        if quorum_bb(
            inst,
            matching,
            quorum,
            tuple,
            violated,
            new_violations,
            g + 1,
        ) {
            return true;
        }
        violated[g] = false;
        for &h in &flipped {
            violated[h] = false;
        }
    }
    false
}

/// Naive exhaustive quorum search (no pruning) — ground truth for the
/// branch-and-bound version.
pub fn find_quorum_blocking_family_naive(
    inst: &KPartiteInstance,
    matching: &KAryMatching,
    quorum: usize,
) -> Option<BlockingFamily> {
    let k = inst.k();
    assert!(quorum >= 1 && quorum <= k, "quorum must be in 1..=k");
    let n = inst.n();
    let mut tuple = vec![0u32; k];
    loop {
        let first = matching.family_of(Member::new(0usize, tuple[0]));
        let spans = (1..k).any(|h| matching.family_of(Member::new(h, tuple[h])) != first);
        if spans {
            let sat = (0..k)
                .filter(|&h| satisfied(inst, matching, &tuple, h))
                .count();
            if sat >= quorum {
                let mut source_families: Vec<u32> = tuple
                    .iter()
                    .enumerate()
                    .map(|(g, &i)| matching.family_of(Member::new(g, i)))
                    .collect();
                source_families.sort_unstable();
                source_families.dedup();
                return Some(BlockingFamily {
                    members: tuple,
                    source_families,
                });
            }
        }
        let mut pos = 0;
        loop {
            if pos == k {
                return None;
            }
            tuple[pos] += 1;
            if (tuple[pos] as usize) < n {
                break;
            }
            tuple[pos] = 0;
            pos += 1;
        }
    }
}

/// Is the matching stable at quorum `q` (no `q`-quorum blocking family)?
pub fn is_quorum_stable(inst: &KPartiteInstance, matching: &KAryMatching, quorum: usize) -> bool {
    find_quorum_blocking_family(inst, matching, quorum).is_none()
}

/// The smallest quorum at which `matching` is stable, or `None` if it is
/// unstable even at `q = k` (i.e. not even §II-C-stable). Since stability
/// is monotone in `q`, this is a well-defined threshold found by scanning
/// downward from `k`.
pub fn stability_threshold(inst: &KPartiteInstance, matching: &KAryMatching) -> Option<usize> {
    let k = inst.k();
    if !is_quorum_stable(inst, matching, k) {
        return None;
    }
    let mut best = k;
    for q in (1..k).rev() {
        if is_quorum_stable(inst, matching, q) {
            best = q;
        } else {
            break;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::bind;
    use crate::blocking::is_kary_stable;
    use kmatch_graph::{random_tree, BindingTree};
    use kmatch_prefs::gen::paper::fig3_tripartite;
    use kmatch_prefs::gen::uniform::uniform_kpartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn quorum_k_equals_full_condition() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        for _ in 0..10 {
            let inst = uniform_kpartite(3, 3, &mut rng);
            let tree = random_tree(3, &mut rng);
            let m = bind(&inst, &tree);
            assert_eq!(
                is_quorum_stable(&inst, &m, 3),
                is_kary_stable(&inst, &m),
                "q = k must coincide with §II-C"
            );
        }
    }

    #[test]
    fn stability_is_monotone_in_quorum() {
        let mut rng = ChaCha8Rng::seed_from_u64(62);
        for _ in 0..10 {
            let inst = uniform_kpartite(3, 3, &mut rng);
            let m = bind(&inst, &BindingTree::path(3));
            let stable_at: Vec<bool> = (1..=3).map(|q| is_quorum_stable(&inst, &m, q)).collect();
            for w in stable_at.windows(2) {
                assert!(!w[0] || w[1], "stable at q implies stable at q+1");
            }
        }
    }

    #[test]
    fn fig3_thresholds() {
        let inst = fig3_tripartite();
        let m = bind(&inst, &BindingTree::new(3, vec![(0, 1), (1, 2)]).unwrap());
        let t = stability_threshold(&inst, &m).expect("Theorem 2: stable at q = k");
        assert!((1..=3).contains(&t));
        // Threshold semantics: stable at t, unstable below (unless t = 1).
        assert!(is_quorum_stable(&inst, &m, t));
        if t > 1 {
            assert!(!is_quorum_stable(&inst, &m, t - 1));
        }
    }

    #[test]
    fn low_quorum_usually_blocks() {
        // q = 1 blocks whenever any member envies a cross-family tuple —
        // nearly always on uniform instances with n >= 3.
        let mut rng = ChaCha8Rng::seed_from_u64(63);
        let mut blocked = 0;
        for _ in 0..10 {
            let inst = uniform_kpartite(3, 4, &mut rng);
            let m = bind(&inst, &BindingTree::path(3));
            if !is_quorum_stable(&inst, &m, 1) {
                blocked += 1;
            }
        }
        assert!(
            blocked >= 8,
            "q = 1 should almost always admit a blocking family"
        );
    }

    #[test]
    fn branch_and_bound_agrees_with_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(66);
        for seed in 0..20u64 {
            let _ = seed;
            let inst = uniform_kpartite(3, 3, &mut rng);
            let m = bind(&inst, &random_tree(3, &mut rng));
            for q in 1..=3 {
                assert_eq!(
                    find_quorum_blocking_family(&inst, &m, q).is_some(),
                    find_quorum_blocking_family_naive(&inst, &m, q).is_some(),
                    "q = {q}"
                );
            }
        }
        // Also on arbitrary (non-binding) matchings.
        let inst = uniform_kpartite(3, 3, &mut rng);
        let arbitrary = crate::kary::KAryMatching::from_tuples(
            3,
            3,
            &[vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]],
        );
        for q in 1..=3 {
            assert_eq!(
                find_quorum_blocking_family(&inst, &arbitrary, q).is_some(),
                find_quorum_blocking_family_naive(&inst, &arbitrary, q).is_some(),
                "arbitrary matching, q = {q}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "quorum must be in")]
    fn quorum_zero_rejected() {
        let inst = fig3_tripartite();
        let m = bind(&inst, &BindingTree::path(3));
        let _ = is_quorum_stable(&inst, &m, 0);
    }
}
