//! k-ary matchings: `n` families, one member per gender each.

use kmatch_prefs::{GenderId, Member};

/// A perfect k-ary matching of a balanced k-partite instance: `n` families
/// (the paper's k-tuples), each containing exactly one member of every
/// gender, every member in exactly one family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KAryMatching {
    k: usize,
    n: usize,
    /// `families[f * k + g]` = index of the gender-`g` member of family `f`.
    families: Vec<u32>,
    /// `family_of[g * n + i]` = family containing member `(g, i)`.
    family_of: Vec<u32>,
}

impl KAryMatching {
    /// Build from per-family member indices: `tuples[f][g]` is the
    /// gender-`g` member of family `f`.
    ///
    /// # Panics
    /// If the tuples are not a partition with one member per gender each.
    pub fn from_tuples(k: usize, n: usize, tuples: &[Vec<u32>]) -> Self {
        assert_eq!(tuples.len(), n, "need exactly n families");
        let mut families = Vec::with_capacity(n * k);
        let mut family_of = vec![u32::MAX; k * n];
        for (f, tuple) in tuples.iter().enumerate() {
            assert_eq!(tuple.len(), k, "family {f} must have one member per gender");
            for (g, &i) in tuple.iter().enumerate() {
                assert!((i as usize) < n, "member index out of range");
                let slot = &mut family_of[g * n + i as usize];
                assert_eq!(*slot, u32::MAX, "member ({g},{i}) in two families");
                *slot = f as u32;
                families.push(i);
            }
        }
        KAryMatching {
            k,
            n,
            families,
            family_of,
        }
    }

    /// Build from equivalence classes over global member ids (`g·n + i`),
    /// as produced by the binding algorithms. Each class must hold exactly
    /// one member of every gender.
    ///
    /// # Panics
    /// If some class is not a one-per-gender transversal.
    pub fn from_classes(k: usize, n: usize, classes: &[Vec<u32>]) -> Self {
        assert_eq!(
            classes.len(),
            n,
            "expected n equivalence classes, got {}",
            classes.len()
        );
        let tuples: Vec<Vec<u32>> = classes
            .iter()
            .map(|class| {
                assert_eq!(class.len(), k, "class must have k members");
                let mut tuple = vec![u32::MAX; k];
                for &global in class {
                    let m = Member::from_global(global, n as u32);
                    let slot = &mut tuple[m.gender.idx()];
                    assert_eq!(
                        *slot,
                        u32::MAX,
                        "two members of gender {} in one class",
                        m.gender
                    );
                    *slot = m.index;
                }
                tuple
            })
            .collect();
        KAryMatching::from_tuples(k, n, &tuples)
    }

    /// Number of genders.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of families (= members per gender).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The members of family `f`, indexed by gender.
    #[inline]
    pub fn family(&self, f: u32) -> &[u32] {
        let base = f as usize * self.k;
        &self.families[base..base + self.k]
    }

    /// The gender-`g` member of family `f`.
    #[inline]
    pub fn member_of(&self, f: u32, g: GenderId) -> Member {
        Member {
            gender: g,
            index: self.family(f)[g.idx()],
        }
    }

    /// The family containing member `m`.
    #[inline]
    pub fn family_of(&self, m: Member) -> u32 {
        self.family_of[m.gender.idx() * self.n + m.index as usize]
    }

    /// The gender-`h` member of `m`'s family — "the corresponding one of
    /// the current family" in the blocking-family definition.
    #[inline]
    pub fn current_partner(&self, m: Member, h: GenderId) -> Member {
        self.member_of(self.family_of(m), h)
    }

    /// Iterate over family ids.
    pub fn family_ids(&self) -> impl Iterator<Item = u32> {
        0..self.n as u32
    }

    /// All families as tuples of member indices (gender-indexed), for
    /// display and serde.
    pub fn to_tuples(&self) -> Vec<Vec<u32>> {
        (0..self.n as u32)
            .map(|f| self.family(f).to_vec())
            .collect()
    }
}

impl core::fmt::Display for KAryMatching {
    /// Renders each family as `f: (G0[i], G1[j], …)`, one per line.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for fam in 0..self.n as u32 {
            let members: Vec<String> = self
                .family(fam)
                .iter()
                .enumerate()
                .map(|(g, &i)| format!("G{g}[{i}]"))
                .collect();
            writeln!(f, "{fam}: ({})", members.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_family_matching() -> KAryMatching {
        // k = 3, n = 2: families (m,w,u), (m',w',u').
        KAryMatching::from_tuples(3, 2, &[vec![0, 0, 0], vec![1, 1, 1]])
    }

    #[test]
    fn accessors() {
        let m = two_family_matching();
        assert_eq!(m.family(0), &[0, 0, 0]);
        assert_eq!(m.family_of(Member::new(1usize, 1)), 1);
        assert_eq!(
            m.current_partner(Member::new(0usize, 0), GenderId(2)),
            Member::new(2usize, 0)
        );
        assert_eq!(m.to_tuples(), vec![vec![0, 0, 0], vec![1, 1, 1]]);
    }

    #[test]
    fn from_classes_reorders_by_gender() {
        // Classes over global ids with n = 2: {0, 2, 4} = (G0,0),(G1,0),(G2,0).
        let m = KAryMatching::from_classes(3, 2, &[vec![0, 2, 4], vec![1, 3, 5]]);
        assert_eq!(m.family(0), &[0, 0, 0]);
        assert_eq!(m.family(1), &[1, 1, 1]);
        // Mixed class: {0, 3, 4} = (G0,0),(G1,1),(G2,0).
        let m = KAryMatching::from_classes(3, 2, &[vec![0, 3, 4], vec![1, 2, 5]]);
        assert_eq!(m.family(0), &[0, 1, 0]);
        assert_eq!(m.family(1), &[1, 0, 1]);
    }

    #[test]
    fn display_lists_families() {
        let m = two_family_matching();
        let s = m.to_string();
        assert!(s.contains("0: (G0[0], G1[0], G2[0])"));
        assert!(s.contains("1: (G0[1], G1[1], G2[1])"));
    }

    #[test]
    #[should_panic(expected = "two members of gender")]
    fn class_with_gender_collision_rejected() {
        // {0, 1, 4}: two members of gender 0.
        let _ = KAryMatching::from_classes(3, 2, &[vec![0, 1, 4], vec![2, 3, 5]]);
    }

    #[test]
    #[should_panic(expected = "in two families")]
    fn duplicate_member_rejected() {
        let _ = KAryMatching::from_tuples(3, 2, &[vec![0, 0, 0], vec![0, 1, 1]]);
    }

    #[test]
    #[should_panic(expected = "class must have k members")]
    fn short_class_rejected() {
        let _ = KAryMatching::from_classes(3, 2, &[vec![0, 2], vec![1, 3, 5]]);
    }
}
