//! Executable demonstrations of the paper's negative/tightness results.
//!
//! * **Theorem 1** (§III-A): for every `k > 2` there are preference lists
//!   with a perfect but no stable *binary* matching —
//!   [`theorem1_verdict`] checks both halves on the adversarial
//!   construction, exhaustively for small instances and via Irving's
//!   algorithm at scale.
//! * **Theorem 4** (§IV-B): `k − 1` bindings is tight.
//!   [`overbinding_collapses`] shows the paper's 3-binding cycle merging
//!   all members into one class (no valid k-ary matching);
//!   [`underbinding_unstable_instance`] exhibits, for any given completion
//!   of a (k−2)-binding partial matching, preference lists that make that
//!   completion unstable.

use kmatch_graph::UnionFind;
use kmatch_prefs::gen::adversarial::theorem1_roommates;
use kmatch_prefs::{GenderId, KPartiteInstance};
use kmatch_roommates::brute::{all_perfect_matchings, stable_matching_exists_brute};
use kmatch_roommates::kpartite::solve_global_binary;

use crate::binding::bind_edge;
use crate::kary::KAryMatching;

/// The two halves of Theorem 1 for the adversarial instance `(k, n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Theorem1Verdict {
    /// Does a perfect binary matching exist?
    pub perfect_exists: bool,
    /// Does a stable binary matching exist?
    pub stable_exists: bool,
}

/// Evaluate Theorem 1 on the adversarial construction.
///
/// Small instances (`k·n ≤ 12`) are checked exhaustively; larger ones use
/// Irving's algorithm for the stability half and the explicit round-robin
/// construction of the theorem's proof for the perfect-matching half.
pub fn theorem1_verdict(k: usize, n: usize) -> Theorem1Verdict {
    let inst = theorem1_roommates(k, n);
    if k * n <= 12 {
        Theorem1Verdict {
            perfect_exists: !all_perfect_matchings(&inst).is_empty(),
            stable_exists: stable_matching_exists_brute(&inst),
        }
    } else {
        Theorem1Verdict {
            // The acceptability graph is non-bipartite (k genders, any
            // cross-gender pair), so the positive half of the theorem is
            // decided by general-graph matching (Edmonds' blossom).
            perfect_exists: kmatch_graph::has_perfect_matching(&acceptability_graph(&inst)),
            stable_exists: solve_global_binary(&inst, n as u32).is_stable(),
        }
    }
}

/// The acceptability graph of a roommates instance: vertices are
/// participants, edges the mutually-acceptable pairs. Input for the
/// perfect-matching half of Theorem 1 via `kmatch_graph::matching`.
pub fn acceptability_graph(inst: &kmatch_prefs::RoommatesInstance) -> kmatch_graph::SimpleGraph {
    let n = inst.n();
    let mut g = kmatch_graph::SimpleGraph::new(n);
    for p in 0..n as u32 {
        for &q in inst.list(p) {
            if p < q {
                g.add_edge(p, q);
            }
        }
    }
    g
}

/// Run GS bindings along an explicit edge list (not necessarily a tree)
/// and return the resulting equivalence-class sizes — the paper's §IV-B
/// device for showing that `k` or more bindings (which must contain a
/// cycle) cannot yield consistent k-tuples.
pub fn binding_class_sizes(inst: &KPartiteInstance, edges: &[(u16, u16)]) -> Vec<usize> {
    let (k, n) = (inst.k(), inst.n());
    let mut uf = UnionFind::new(k * n);
    for &(i, j) in edges {
        bind_edge(inst, &mut uf, GenderId(i), GenderId(j));
    }
    let mut sizes: Vec<usize> = uf.classes().into_iter().map(|c| c.len()).collect();
    sizes.sort_unstable();
    sizes
}

/// Does binding every edge of the triangle `M−W, W−U, M−U` on the paper's
/// §IV-B cycle preferences collapse the members into inconsistent classes
/// (i.e. not `n` classes of size `k`)?
pub fn overbinding_collapses(inst: &KPartiteInstance) -> bool {
    assert_eq!(inst.k(), 3, "the paper's cycle example is ternary");
    let sizes = binding_class_sizes(inst, &[(0, 1), (1, 2), (0, 2)]);
    sizes != vec![3; inst.n()]
}

/// Build an instance showing under-binding instability: bind only `M−W`
/// (one edge, k−2 = 1 bindings for k = 3) and complete families by
/// assigning member `u_i` of the unbound gender U to the family of pair
/// `i` as given by `completion`. The returned instance makes *that*
/// completion unstable: family 0's M and W members prefer the U member
/// assigned elsewhere, and vice versa.
///
/// `completion[f]` = index of the U member joined to family `f`; must be a
/// permutation of `0..n` that is not "U member i joins the family that
/// ranks it top" — concretely, any completion is defeated because the
/// instance is built *after* seeing it (the adversary moves second, as in
/// the paper's "by assigning appropriate preference orders").
pub fn underbinding_unstable_instance(completion: &[u32]) -> (KPartiteInstance, KAryMatching) {
    let n = completion.len();
    assert!(n >= 2, "need at least two families");
    // Where does U member j end up? family_of_u[j] = f with completion[f]=j.
    let mut family_of_u = vec![0u32; n];
    for (f, &j) in completion.iter().enumerate() {
        family_of_u[j as usize] = f as u32;
    }
    // Target blocking family: family 0's (m_0, w_0) with the U member
    // u_b assigned to family 1.
    let b = completion[1];
    let ascending: Vec<u32> = (0..n as u32).collect();
    let mut lists: Vec<Vec<Vec<Vec<u32>>>> = Vec::with_capacity(3);
    // Gender 0 (M) and gender 1 (W): member i ranks its own bound partner
    // (index i) first so GS(M, W) yields the identity pairing; everyone in
    // family 0 ranks u_b first among U.
    for g in 0..2 {
        let mut gender = Vec::with_capacity(n);
        for i in 0..n as u32 {
            let own_first: Vec<u32> = std::iter::once(i)
                .chain((0..n as u32).filter(|&x| x != i))
                .collect();
            let u_order: Vec<u32> = if i == 0 {
                std::iter::once(b)
                    .chain((0..n as u32).filter(|&x| x != b))
                    .collect()
            } else {
                ascending.clone()
            };
            let mut blocks = vec![Vec::new(); 3];
            blocks[1 - g] = own_first;
            blocks[2] = u_order;
            gender.push(blocks);
        }
        lists.push(gender);
    }
    // Gender 2 (U): u_b ranks family 0's members (index 0) first; others
    // ascending.
    let mut gender_u = Vec::with_capacity(n);
    for j in 0..n as u32 {
        let order: Vec<u32> = if j == b {
            std::iter::once(0u32).chain(1..n as u32).collect()
        } else {
            ascending.clone()
        };
        gender_u.push(vec![order.clone(), order, Vec::new()]);
    }
    lists.push(gender_u);
    let inst = KPartiteInstance::from_lists(&lists).expect("constructed lists are valid");

    // The completed matching: family f = (m_f, w_f, completion[f]).
    let tuples: Vec<Vec<u32>> = (0..n as u32)
        .map(|f| vec![f, f, completion[f as usize]])
        .collect();
    let matching = KAryMatching::from_tuples(3, n, &tuples);
    (inst, matching)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::{find_blocking_family, is_kary_stable};
    use kmatch_prefs::gen::paper::theorem4_cycle_tripartite;

    #[test]
    fn theorem1_small_cases() {
        for (k, n) in [(3usize, 2usize), (3, 4), (4, 1), (4, 2), (5, 2)] {
            if (k * n) % 2 != 0 {
                continue;
            }
            let v = theorem1_verdict(k, n);
            assert!(
                v.perfect_exists,
                "k={k}, n={n}: perfect matching must exist"
            );
            assert!(
                !v.stable_exists,
                "k={k}, n={n}: no stable binary matching may exist"
            );
        }
    }

    #[test]
    fn theorem1_at_scale_via_irving() {
        for (k, n) in [(3usize, 16usize), (6, 8), (4, 25)] {
            let v = theorem1_verdict(k, n);
            assert!(v.perfect_exists);
            assert!(!v.stable_exists, "k={k}, n={n}");
        }
    }

    #[test]
    fn blossom_agrees_with_brute_force_on_acceptability_graphs() {
        // The blossom-based perfect-matching decision must agree with
        // exhaustive enumeration on small Theorem-1 graphs, including an
        // odd-total case with NO perfect matching.
        for (k, n) in [(3usize, 2usize), (3, 3), (4, 2), (5, 2)] {
            let inst = theorem1_roommates(k, n);
            let brute = !all_perfect_matchings(&inst).is_empty();
            let blossom = kmatch_graph::has_perfect_matching(&acceptability_graph(&inst));
            assert_eq!(brute, blossom, "k={k}, n={n}");
        }
    }

    #[test]
    fn theorem1_verdict_scales_with_blossom() {
        // Larger than brute force could touch; both halves decided in
        // polynomial time.
        for (k, n) in [(3usize, 40usize), (6, 20), (10, 12)] {
            let v = theorem1_verdict(k, n);
            assert!(v.perfect_exists, "k={k}, n={n}");
            assert!(!v.stable_exists, "k={k}, n={n}");
        }
    }

    #[test]
    fn overbinding_cycle_collapses_classes() {
        // §IV-B: "it is impossible to perform three binary bindings and
        // maintain their stability" — the three pairwise-stable GS
        // matchings merge all six members into one class.
        let inst = theorem4_cycle_tripartite();
        assert!(overbinding_collapses(&inst));
        let sizes = binding_class_sizes(&inst, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(sizes, vec![6], "the cycle welds everything together");
        // Whereas any two of the three bindings are consistent.
        assert_eq!(binding_class_sizes(&inst, &[(0, 1), (1, 2)]), vec![3, 3]);
        assert_eq!(binding_class_sizes(&inst, &[(0, 1), (0, 2)]), vec![3, 3]);
        assert_eq!(binding_class_sizes(&inst, &[(1, 2), (0, 2)]), vec![3, 3]);
    }

    #[test]
    fn underbinding_every_completion_unstable() {
        // k = 3, one binding (M−W) fixes pairs; for EVERY way of joining
        // the U members there are preferences making it unstable.
        for completion in [vec![0u32, 1], vec![1, 0], vec![2, 0, 1], vec![0, 2, 1]] {
            let (inst, matching) = underbinding_unstable_instance(&completion);
            let bf = find_blocking_family(&inst, &matching)
                .expect("completion must be blocked by construction");
            assert!(bf.source_families.len() >= 2);
            assert!(!is_kary_stable(&inst, &matching));
        }
    }

    #[test]
    fn underbinding_instance_respects_mw_binding() {
        // The constructed preferences must be consistent with the M−W
        // binding (GS(M, W) pairs i with i).
        let (inst, _) = underbinding_unstable_instance(&[1, 0]);
        let tree = kmatch_graph::BindingTree::new(3, vec![(0, 1), (1, 2)]).unwrap();
        let m = crate::binding::bind(&inst, &tree);
        for f in m.family_ids() {
            assert_eq!(m.family(f)[0], m.family(f)[1], "M−W binds identity pairs");
        }
    }
}
