//! Property suite for Theorem 3's proposal bound: iterative binding over
//! any binding tree performs at most `(k−1)·n²` proposals in total, and
//! no single binding edge exceeds the bipartite GS worst case of `n²`.
//! The metered driver re-checks the aggregate bound at run time
//! (`theorem3_check`), so this suite also pins that the empirical
//! validator never fires on uniform instances. All randomness is seeded
//! `rand_chacha` driven by the deterministic proptest case stream.

use kmatch_core::bind_metered;
use kmatch_graph::{random_tree, BindingTree};
use kmatch_obs::SolverMetrics;
use kmatch_prefs::gen::uniform::uniform_kpartite;
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn per_edge_and_total_proposals_respect_theorem3(
        k in 2usize..6,
        n in 1usize..10,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_kpartite(k, n, &mut rng);
        let tree = random_tree(k, &mut rng);

        let mut m = SolverMetrics::new();
        let outcome = bind_metered(&inst, &tree, &mut m);

        let per_edge_cap = (n * n) as u64;
        for stats in &outcome.per_edge {
            prop_assert!(
                stats.proposals <= per_edge_cap,
                "edge ran {} proposals, above the bipartite cap {}",
                stats.proposals,
                per_edge_cap
            );
        }
        let total: u64 = outcome.per_edge.iter().map(|s| s.proposals).sum();
        let bound = ((k - 1) * n * n) as u64;
        prop_assert!(total <= bound, "total {} exceeds (k-1)n² = {}", total, bound);

        // The metered driver's own empirical validator must agree.
        prop_assert_eq!(m.theorem3_checks, 1);
        prop_assert_eq!(m.theorem3_violations, 0);
        prop_assert_eq!(m.binding_edges, (k - 1) as u64);
        prop_assert_eq!(m.proposals, total);
        prop_assert_eq!(m.proposals_per_edge.sum(), total);
        prop_assert!(m.proposals_per_edge.max() <= per_edge_cap);
    }

    fn star_and_path_trees_also_respect_the_bound(
        k in 3usize..7,
        n in 1usize..8,
        seed in 0u64..1 << 32,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_kpartite(k, n, &mut rng);
        let bound = ((k - 1) * n * n) as u64;
        for tree in [BindingTree::path(k), BindingTree::star(k, 0)] {
            let mut m = SolverMetrics::new();
            bind_metered(&inst, &tree, &mut m);
            prop_assert!(m.proposals <= bound);
            prop_assert_eq!(m.theorem3_violations, 0);
        }
    }
}
