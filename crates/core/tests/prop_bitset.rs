//! Differential property suite for the bitset blocking-family verifier.
//!
//! `find_blocking_family_bitset` must agree with the exhaustive naive
//! enumerator on stability (`is_some`) and with the pruned reference DFS
//! on the *exact* blocking family (both return the lexicographically
//! least tuple), for stable matchings produced by iterative binding and
//! for arbitrary matchings alike. All randomness is seeded `rand_chacha`
//! driven by the deterministic proptest case stream.

use kmatch_core::{
    bind, find_blocking_family, find_blocking_family_bitset, find_blocking_family_naive,
    KAryMatching,
};
use kmatch_graph::random_tree;
use kmatch_prefs::gen::uniform::uniform_kpartite;
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A uniformly random k-ary matching: one random permutation per gender,
/// family `f` holding the `f`-th element of each.
fn random_matching(k: usize, n: usize, rng: &mut ChaCha8Rng) -> KAryMatching {
    let mut perms: Vec<Vec<u32>> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut p: Vec<u32> = (0..n as u32).collect();
        p.shuffle(rng);
        perms.push(p);
    }
    let tuples: Vec<Vec<u32>> = (0..n)
        .map(|f| (0..k).map(|g| perms[g][f]).collect())
        .collect();
    KAryMatching::from_tuples(k, n, &tuples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn bitset_agrees_on_bound_matchings(k in 2usize..5, n in 1usize..5, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_kpartite(k, n, &mut rng);
        let tree = random_tree(k, &mut rng);
        let matching = bind(&inst, &tree);
        let naive = find_blocking_family_naive(&inst, &matching);
        let bitset = find_blocking_family_bitset(&inst, &matching);
        prop_assert_eq!(bitset.is_some(), naive.is_some());
        prop_assert_eq!(&bitset, &find_blocking_family(&inst, &matching));
        // Theorem 2: iterative binding always yields a stable matching.
        prop_assert!(bitset.is_none());
    }

    fn bitset_agrees_on_arbitrary_matchings(k in 2usize..5, n in 1usize..5, seed in 0u64..1 << 32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_kpartite(k, n, &mut rng);
        let matching = random_matching(k, n, &mut rng);
        let naive = find_blocking_family_naive(&inst, &matching);
        let bitset = find_blocking_family_bitset(&inst, &matching);
        prop_assert_eq!(bitset.is_some(), naive.is_some());
        // Exact agreement with the reference DFS — both return the
        // lexicographically least blocking tuple.
        prop_assert_eq!(&bitset, &find_blocking_family(&inst, &matching));
    }

    fn bitset_agrees_across_word_boundary(n in 60usize..70, seed in 0u64..1 << 32) {
        // Bipartite (k = 2) instances big enough that the per-gender
        // candidate sets span two 64-bit words; the naive enumerator is
        // still tractable at n² tuples.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inst = uniform_kpartite(2, n, &mut rng);
        let matching = random_matching(2, n, &mut rng);
        let naive = find_blocking_family_naive(&inst, &matching);
        let bitset = find_blocking_family_bitset(&inst, &matching);
        prop_assert_eq!(bitset.is_some(), naive.is_some());
        prop_assert_eq!(&bitset, &find_blocking_family(&inst, &matching));
    }
}
