//! Span timelines of Algorithm 1's iterative binding: one `bind.edge`
//! span per tree edge, each enclosing that edge's GS spans.

use kmatch_core::{bind_metered, bind_spanned};
use kmatch_graph::BindingTree;
use kmatch_obs::{ManualClock, NoMetrics};
use kmatch_prefs::gen::uniform::uniform_kpartite;
use kmatch_trace::{check_well_formed, span, EventKind, NoSpans, TraceRecorder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn one_edge_span_per_tree_edge_in_order() {
    let mut rng = ChaCha8Rng::seed_from_u64(71);
    let (k, n) = (4usize, 6usize);
    let inst = uniform_kpartite(k, n, &mut rng);
    let tree = BindingTree::path(k);
    let clock = ManualClock::new();
    let mut rec = TraceRecorder::new(&clock);
    bind_spanned(&inst, &tree, &mut NoMetrics, &mut rec);
    let events = rec.events();
    check_well_formed(events, false).unwrap();
    let edge_args: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin && e.name == span::BIND_EDGE)
        .map(|e| e.arg)
        .collect();
    assert_eq!(edge_args, vec![0, 1, 2], "one span per edge, in tree order");
    // Each edge span encloses a full GS solve.
    let solves = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin && e.name == span::GS_SOLVE)
        .count();
    assert_eq!(solves, k - 1);
}

#[test]
fn spanned_matches_metered_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(72);
    for (k, n) in [(3usize, 8usize), (5, 5)] {
        let inst = uniform_kpartite(k, n, &mut rng);
        let tree = BindingTree::star(k, 0);
        let clock = ManualClock::new();
        let mut rec = TraceRecorder::new(&clock);
        let spanned = bind_spanned(&inst, &tree, &mut NoMetrics, &mut rec);
        let plain = bind_metered(&inst, &tree, &mut NoMetrics);
        assert_eq!(spanned.matching, plain.matching);
        assert_eq!(spanned.per_edge, plain.per_edge);
        check_well_formed(rec.events(), false).unwrap();
    }
}

#[test]
fn nospans_sink_is_a_noop_instantiation() {
    let mut rng = ChaCha8Rng::seed_from_u64(73);
    let inst = uniform_kpartite(3, 6, &mut rng);
    let tree = BindingTree::path(3);
    let a = bind_spanned(&inst, &tree, &mut NoMetrics, &mut NoSpans);
    let b = bind_metered(&inst, &tree, &mut NoMetrics);
    assert_eq!(a.matching, b.matching);
}
