//! Serde DTOs for instances (feature `serde`, default-on).
//!
//! Instances serialize through explicit, human-editable DTOs rather than
//! their dense internal tables, so JSON files written by the CLI remain
//! readable and stable across internal representation changes.

use serde::impl_json_struct;

use crate::{
    BipartiteInstance, DeltaSide, KPartiteInstance, PrefDelta, PrefsError, RoommatesInstance,
};

/// Serializable form of a [`KPartiteInstance`]: nested best-to-worst lists,
/// `lists[g][i][h]` with an empty self block.
#[derive(Debug, Clone)]
pub struct KPartiteDto {
    /// Number of genders.
    pub k: usize,
    /// Members per gender.
    pub n: usize,
    /// `lists[g][i][h]` — member `(g, i)`'s ordering of gender `h`.
    pub lists: Vec<Vec<Vec<Vec<u32>>>>,
}

impl_json_struct!(KPartiteDto { k, n, lists });

impl From<&KPartiteInstance> for KPartiteDto {
    fn from(inst: &KPartiteInstance) -> Self {
        KPartiteDto {
            k: inst.k(),
            n: inst.n(),
            lists: inst.to_lists(),
        }
    }
}

impl TryFrom<KPartiteDto> for KPartiteInstance {
    type Error = PrefsError;

    fn try_from(dto: KPartiteDto) -> Result<Self, PrefsError> {
        let inst = KPartiteInstance::from_lists(&dto.lists)?;
        if inst.k() != dto.k {
            return Err(PrefsError::ShapeMismatch {
                what: "declared k",
                expected: dto.k,
                actual: inst.k(),
            });
        }
        if inst.n() != dto.n {
            return Err(PrefsError::ShapeMismatch {
                what: "declared n",
                expected: dto.n,
                actual: inst.n(),
            });
        }
        Ok(inst)
    }
}

/// Serializable form of a [`BipartiteInstance`].
#[derive(Debug, Clone)]
pub struct BipartiteDto {
    /// Members per side.
    pub n: usize,
    /// Proposer lists, best first.
    pub proposers: Vec<Vec<u32>>,
    /// Responder lists, best first.
    pub responders: Vec<Vec<u32>>,
}

impl_json_struct!(BipartiteDto { n, proposers, responders });

impl From<&BipartiteInstance> for BipartiteDto {
    fn from(inst: &BipartiteInstance) -> Self {
        let n = inst.n();
        BipartiteDto {
            n,
            proposers: (0..n as u32)
                .map(|m| inst.proposer_list(m).to_vec())
                .collect(),
            responders: (0..n as u32)
                .map(|w| inst.responder_list(w).to_vec())
                .collect(),
        }
    }
}

impl TryFrom<BipartiteDto> for BipartiteInstance {
    type Error = PrefsError;

    fn try_from(dto: BipartiteDto) -> Result<Self, PrefsError> {
        BipartiteInstance::from_lists(&dto.proposers, &dto.responders)
    }
}

/// Serializable form of a [`RoommatesInstance`].
#[derive(Debug, Clone)]
pub struct RoommatesDto {
    /// Number of participants.
    pub n: usize,
    /// Acceptable partners per participant, best first.
    pub lists: Vec<Vec<u32>>,
}

impl_json_struct!(RoommatesDto { n, lists });

impl From<&RoommatesInstance> for RoommatesDto {
    fn from(inst: &RoommatesInstance) -> Self {
        RoommatesDto {
            n: inst.n(),
            lists: inst.to_lists(),
        }
    }
}

impl TryFrom<RoommatesDto> for RoommatesInstance {
    type Error = PrefsError;

    fn try_from(dto: RoommatesDto) -> Result<Self, PrefsError> {
        RoommatesInstance::from_lists(dto.lists)
    }
}

/// Serializable form of a [`PrefDelta`], flattened so the JSON shim's
/// all-fields-required object mapping applies: `op` selects the variant
/// (`"set_row"`, `"swap"`, `"splice"`), unused operand fields are zero /
/// empty by convention.
#[derive(Debug, Clone)]
pub struct PrefDeltaDto {
    /// `"set_row"`, `"swap"`, or `"splice"`.
    pub op: String,
    /// `"proposer"` or `"responder"`.
    pub side: String,
    /// Row (member) index the delta rewrites.
    pub row: u32,
    /// New full ordering (`set_row` only; empty otherwise).
    pub prefs: Vec<u32>,
    /// First swap position (`swap` only).
    pub a: u32,
    /// Second swap position (`swap` only).
    pub b: u32,
    /// Source position (`splice` only).
    pub from: u32,
    /// Destination position (`splice` only).
    pub to: u32,
}

impl_json_struct!(PrefDeltaDto { op, side, row, prefs, a, b, from, to });

impl From<&PrefDelta> for PrefDeltaDto {
    fn from(delta: &PrefDelta) -> Self {
        let side = match delta.side() {
            DeltaSide::Proposer => "proposer",
            DeltaSide::Responder => "responder",
        }
        .to_string();
        let mut dto = PrefDeltaDto {
            op: String::new(),
            side,
            row: delta.row(),
            prefs: Vec::new(),
            a: 0,
            b: 0,
            from: 0,
            to: 0,
        };
        match delta {
            PrefDelta::SetRow { prefs, .. } => {
                dto.op = "set_row".to_string();
                dto.prefs = prefs.clone();
            }
            PrefDelta::Swap { a, b, .. } => {
                dto.op = "swap".to_string();
                dto.a = *a;
                dto.b = *b;
            }
            PrefDelta::Splice { from, to, .. } => {
                dto.op = "splice".to_string();
                dto.from = *from;
                dto.to = *to;
            }
        }
        dto
    }
}

impl TryFrom<&PrefDeltaDto> for PrefDelta {
    type Error = String;

    fn try_from(dto: &PrefDeltaDto) -> Result<Self, String> {
        let side = match dto.side.as_str() {
            "proposer" => DeltaSide::Proposer,
            "responder" => DeltaSide::Responder,
            other => return Err(format!("unknown delta side `{other}`")),
        };
        let row = dto.row;
        match dto.op.as_str() {
            "set_row" => Ok(PrefDelta::SetRow {
                side,
                row,
                prefs: dto.prefs.clone(),
            }),
            "swap" => Ok(PrefDelta::Swap {
                side,
                row,
                a: dto.a,
                b: dto.b,
            }),
            "splice" => Ok(PrefDelta::Splice {
                side,
                row,
                from: dto.from,
                to: dto.to,
            }),
            other => Err(format!("unknown delta op `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::paper::{fig3_tripartite, section3b_left};

    #[test]
    fn kpartite_json_roundtrip() {
        let inst = fig3_tripartite();
        let dto = KPartiteDto::from(&inst);
        let json = serde_json::to_string(&dto).unwrap();
        let back: KPartiteDto = serde_json::from_str(&json).unwrap();
        let inst2 = KPartiteInstance::try_from(back).unwrap();
        assert_eq!(inst, inst2);
    }

    #[test]
    fn roommates_json_roundtrip() {
        let inst = section3b_left();
        let dto = RoommatesDto::from(&inst);
        let json = serde_json::to_string(&dto).unwrap();
        let back: RoommatesDto = serde_json::from_str(&json).unwrap();
        assert_eq!(RoommatesInstance::try_from(back).unwrap(), inst);
    }

    #[test]
    fn dto_shape_mismatch_detected() {
        let inst = fig3_tripartite();
        let mut dto = KPartiteDto::from(&inst);
        dto.k = 7;
        assert!(KPartiteInstance::try_from(dto).is_err());
    }

    #[test]
    fn delta_json_roundtrip_all_ops() {
        let deltas = vec![
            PrefDelta::SetRow {
                side: DeltaSide::Proposer,
                row: 2,
                prefs: vec![3, 0, 1, 2],
            },
            PrefDelta::Swap {
                side: DeltaSide::Responder,
                row: 1,
                a: 0,
                b: 3,
            },
            PrefDelta::Splice {
                side: DeltaSide::Proposer,
                row: 0,
                from: 3,
                to: 1,
            },
        ];
        for delta in deltas {
            let dto = PrefDeltaDto::from(&delta);
            let json = serde_json::to_string(&dto).unwrap();
            let back: PrefDeltaDto = serde_json::from_str(&json).unwrap();
            assert_eq!(PrefDelta::try_from(&back).unwrap(), delta);
        }
    }

    #[test]
    fn bad_delta_dto_is_rejected() {
        let delta = PrefDelta::Swap {
            side: DeltaSide::Proposer,
            row: 0,
            a: 0,
            b: 1,
        };
        let mut dto = PrefDeltaDto::from(&delta);
        dto.op = "reverse".to_string();
        assert!(PrefDelta::try_from(&dto).is_err());
        let mut dto = PrefDeltaDto::from(&delta);
        dto.side = "middle".to_string();
        assert!(PrefDelta::try_from(&dto).is_err());
    }

    #[test]
    fn bipartite_json_roundtrip() {
        let inst = crate::gen::paper::example1_second();
        let dto = BipartiteDto::from(&inst);
        let json = serde_json::to_string(&dto).unwrap();
        let back: BipartiteDto = serde_json::from_str(&json).unwrap();
        assert_eq!(BipartiteInstance::try_from(back).unwrap(), inst);
    }
}
