//! Zero-copy bipartite views.
//!
//! The Gale–Shapley engine in `kmatch-gs` is generic over
//! [`BipartitePrefs`], so it can run on:
//!
//! * an owned [`crate::BipartiteInstance`] (classic SMP),
//! * a [`KPartitePairView`] borrowing two genders of a
//!   [`crate::KPartiteInstance`] — the `GS(i, j)` primitive of the paper's
//!   Algorithm 1, without copying any preference data,
//! * a [`ReverseView`] that swaps proposer/responder roles (used to compute
//!   the responder-optimal matching and fairness metrics).

use crate::ids::{GenderId, Member, Rank};
use crate::{BipartiteInstance, KPartiteInstance};

/// Read-only bipartite preference access, sufficient to run Gale–Shapley.
///
/// Side conventions: *proposers* are indexed `0..n` and propose in the order
/// given by [`BipartitePrefs::proposer_list`]; *responders* accept or reject
/// based on [`BipartitePrefs::responder_rank`].
pub trait BipartitePrefs {
    /// Whether `proposer_rank` is backed by an O(1) inverse rank table.
    ///
    /// Implementors that override [`BipartitePrefs::proposer_rank`] with a
    /// table lookup must set this to `true`; the default `proposer_rank`
    /// then guards (in debug builds) against the O(n) scan silently
    /// reappearing on a hot path if an override is ever removed.
    const HAS_RANK_TABLE: bool = false;

    /// Members per side.
    fn n(&self) -> usize;

    /// Proposer `m`'s preference list over responders, best first.
    fn proposer_list(&self, m: u32) -> &[u32];

    /// Rank of proposer `m` in responder `w`'s list (0 = best).
    fn responder_rank(&self, w: u32, m: u32) -> Rank;

    /// Rank of responder `w` in proposer `m`'s list (0 = best).
    ///
    /// Default implementation scans the proposer list; implementors with a
    /// rank table should override (and advertise it via
    /// [`BipartitePrefs::HAS_RANK_TABLE`]).
    fn proposer_rank(&self, m: u32, w: u32) -> Rank {
        debug_assert!(
            !Self::HAS_RANK_TABLE,
            "type advertises a rank table but fell back to the O(n) list scan; \
             restore its proposer_rank override"
        );
        self.proposer_list(m)
            .iter()
            .position(|&x| x == w)
            .expect("responder must appear in complete list") as Rank
    }

    /// Packed proposal entry for proposer `m`'s list position `pos`:
    /// `responder_rank(w, m) << 32 | w`, where `w` is the responder at
    /// that position.
    ///
    /// This is the one datum Gale–Shapley needs per proposal — who to
    /// propose to and how that responder ranks the proposer — fused into
    /// one word so arena-backed implementors (see `CsrPrefs` in this
    /// crate) can serve it with a single sequential load instead of a
    /// list load plus a random rank-table load. The default computes it
    /// from [`BipartitePrefs::proposer_list`] and
    /// [`BipartitePrefs::responder_rank`]; overrides must return exactly
    /// that value.
    #[inline]
    fn proposal_entry(&self, m: u32, pos: u32) -> u64 {
        let w = self.proposer_list(m)[pos as usize];
        (self.responder_rank(w, m) as u64) << 32 | w as u64
    }

    /// Does responder `w` strictly prefer proposer `a` over proposer `b`?
    #[inline]
    fn responder_prefers(&self, w: u32, a: u32, b: u32) -> bool {
        self.responder_rank(w, a) < self.responder_rank(w, b)
    }

    /// Does proposer `m` strictly prefer responder `a` over responder `b`?
    #[inline]
    fn proposer_prefers(&self, m: u32, a: u32, b: u32) -> bool {
        self.proposer_rank(m, a) < self.proposer_rank(m, b)
    }
}

impl BipartitePrefs for BipartiteInstance {
    const HAS_RANK_TABLE: bool = true;

    #[inline]
    fn n(&self) -> usize {
        BipartiteInstance::n(self)
    }

    #[inline]
    fn proposer_list(&self, m: u32) -> &[u32] {
        BipartiteInstance::proposer_list(self, m)
    }

    #[inline]
    fn responder_rank(&self, w: u32, m: u32) -> Rank {
        BipartiteInstance::responder_rank(self, w, m)
    }

    #[inline]
    fn proposer_rank(&self, m: u32, w: u32) -> Rank {
        BipartiteInstance::proposer_rank(self, m, w)
    }
}

/// Borrowed view of one ordered gender pair of a k-partite instance.
///
/// `proposer` plays the "men" role of the GS algorithm, `responder` the
/// "women" role. Constructing the view is O(1); all lookups go straight to
/// the instance's dense tables.
#[derive(Debug, Clone, Copy)]
pub struct KPartitePairView<'a> {
    instance: &'a KPartiteInstance,
    proposer: GenderId,
    responder: GenderId,
}

impl<'a> KPartitePairView<'a> {
    /// Create the `GS(proposer, responder)` view.
    ///
    /// # Panics
    /// If the two genders are equal.
    pub fn new(instance: &'a KPartiteInstance, proposer: GenderId, responder: GenderId) -> Self {
        assert_ne!(
            proposer, responder,
            "a pair view needs two distinct genders"
        );
        KPartitePairView {
            instance,
            proposer,
            responder,
        }
    }

    /// The proposer gender.
    pub fn proposer_gender(&self) -> GenderId {
        self.proposer
    }

    /// The responder gender.
    pub fn responder_gender(&self) -> GenderId {
        self.responder
    }
}

impl BipartitePrefs for KPartitePairView<'_> {
    const HAS_RANK_TABLE: bool = true;

    #[inline]
    fn n(&self) -> usize {
        self.instance.n()
    }

    #[inline]
    fn proposer_list(&self, m: u32) -> &[u32] {
        self.instance.pref_list(
            Member {
                gender: self.proposer,
                index: m,
            },
            self.responder,
        )
    }

    #[inline]
    fn responder_rank(&self, w: u32, m: u32) -> Rank {
        self.instance.rank_of(
            Member {
                gender: self.responder,
                index: w,
            },
            self.proposer,
            m,
        )
    }

    #[inline]
    fn proposer_rank(&self, m: u32, w: u32) -> Rank {
        self.instance.rank_of(
            Member {
                gender: self.proposer,
                index: m,
            },
            self.responder,
            w,
        )
    }
}

/// Role-swapping adapter: proposers of the inner view become responders.
///
/// `ReverseView(inner)` lets the GS engine produce the responder-optimal
/// matching of `inner` with no data movement.
#[derive(Debug, Clone, Copy)]
pub struct ReverseView<'a, P: BipartitePrefs> {
    inner: &'a P,
}

impl<'a, P: BipartitePrefs> ReverseView<'a, P> {
    /// Wrap `inner` with swapped roles.
    pub fn new(inner: &'a P) -> Self {
        ReverseView { inner }
    }
}

impl<P: BipartitePrefs + ResponderListSlice> BipartitePrefs for ReverseView<'_, P> {
    // The reversed ranks come from the inner type's responder table.
    const HAS_RANK_TABLE: bool = P::HAS_RANK_TABLE;

    #[inline]
    fn n(&self) -> usize {
        self.inner.n()
    }

    /// Note: the inner type may not store responder lists contiguously, so
    /// this view cannot return a borrowed slice in general. We require the
    /// inner type to be a [`BipartiteInstance`]-like storage; for the
    /// supported types in this crate the responder lists *are* contiguous.
    #[inline]
    fn proposer_list(&self, m: u32) -> &[u32] {
        self.inner.responder_list_slice(m)
    }

    #[inline]
    fn responder_rank(&self, w: u32, m: u32) -> Rank {
        self.inner.proposer_rank(w, m)
    }

    #[inline]
    fn proposer_rank(&self, m: u32, w: u32) -> Rank {
        self.inner.responder_rank(m, w)
    }
}

/// Extension trait: types whose responder lists are stored contiguously and
/// can therefore serve as proposer lists of a [`ReverseView`].
pub trait ResponderListSlice {
    /// Responder `w`'s preference list over proposers, best first.
    fn responder_list_slice(&self, w: u32) -> &[u32];
}

impl ResponderListSlice for BipartiteInstance {
    #[inline]
    fn responder_list_slice(&self, w: u32) -> &[u32] {
        self.responder_list(w)
    }
}

impl ResponderListSlice for KPartitePairView<'_> {
    #[inline]
    fn responder_list_slice(&self, w: u32) -> &[u32] {
        self.instance.pref_list(
            Member {
                gender: self.responder,
                index: w,
            },
            self.proposer,
        )
    }
}

impl<P: BipartitePrefs> ReverseView<'_, P> {
    /// Accessor used internally; kept public for symmetry in tests.
    #[inline]
    pub fn inner(&self) -> &P {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::paper::{example1_first, fig3_tripartite};

    #[test]
    fn pair_view_matches_extract_pair() {
        let inst = fig3_tripartite();
        let view = KPartitePairView::new(&inst, GenderId(1), GenderId(2));
        let owned = inst.extract_pair(GenderId(1), GenderId(2));
        for i in 0..2u32 {
            assert_eq!(
                view.proposer_list(i),
                BipartitePrefs::proposer_list(&owned, i)
            );
            for j in 0..2u32 {
                assert_eq!(
                    view.responder_rank(i, j),
                    BipartitePrefs::responder_rank(&owned, i, j)
                );
                assert_eq!(
                    view.proposer_rank(i, j),
                    BipartitePrefs::proposer_rank(&owned, i, j)
                );
            }
        }
    }

    #[test]
    fn reverse_view_swaps_roles() {
        let inst = example1_first();
        let rev = ReverseView::new(&inst);
        assert_eq!(rev.n(), 2);
        for w in 0..2u32 {
            assert_eq!(rev.proposer_list(w), inst.responder_list(w));
            for m in 0..2u32 {
                assert_eq!(rev.responder_rank(m, w), inst.proposer_rank(m, w));
            }
        }
    }

    #[test]
    #[should_panic(expected = "distinct genders")]
    fn pair_view_rejects_same_gender() {
        let inst = fig3_tripartite();
        let _ = KPartitePairView::new(&inst, GenderId(1), GenderId(1));
    }

    #[test]
    fn default_proposer_rank_scans() {
        // Exercise the default-method path through a minimal adapter.
        struct Tiny;
        impl BipartitePrefs for Tiny {
            fn n(&self) -> usize {
                2
            }
            fn proposer_list(&self, m: u32) -> &[u32] {
                if m == 0 {
                    &[1, 0]
                } else {
                    &[0, 1]
                }
            }
            fn responder_rank(&self, _w: u32, m: u32) -> Rank {
                m
            }
        }
        assert_eq!(Tiny.proposer_rank(0, 1), 0);
        assert_eq!(Tiny.proposer_rank(0, 0), 1);
        assert!(Tiny.proposer_prefers(0, 1, 0));
        assert!(Tiny.responder_prefers(0, 0, 1));
    }
}
