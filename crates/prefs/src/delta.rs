//! Preference deltas — the unit of change for incremental re-solving.
//!
//! Real traffic arrives as small edits: one member re-ranks one list. A
//! [`PrefDelta`] names exactly one preference row of a bipartite instance
//! and how it changes, so the warm-start machinery in `kmatch-gs` and
//! `kmatch-incremental` can reason about *which rows are dirty* instead of
//! re-deriving everything from scratch. Three shapes cover the tests and
//! the CLI `delta` subcommand:
//!
//! * [`PrefDelta::SetRow`] — replace the whole row with a new permutation;
//! * [`PrefDelta::Swap`] — exchange the entries at two positions;
//! * [`PrefDelta::Splice`] — remove the entry at one position and
//!   re-insert it at another (everything between shifts by one).
//!
//! All three are *row-local*: applying a delta touches one preference list
//! and its inverse rank row, in O(n). [`BipartiteInstance::apply_delta`]
//! mutates an instance in place; `CsrPrefs::apply_delta` (in
//! [`crate::csr`]) re-derives the affected arena rows from the mutated
//! source without a full reload.
//!
//! [`BipartiteInstance::apply_delta`]: crate::BipartiteInstance::apply_delta

use crate::error::PrefsError;
use crate::ids::Rank;

/// Which side of a bipartite instance a [`PrefDelta`] touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaSide {
    /// Side 0 — the proposers ("men").
    Proposer,
    /// Side 1 — the responders ("women").
    Responder,
}

/// A single-row edit to a bipartite preference instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefDelta {
    /// Replace `row`'s preference list with `prefs` (a permutation of
    /// `0..n`).
    SetRow {
        /// Side the row lives on.
        side: DeltaSide,
        /// Row (member) index.
        row: u32,
        /// The new best-to-worst ordering.
        prefs: Vec<u32>,
    },
    /// Swap the entries at positions `a` and `b` of `row`'s list.
    Swap {
        /// Side the row lives on.
        side: DeltaSide,
        /// Row (member) index.
        row: u32,
        /// First position.
        a: u32,
        /// Second position.
        b: u32,
    },
    /// Remove the entry at position `from` and re-insert it at position
    /// `to`; entries between the two positions shift by one.
    Splice {
        /// Side the row lives on.
        side: DeltaSide,
        /// Row (member) index.
        row: u32,
        /// Position the entry is taken from.
        from: u32,
        /// Position it is re-inserted at.
        to: u32,
    },
}

impl PrefDelta {
    /// The side whose row this delta rewrites.
    pub fn side(&self) -> DeltaSide {
        match self {
            PrefDelta::SetRow { side, .. }
            | PrefDelta::Swap { side, .. }
            | PrefDelta::Splice { side, .. } => *side,
        }
    }

    /// The row (member index) this delta rewrites — the one dirty row.
    pub fn row(&self) -> u32 {
        match self {
            PrefDelta::SetRow { row, .. }
            | PrefDelta::Swap { row, .. }
            | PrefDelta::Splice { row, .. } => *row,
        }
    }

    /// Apply this delta to one preference-list row in place.
    ///
    /// `owner` is only used to label validation errors. The caller is
    /// responsible for re-inverting the matching rank row afterwards.
    pub(crate) fn apply_to_row(
        &self,
        list: &mut [u32],
        owner: (usize, usize),
        over: usize,
    ) -> Result<(), PrefsError> {
        let n = list.len();
        let pos = |p: u32, what: &'static str| -> Result<usize, PrefsError> {
            let p = p as usize;
            if p < n {
                Ok(p)
            } else {
                Err(PrefsError::ShapeMismatch {
                    what,
                    expected: n,
                    actual: p,
                })
            }
        };
        match self {
            PrefDelta::SetRow { prefs, .. } => {
                let mut seen = vec![false; n];
                if !crate::bipartite::check_permutation(prefs, n, &mut seen) {
                    return Err(PrefsError::NotAPermutation { owner, over });
                }
                list.copy_from_slice(prefs);
            }
            PrefDelta::Swap { a, b, .. } => {
                list.swap(pos(*a, "delta swap position")?, pos(*b, "delta swap position")?);
            }
            PrefDelta::Splice { from, to, .. } => {
                let from = pos(*from, "delta splice position")?;
                let to = pos(*to, "delta splice position")?;
                if from <= to {
                    list[from..=to].rotate_left(1);
                } else {
                    list[to..=from].rotate_right(1);
                }
            }
        }
        Ok(())
    }
}

/// Re-invert one preference-list row into its rank row: after a delta,
/// `ranks[base + member] = position` for every member of the list.
pub(crate) fn reinvert_row(list: &[u32], ranks: &mut [Rank]) {
    for (r, &member) in list.iter().enumerate() {
        ranks[member as usize] = r as Rank;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BipartiteInstance;

    fn inst4() -> BipartiteInstance {
        let rows = vec![
            vec![0, 1, 2, 3],
            vec![1, 2, 3, 0],
            vec![2, 3, 0, 1],
            vec![3, 0, 1, 2],
        ];
        BipartiteInstance::from_lists(&rows, &rows).unwrap()
    }

    #[test]
    fn set_row_replaces_list_and_ranks() {
        let mut inst = inst4();
        inst.apply_delta(&PrefDelta::SetRow {
            side: DeltaSide::Proposer,
            row: 1,
            prefs: vec![3, 1, 0, 2],
        })
        .unwrap();
        assert_eq!(inst.proposer_list(1), &[3, 1, 0, 2]);
        assert_eq!(inst.proposer_rank(1, 3), 0);
        assert_eq!(inst.proposer_rank(1, 2), 3);
        // Other rows untouched.
        assert_eq!(inst.proposer_list(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn swap_and_splice_rewrite_one_row() {
        let mut inst = inst4();
        inst.apply_delta(&PrefDelta::Swap {
            side: DeltaSide::Responder,
            row: 2,
            a: 0,
            b: 3,
        })
        .unwrap();
        assert_eq!(inst.responder_list(2), &[1, 3, 0, 2]);
        assert_eq!(inst.responder_rank(2, 1), 0);

        inst.apply_delta(&PrefDelta::Splice {
            side: DeltaSide::Responder,
            row: 2,
            from: 3,
            to: 0,
        })
        .unwrap();
        assert_eq!(inst.responder_list(2), &[2, 1, 3, 0]);
        assert_eq!(inst.responder_rank(2, 2), 0);

        inst.apply_delta(&PrefDelta::Splice {
            side: DeltaSide::Responder,
            row: 2,
            from: 0,
            to: 2,
        })
        .unwrap();
        assert_eq!(inst.responder_list(2), &[1, 3, 2, 0]);
    }

    #[test]
    fn bad_deltas_are_rejected() {
        let mut inst = inst4();
        assert!(inst
            .apply_delta(&PrefDelta::SetRow {
                side: DeltaSide::Proposer,
                row: 0,
                prefs: vec![0, 0, 1, 2],
            })
            .is_err());
        assert!(inst
            .apply_delta(&PrefDelta::Swap {
                side: DeltaSide::Proposer,
                row: 9,
                a: 0,
                b: 1,
            })
            .is_err());
        assert!(inst
            .apply_delta(&PrefDelta::Splice {
                side: DeltaSide::Proposer,
                row: 0,
                from: 4,
                to: 0,
            })
            .is_err());
        // Failed deltas leave the instance untouched.
        assert_eq!(inst, inst4());
    }
}
