//! Reusable CSR preference arenas for the zero-allocation solver hot path.
//!
//! [`CsrPrefs`] snapshots any [`BipartitePrefs`] view into five contiguous
//! arrays — proposer lists, responder lists, two *half-width* (`u16`)
//! inverse rank tables, and a row of **fused proposal entries** per
//! proposer (`responder_rank << 32 | responder`, the one word Gale–Shapley
//! needs per proposal). Compared to solving through the source view
//! directly this buys two things:
//!
//! * **Locality.** A [`crate::KPartitePairView`] resolves every rank probe
//!   against the k-partite instance's dense `k·n × k·n` table (row stride
//!   `k·n`); the snapshot packs the two genders into `n × n` tables with
//!   `u16` entries. More importantly, the entry rows turn the solver's
//!   per-proposal accesses — one random list load plus one random rank
//!   load through a generic view — into a single sequential load, so the
//!   hot loop's only remaining random access is its own `n`-word holder
//!   array.
//! * **Reuse.** [`CsrPrefs::load`] only grows its buffers; in a batch loop
//!   (many instances of similar size through one arena) the steady state
//!   performs no heap allocation at all.
//!
//! Ranks are stored as `u16`, so `n` is capped at 65 536 members per side —
//! far above anything the workspace benchmarks — and checked at load time.

use crate::delta::{DeltaSide, PrefDelta};
use crate::ids::Rank;
use crate::views::{BipartitePrefs, ResponderListSlice};

/// Maximum side size a [`CsrPrefs`] arena can hold (`u16` rank range).
pub const CSR_MAX_N: usize = 1 << 16;

/// A contiguous, rank-table-backed snapshot of a bipartite preference view.
///
/// Construct once with [`CsrPrefs::new`] (or [`CsrPrefs::from_prefs`]) and
/// refill with [`CsrPrefs::load`]; the arena implements [`BipartitePrefs`]
/// and [`ResponderListSlice`], so it can be handed to the Gale–Shapley
/// engine in place of the source view.
#[derive(Debug, Clone, Default)]
pub struct CsrPrefs {
    n: usize,
    /// `proposer_lists[m * n + r]` = responder ranked `r` by proposer `m`.
    proposer_lists: Vec<u32>,
    /// `responder_lists[w * n + r]` = proposer ranked `r` by responder `w`.
    responder_lists: Vec<u32>,
    /// `proposer_ranks[m * n + w]` = rank of responder `w` for proposer `m`.
    proposer_ranks: Vec<u16>,
    /// `responder_ranks[w * n + m]` = rank of proposer `m` for responder `w`.
    responder_ranks: Vec<u16>,
    /// `entries[m * n + pos]` = *half-width* packed proposal entry
    /// `responder_rank(w, m) << 16 | w` for the responder `w` that proposer
    /// `m` ranks at `pos` — the fused datum behind
    /// [`BipartitePrefs::proposal_entry`], which widens it back to the
    /// `rank << 32 | w` wire format on load. Both halves fit 16 bits
    /// under the [`CSR_MAX_N`] cap, and halving the word doubles the
    /// entries per cache line on the solver's hottest stream (its
    /// per-proposal access here is sequential: proposers walk their rows
    /// left to right).
    entries: Vec<u32>,
}

/// Widen a half-width arena entry (`rank << 16 | responder`) to the
/// `rank << 32 | responder` wire format of
/// [`BipartitePrefs::proposal_entry`] — two ALU ops, repaying the halved
/// memory traffic many times over on arena-missing instances.
#[inline(always)]
fn widen_entry(e: u32) -> u64 {
    let e = e as u64;
    ((e & 0xFFFF_0000) << 16) | (e & 0xFFFF)
}

impl CsrPrefs {
    /// An empty arena holding no instance yet.
    pub fn new() -> Self {
        CsrPrefs::default()
    }

    /// Snapshot `prefs` into a fresh arena.
    pub fn from_prefs<P: BipartitePrefs + ResponderListSlice>(prefs: &P) -> Self {
        let mut arena = CsrPrefs::new();
        arena.load(prefs);
        arena
    }

    /// Fill the arena from `prefs`, reusing existing capacity.
    ///
    /// # Panics
    /// If `prefs.n()` exceeds [`CSR_MAX_N`].
    pub fn load<P: BipartitePrefs + ResponderListSlice>(&mut self, prefs: &P) {
        let n = prefs.n();
        assert!(
            n <= CSR_MAX_N,
            "CsrPrefs supports up to {CSR_MAX_N} members per side, got {n}"
        );
        self.n = n;
        let square = n * n;
        self.proposer_lists.clear();
        self.responder_lists.clear();
        self.proposer_lists.reserve(square);
        self.responder_lists.reserve(square);
        for m in 0..n as u32 {
            self.proposer_lists.extend_from_slice(prefs.proposer_list(m));
        }
        for w in 0..n as u32 {
            self.responder_lists
                .extend_from_slice(prefs.responder_list_slice(w));
        }
        self.proposer_ranks.clear();
        self.responder_ranks.clear();
        self.proposer_ranks.resize(square, 0);
        self.responder_ranks.resize(square, 0);
        invert_into(&self.proposer_lists, n, &mut self.proposer_ranks);
        invert_into(&self.responder_lists, n, &mut self.responder_ranks);
        self.entries.clear();
        self.entries.reserve(square);
        for m in 0..n {
            let list = &self.proposer_lists[m * n..m * n + n];
            self.entries.extend(
                list.iter()
                    .map(|&w| (self.responder_ranks[w as usize * n + m] as u32) << 16 | w),
            );
        }
    }

    /// Responder `w`'s preference list, best first.
    #[inline]
    pub fn responder_list(&self, w: u32) -> &[u32] {
        let base = w as usize * self.n;
        &self.responder_lists[base..base + self.n]
    }

    /// Re-derive the arena rows a single-row [`PrefDelta`] invalidates,
    /// reading the (already mutated) source `prefs`, in O(n) instead of
    /// the O(n²) full [`CsrPrefs::load`].
    ///
    /// The arena must currently hold a snapshot of `prefs` as it was
    /// before the delta; every row the delta does not name is left
    /// untouched.
    pub fn apply_delta<P: BipartitePrefs + ResponderListSlice>(
        &mut self,
        delta: &PrefDelta,
        prefs: &P,
    ) {
        assert_eq!(self.n, prefs.n(), "arena holds a different instance");
        match delta.side() {
            DeltaSide::Proposer => self.refresh_proposer_row(delta.row(), prefs),
            DeltaSide::Responder => self.refresh_responder_row(delta.row(), prefs),
        }
    }

    /// Recompute proposer `m`'s list, rank, and fused-entry rows from
    /// `prefs` (already mutated at that row).
    pub fn refresh_proposer_row<P: BipartitePrefs>(&mut self, m: u32, prefs: &P) {
        let n = self.n;
        let base = m as usize * n;
        self.proposer_lists[base..base + n].copy_from_slice(prefs.proposer_list(m));
        for (r, &w) in self.proposer_lists[base..base + n].iter().enumerate() {
            self.proposer_ranks[base + w as usize] = r as u16;
        }
        for (pos, &w) in self.proposer_lists[base..base + n].iter().enumerate() {
            self.entries[base + pos] =
                (self.responder_ranks[w as usize * n + m as usize] as u32) << 16 | w;
        }
    }

    /// Recompute responder `w`'s list and rank rows from `prefs` (already
    /// mutated at that row), then patch the one fused entry per proposer
    /// that names `w` — its packed responder rank may have changed.
    pub fn refresh_responder_row<P: BipartitePrefs + ResponderListSlice>(
        &mut self,
        w: u32,
        prefs: &P,
    ) {
        let n = self.n;
        let base = w as usize * n;
        self.responder_lists[base..base + n].copy_from_slice(prefs.responder_list_slice(w));
        for (r, &m) in self.responder_lists[base..base + n].iter().enumerate() {
            self.responder_ranks[base + m as usize] = r as u16;
        }
        for m in 0..n {
            let pos = self.proposer_ranks[m * n + w as usize] as usize;
            self.entries[m * n + pos] = (self.responder_ranks[base + m] as u32) << 16 | w;
        }
    }
}

/// Invert `n` packed preference lists into a half-width rank table.
fn invert_into(lists: &[u32], n: usize, ranks: &mut [u16]) {
    for row in 0..n {
        let base = row * n;
        for (r, &member) in lists[base..base + n].iter().enumerate() {
            ranks[base + member as usize] = r as u16;
        }
    }
}

impl BipartitePrefs for CsrPrefs {
    const HAS_RANK_TABLE: bool = true;

    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn proposer_list(&self, m: u32) -> &[u32] {
        let base = m as usize * self.n;
        &self.proposer_lists[base..base + self.n]
    }

    #[inline]
    fn responder_rank(&self, w: u32, m: u32) -> Rank {
        self.responder_ranks[w as usize * self.n + m as usize] as Rank
    }

    #[inline]
    fn proposer_rank(&self, m: u32, w: u32) -> Rank {
        self.proposer_ranks[m as usize * self.n + w as usize] as Rank
    }

    #[inline]
    fn proposal_entry(&self, m: u32, pos: u32) -> u64 {
        widen_entry(self.entries[m as usize * self.n + pos as usize])
    }
}

impl ResponderListSlice for CsrPrefs {
    #[inline]
    fn responder_list_slice(&self, w: u32) -> &[u32] {
        self.responder_list(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::paper::fig3_tripartite;
    use crate::gen::uniform::uniform_bipartite;
    use crate::ids::GenderId;
    use crate::KPartitePairView;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_matches_view<P: BipartitePrefs + ResponderListSlice>(csr: &CsrPrefs, view: &P) {
        let n = view.n();
        assert_eq!(csr.n(), n);
        for m in 0..n as u32 {
            assert_eq!(csr.proposer_list(m), view.proposer_list(m));
            assert_eq!(csr.responder_list(m), view.responder_list_slice(m));
            for w in 0..n as u32 {
                assert_eq!(csr.proposer_rank(m, w), view.proposer_rank(m, w));
                assert_eq!(csr.responder_rank(w, m), view.responder_rank(w, m));
            }
            for pos in 0..n as u32 {
                // The packed arena must agree with the trait's default.
                assert_eq!(csr.proposal_entry(m, pos), view.proposal_entry(m, pos));
            }
        }
    }

    #[test]
    fn snapshot_of_bipartite_matches() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = uniform_bipartite(12, &mut rng);
        let csr = CsrPrefs::from_prefs(&inst);
        assert_matches_view(&csr, &inst);
    }

    #[test]
    fn snapshot_of_pair_view_matches() {
        let inst = fig3_tripartite();
        let view = KPartitePairView::new(&inst, GenderId(0), GenderId(2));
        let csr = CsrPrefs::from_prefs(&view);
        assert_matches_view(&csr, &view);
    }

    #[test]
    fn reload_reuses_capacity_and_shrinks_logical_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let big = uniform_bipartite(32, &mut rng);
        let small = uniform_bipartite(5, &mut rng);
        let mut arena = CsrPrefs::from_prefs(&big);
        let cap_before = arena.proposer_lists.capacity();
        arena.load(&small);
        assert_matches_view(&arena, &small);
        assert_eq!(arena.proposer_lists.capacity(), cap_before);
        arena.load(&big);
        assert_matches_view(&arena, &big);
        assert_eq!(arena.proposer_lists.capacity(), cap_before);
    }

    #[test]
    fn reload_of_strided_view_after_kpartite_delta_matches_fresh() {
        // The pair view strides through the k-partite tables; after a row
        // rewrite, reloading a dirty reused arena must be indistinguishable
        // from building a fresh one — lists, rank tables, fused entries.
        use crate::gen::uniform::uniform_kpartite;
        use crate::ids::Member;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut inst = uniform_kpartite(4, 6, &mut rng);
        let mut arena = CsrPrefs::new();
        arena.load(&KPartitePairView::new(&inst, GenderId(1), GenderId(3)));
        inst.set_pref_row(
            Member {
                gender: GenderId(1),
                index: 2,
            },
            GenderId(3),
            &[5, 3, 0, 1, 4, 2],
        )
        .unwrap();
        inst.set_pref_row(
            Member {
                gender: GenderId(3),
                index: 0,
            },
            GenderId(1),
            &[2, 0, 5, 4, 3, 1],
        )
        .unwrap();
        let view = KPartitePairView::new(&inst, GenderId(1), GenderId(3));
        arena.load(&view);
        assert_matches_view(&arena, &view);
        let fresh = CsrPrefs::from_prefs(&view);
        assert_eq!(arena.proposer_lists, fresh.proposer_lists);
        assert_eq!(arena.responder_lists, fresh.responder_lists);
        assert_eq!(arena.proposer_ranks, fresh.proposer_ranks);
        assert_eq!(arena.responder_ranks, fresh.responder_ranks);
        assert_eq!(arena.entries, fresh.entries);
    }

    // Compile-time: the arena must advertise its rank tables so the
    // debug guard in the default `proposer_rank` stays meaningful.
    const _: () = assert!(CsrPrefs::HAS_RANK_TABLE);
}
