//! Index-based identifiers for genders and members.
//!
//! The whole workspace addresses participants by dense indices: a gender is
//! a small integer `0..k`, a member of a k-partite instance is a
//! `(gender, index)` pair with `index` in `0..n`. Human-readable names, when
//! needed (CLI output, paper examples), are attached at the edges and never
//! enter solver hot paths.

use core::fmt;

/// A gender (one of the `k` disjoint node sets of the k-partite graph).
///
/// In the paper's notation this is an element of the gender set
/// `I = {1, 2, …, k}`; we index from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GenderId(pub u16);

// Serializes transparently as its inner index.
#[cfg(feature = "serde")]
impl serde::Serialize for GenderId {
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(&self.0)
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for GenderId {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        <u16 as serde::Deserialize>::from_value(v).map(GenderId)
    }
}

impl GenderId {
    /// The gender's dense index as a `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GenderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

impl From<usize> for GenderId {
    fn from(v: usize) -> Self {
        GenderId(u16::try_from(v).expect("gender index exceeds u16"))
    }
}

/// A member of a k-partite instance: gender plus index within the gender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Member {
    /// The disjoint set this member belongs to.
    pub gender: GenderId,
    /// Position within the gender, in `0..n`.
    pub index: u32,
}

#[cfg(feature = "serde")]
serde::impl_json_struct!(Member { gender, index });

impl Member {
    /// Convenience constructor from raw indices.
    #[inline]
    pub fn new(gender: impl Into<GenderId>, index: u32) -> Self {
        Member {
            gender: gender.into(),
            index,
        }
    }

    /// Flat global id `gender * n + index`, used when a single namespace is
    /// required (e.g. the roommates adapter or union–find over all nodes).
    #[inline]
    pub fn global(self, n: u32) -> u32 {
        self.gender.0 as u32 * n + self.index
    }

    /// Inverse of [`Member::global`].
    #[inline]
    pub fn from_global(g: u32, n: u32) -> Self {
        Member {
            gender: GenderId((g / n) as u16),
            index: g % n,
        }
    }
}

impl fmt::Display for Member {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.gender, self.index)
    }
}

/// A preference rank: `0` is the most preferred. Lower is better.
pub type Rank = u32;

/// Sentinel rank for "not ranked / unacceptable" entries in incomplete
/// preference tables (stable-roommates with incomplete lists, §III-B).
pub const UNRANKED: Rank = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_global_roundtrip() {
        let n = 7;
        for g in 0..5u16 {
            for i in 0..n {
                let m = Member::new(g as usize, i);
                assert_eq!(Member::from_global(m.global(n), n), m);
            }
        }
    }

    #[test]
    fn gender_display() {
        assert_eq!(GenderId(3).to_string(), "G3");
        assert_eq!(Member::new(1usize, 4).to_string(), "G1[4]");
    }

    #[test]
    fn gender_ordering_follows_index() {
        assert!(GenderId(0) < GenderId(1));
        assert!(GenderId(9) > GenderId(2));
    }
}
