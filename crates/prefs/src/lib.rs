//! # kmatch-prefs — preference-list substrate
//!
//! Data model shared by every solver in the `kmatch` workspace:
//!
//! * [`BipartiteInstance`] — the classic stable-marriage input: two sides of
//!   `n` members, each member totally ordering the opposite side.
//! * [`KPartiteInstance`] — the paper's input: `k` genders of `n` members
//!   each; every member keeps a **separate** total order over each of the
//!   other `k − 1` genders (Wu, IPPS 2016, §II-B).
//! * [`RoommatesInstance`] — one set of participants with (possibly
//!   incomplete) preference lists, the input to Irving's stable-roommates
//!   algorithm; adapters build it from k-partite and bipartite instances
//!   (§III-B of the paper).
//! * [`gen`] — workload generators: uniform, popularity-correlated,
//!   structured worst cases, the Theorem-1 adversarial construction, and the
//!   paper's worked examples encoded verbatim.
//!
//! ## Representation
//!
//! All hot-path structures are dense, flat `Vec<u32>` tables so that the one
//! operation every algorithm performs millions of times —
//! *"does x prefer a over b?"* — is two array loads and a compare
//! ([`KPartiteInstance::prefers`]). Preference **lists** (best-to-worst
//! member indices) and **rank tables** (member → position) are both stored;
//! the former drives proposal order, the latter drives acceptance tests.
//!
//! Members are index-based: a member of a k-partite instance is a
//! [`Member`] `{ gender, index }`; strings never appear in hot paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod csr;
pub mod delta;
pub mod error;
pub mod gen;
pub mod ids;
pub mod kpartite;
pub mod oracle;
pub mod roommates;
pub mod views;

#[cfg(feature = "serde")]
pub mod serde_support;

pub use bipartite::BipartiteInstance;
pub use csr::{CsrPrefs, CSR_MAX_N};
pub use delta::{DeltaSide, PrefDelta};
pub use error::PrefsError;
pub use ids::{GenderId, Member, Rank, UNRANKED};
pub use kpartite::KPartiteInstance;
pub use oracle::{
    materialize_bipartite, materialize_lists, materialize_mutual_lists, materialize_roommates,
    DualOracle, PrefOracle, RandomPermOracle, RoommatesOracleView, RoommatesPrefs, ScoreOracle,
    TruncatedOracle,
};
pub use roommates::{MergeStrategy, RoommatesInstance};
pub use views::{BipartitePrefs, KPartitePairView, ResponderListSlice, ReverseView};
