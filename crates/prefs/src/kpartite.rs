//! Balanced complete k-partite preference instances (the paper's model).
//!
//! A [`KPartiteInstance`] holds `k` genders of `n` members each. Every
//! member keeps a **separate total order over each other gender** — the
//! paper's key modelling choice (§I): "there is a strict preference order of
//! the members over all individual members from different genders, as
//! opposed to preference order over a combination of members". A member of a
//! tripartite instance with `n = 2` therefore stores two lists of two
//! entries each (`2n` entries total), exactly as in Fig. 3 of the paper.

use crate::bipartite::{check_permutation, invert_lists};
use crate::error::PrefsError;
use crate::ids::{GenderId, Member, Rank};

/// A balanced, complete k-partite preference instance.
///
/// Storage is a single dense table per direction:
/// `lists[(g·n + i)·k·n + h·n + r]` is the index of the member of gender `h`
/// that member `(g, i)` ranks at position `r`; `ranks` is its inverse. The
/// diagonal blocks (`h == g`) are unused and zero-filled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KPartiteInstance {
    k: usize,
    n: usize,
    lists: Vec<u32>,
    ranks: Vec<Rank>,
}

impl KPartiteInstance {
    /// Build an instance from nested lists.
    ///
    /// `lists[g][i][h]` is member `(g, i)`'s best-to-worst ordering of
    /// gender `h`; the self block `lists[g][i][g]` must be empty, and every
    /// other block must be a permutation of `0..n`.
    pub fn from_lists(lists: &[Vec<Vec<Vec<u32>>>]) -> Result<Self, PrefsError> {
        let k = lists.len();
        if k < 2 {
            return Err(if k == 0 {
                PrefsError::Empty
            } else {
                PrefsError::TooFewGenders { k }
            });
        }
        if k > u16::MAX as usize {
            return Err(PrefsError::TooLarge {
                what: "k exceeds u16 range",
            });
        }
        let n = lists[0].len();
        if n == 0 {
            return Err(PrefsError::Empty);
        }
        if (k * n) > u32::MAX as usize / 2 {
            return Err(PrefsError::TooLarge {
                what: "k*n exceeds u32 range",
            });
        }
        let mut flat = vec![0u32; k * n * k * n];
        let mut seen = vec![false; n];
        for (g, gender) in lists.iter().enumerate() {
            if gender.len() != n {
                return Err(PrefsError::ShapeMismatch {
                    what: "members per gender",
                    expected: n,
                    actual: gender.len(),
                });
            }
            for (i, member) in gender.iter().enumerate() {
                if member.len() != k {
                    return Err(PrefsError::ShapeMismatch {
                        what: "per-gender preference blocks",
                        expected: k,
                        actual: member.len(),
                    });
                }
                for (h, block) in member.iter().enumerate() {
                    if h == g {
                        if !block.is_empty() {
                            return Err(PrefsError::SelfPreference { owner: (g, i) });
                        }
                        continue;
                    }
                    if !check_permutation(block, n, &mut seen) {
                        return Err(PrefsError::NotAPermutation {
                            owner: (g, i),
                            over: h,
                        });
                    }
                    let base = ((g * n + i) * k + h) * n;
                    flat[base..base + n].copy_from_slice(block);
                }
            }
        }
        let ranks = invert_lists(&flat, k * n * k, n);
        Ok(KPartiteInstance {
            k,
            n,
            lists: flat,
            ranks,
        })
    }

    /// Number of genders `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Members per gender `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Iterator over all gender ids.
    pub fn genders(&self) -> impl Iterator<Item = GenderId> {
        (0..self.k).map(GenderId::from)
    }

    /// Iterator over all members, gender-major.
    pub fn members(&self) -> impl Iterator<Item = Member> + '_ {
        (0..self.k).flat_map(move |g| (0..self.n as u32).map(move |i| Member::new(g, i)))
    }

    #[inline]
    fn base(&self, m: Member, h: GenderId) -> usize {
        debug_assert_ne!(m.gender, h, "no preferences over own gender");
        ((m.gender.idx() * self.n + m.index as usize) * self.k + h.idx()) * self.n
    }

    /// Member `m`'s preference list over gender `h` (best first).
    ///
    /// # Panics
    /// In debug builds, if `h` is `m`'s own gender.
    #[inline]
    pub fn pref_list(&self, m: Member, h: GenderId) -> &[u32] {
        let base = self.base(m, h);
        &self.lists[base..base + self.n]
    }

    /// Rank member `m` assigns to member `(h, j)` (0 = best).
    #[inline]
    pub fn rank_of(&self, m: Member, h: GenderId, j: u32) -> Rank {
        self.ranks[self.base(m, h) + j as usize]
    }

    /// Replace member `m`'s preference row over gender `h` with `row` (a
    /// permutation of `0..n`), re-inverting the matching rank row — the
    /// k-partite delta primitive behind incremental rebinding. O(n).
    pub fn set_pref_row(&mut self, m: Member, h: GenderId, row: &[u32]) -> Result<(), PrefsError> {
        if m.gender == h {
            return Err(PrefsError::SelfPreference {
                owner: (m.gender.idx(), m.index as usize),
            });
        }
        if m.gender.idx() >= self.k || h.idx() >= self.k || m.index as usize >= self.n {
            return Err(PrefsError::ShapeMismatch {
                what: "set_pref_row member or gender index",
                expected: self.k * self.n,
                actual: m.gender.idx() * self.n + m.index as usize,
            });
        }
        let mut seen = vec![false; self.n];
        if !crate::bipartite::check_permutation(row, self.n, &mut seen) {
            return Err(PrefsError::NotAPermutation {
                owner: (m.gender.idx(), m.index as usize),
                over: h.idx(),
            });
        }
        let base = self.base(m, h);
        let n = self.n;
        self.lists[base..base + n].copy_from_slice(row);
        for (r, &j) in row.iter().enumerate() {
            self.ranks[base + j as usize] = r as Rank;
        }
        Ok(())
    }

    /// Does `m` strictly prefer `a` over `b`? `a` and `b` must share a
    /// gender that differs from `m`'s.
    #[inline]
    pub fn prefers(&self, m: Member, a: Member, b: Member) -> bool {
        debug_assert_eq!(a.gender, b.gender, "prefers compares members of one gender");
        self.rank_of(m, a.gender, a.index) < self.rank_of(m, b.gender, b.index)
    }

    /// Extract the bipartite sub-instance between `proposer` and `responder`
    /// genders as an owned [`crate::BipartiteInstance`].
    ///
    /// This is the `GS(i, j)` input of Algorithm 1: the complete bipartite
    /// graph between two of the k disjoint sets, with the members' existing
    /// per-gender preference orders.
    pub fn extract_pair(
        &self,
        proposer: GenderId,
        responder: GenderId,
    ) -> crate::BipartiteInstance {
        assert_ne!(
            proposer, responder,
            "extract_pair needs two distinct genders"
        );
        let side0: Vec<Vec<u32>> = (0..self.n as u32)
            .map(|i| {
                self.pref_list(
                    Member {
                        gender: proposer,
                        index: i,
                    },
                    responder,
                )
                .to_vec()
            })
            .collect();
        let side1: Vec<Vec<u32>> = (0..self.n as u32)
            .map(|i| {
                self.pref_list(
                    Member {
                        gender: responder,
                        index: i,
                    },
                    proposer,
                )
                .to_vec()
            })
            .collect();
        crate::BipartiteInstance::from_lists(&side0, &side1)
            .expect("validated k-partite instance yields valid pair")
    }

    /// Restrict the instance to a subset of genders, relabelling them
    /// `0..blocks.len()` in the given order. Preference orders within the
    /// kept genders are preserved verbatim.
    ///
    /// Used by the partitioned k-ary matching extension (`kmatch-core`):
    /// the paper's §VII direction of k-ary matching inside a k′-partite
    /// graph proceeds block-by-block over a partition of the genders.
    ///
    /// # Panics
    /// If `keep` has fewer than 2 genders, repeats one, or names a gender
    /// out of range.
    pub fn restrict_to_genders(&self, keep: &[GenderId]) -> KPartiteInstance {
        assert!(
            keep.len() >= 2,
            "a k-partite instance needs at least 2 genders"
        );
        let mut seen = vec![false; self.k];
        for &g in keep {
            assert!(g.idx() < self.k, "gender {g} out of range");
            assert!(!seen[g.idx()], "gender {g} repeated");
            seen[g.idx()] = true;
        }
        let lists: Vec<Vec<Vec<Vec<u32>>>> = keep
            .iter()
            .map(|&g| {
                (0..self.n as u32)
                    .map(|i| {
                        keep.iter()
                            .map(|&h| {
                                if h == g {
                                    Vec::new()
                                } else {
                                    self.pref_list(
                                        Member {
                                            gender: g,
                                            index: i,
                                        },
                                        h,
                                    )
                                    .to_vec()
                                }
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        KPartiteInstance::from_lists(&lists).expect("restriction preserves validity")
    }

    /// Nested-list representation (inverse of [`KPartiteInstance::from_lists`]),
    /// used by serde and the CLI.
    pub fn to_lists(&self) -> Vec<Vec<Vec<Vec<u32>>>> {
        (0..self.k)
            .map(|g| {
                (0..self.n as u32)
                    .map(|i| {
                        (0..self.k)
                            .map(|h| {
                                if h == g {
                                    Vec::new()
                                } else {
                                    self.pref_list(Member::new(g, i), GenderId::from(h))
                                        .to_vec()
                                }
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::paper::fig3_tripartite;

    #[test]
    fn fig3_lists_roundtrip() {
        let inst = fig3_tripartite();
        assert_eq!(inst.k(), 3);
        assert_eq!(inst.n(), 2);
        let again = KPartiteInstance::from_lists(&inst.to_lists()).unwrap();
        assert_eq!(again, inst);
    }

    #[test]
    fn fig3_prefs_match_paper_text() {
        // "both u and u' rank m higher than m', although m ranks u' higher
        //  and m' ranks u higher" (paper §IV-A).
        let inst = fig3_tripartite();
        let (m_gender, u_gender) = (GenderId(0), GenderId(2));
        let m = Member {
            gender: m_gender,
            index: 0,
        };
        let m1 = Member {
            gender: m_gender,
            index: 1,
        };
        let u = Member {
            gender: u_gender,
            index: 0,
        };
        let u1 = Member {
            gender: u_gender,
            index: 1,
        };
        assert!(inst.prefers(u, m, m1));
        assert!(inst.prefers(u1, m, m1));
        assert!(inst.prefers(m, u1, u));
        assert!(inst.prefers(m1, u, u1));
    }

    #[test]
    fn extract_pair_matches_pref_lists() {
        let inst = fig3_tripartite();
        let pair = inst.extract_pair(GenderId(0), GenderId(1));
        assert_eq!(pair.n(), 2);
        for i in 0..2u32 {
            assert_eq!(
                pair.proposer_list(i),
                inst.pref_list(Member::new(0usize, i), GenderId(1))
            );
            assert_eq!(
                pair.responder_list(i),
                inst.pref_list(Member::new(1usize, i), GenderId(0))
            );
        }
    }

    #[test]
    fn rejects_self_preference_block() {
        // 2 genders, 1 member each; self block non-empty.
        let lists = vec![vec![vec![vec![0], vec![0]]], vec![vec![vec![0], vec![]]]];
        let err = KPartiteInstance::from_lists(&lists).unwrap_err();
        assert!(matches!(err, PrefsError::SelfPreference { owner: (0, 0) }));
    }

    #[test]
    fn rejects_single_gender() {
        let lists = vec![vec![vec![vec![]]]];
        assert!(matches!(
            KPartiteInstance::from_lists(&lists).unwrap_err(),
            PrefsError::TooFewGenders { k: 1 }
        ));
    }

    #[test]
    fn restriction_preserves_orders() {
        let inst = fig3_tripartite();
        // Keep W (1) and U (2), relabelled 0 and 1.
        let sub = inst.restrict_to_genders(&[GenderId(1), GenderId(2)]);
        assert_eq!(sub.k(), 2);
        assert_eq!(sub.n(), 2);
        // w's order over U must be preserved: u > u' -> [0, 1].
        assert_eq!(sub.pref_list(Member::new(0usize, 0), GenderId(1)), &[0, 1]);
        // u''s order over W: w' > w -> [1, 0].
        assert_eq!(sub.pref_list(Member::new(1usize, 1), GenderId(0)), &[1, 0]);
    }

    #[test]
    fn restriction_respects_keep_order() {
        let inst = fig3_tripartite();
        // Reversed keep order swaps the labels.
        let sub = inst.restrict_to_genders(&[GenderId(2), GenderId(1)]);
        assert_eq!(sub.pref_list(Member::new(1usize, 0), GenderId(0)), &[0, 1]);
        // w over U
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn restriction_rejects_duplicates() {
        let inst = fig3_tripartite();
        let _ = inst.restrict_to_genders(&[GenderId(1), GenderId(1)]);
    }

    #[test]
    fn members_iterator_covers_all() {
        let inst = fig3_tripartite();
        let all: Vec<Member> = inst.members().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], Member::new(0usize, 0));
        assert_eq!(all[5], Member::new(2usize, 1));
    }
}
