//! Single-set (stable-roommates) preference instances with incomplete lists.
//!
//! §III-B of the paper reduces *binary* matching in a k-partite graph to the
//! stable-roommates problem "with incomplete preference lists (i.e., a
//! person can exclude some members)": same-gender pairs are simply absent
//! from the lists. [`RoommatesInstance`] is the common input type; the
//! adapters [`RoommatesInstance::from_kpartite`] and
//! [`RoommatesInstance::from_bipartite`] perform the paper's two reductions
//! (k-partite binary matching, and the fair-SMP construction where both
//! genders propose).

use crate::error::PrefsError;
use crate::ids::{Rank, UNRANKED};
use crate::{BipartiteInstance, KPartiteInstance};

/// How to merge a k-partite member's per-gender total orders into the single
/// global order required by the roommates reduction.
///
/// The paper notes (footnote 4) that the per-gender total orders "form a
/// global partial order which can be converted into a global total order in
/// various ways"; this enum selects the linear extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Interleave by rank: every member's rank-0 choices (in gender order),
    /// then all rank-1 choices, and so on. This treats genders evenly and is
    /// the default.
    #[default]
    RoundRobinByRank,
    /// Concatenate whole per-gender lists in ascending gender order: all of
    /// the first other gender, then all of the next, …
    ConcatByGender,
}

/// A stable-roommates instance: one set of participants, each with an
/// ordered list of *acceptable* partners. Acceptability is mutual.
///
/// Lists are ragged (incomplete lists are the point of the §III-B
/// reduction), so they are stored in CSR form: one flat entry array plus
/// per-participant offsets. [`RoommatesInstance::list`] is a slice of the
/// shared buffer and the solvers never chase a per-participant `Vec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoommatesInstance {
    n: usize,
    /// CSR row starts: participant `p`'s list occupies
    /// `entries[offsets[p] as usize..offsets[p + 1] as usize]`.
    offsets: Vec<u32>,
    /// All preference lists concatenated, best first within each row.
    entries: Vec<u32>,
    /// `ranks[p * n + q]` = rank of `q` in `p`'s list, or [`UNRANKED`].
    ranks: Vec<Rank>,
    /// *Half-width* fused candidate words, parallel to `entries` (built
    /// only when `n ≤ `[`FUSED_MAX_N`], empty otherwise): the word for
    /// `p`'s entry at position `pos` packs
    /// `rank_of(q, p) << 16 | q` for `q = entries[offsets[p] + pos]` —
    /// the partner-side rank Irving's phase-1 liveness predicate needs,
    /// hoisted out of the n² rank table. The solvers' dead-prefix scans
    /// read candidates in row order, so this turns one random 64-byte
    /// cache line per probe (`ranks[q * n + p]`, a fresh line for every
    /// `q`) into 4 streamed bytes.
    fused: Vec<u32>,
}

/// Largest participant count for which the fused candidate arena is
/// materialized: with `n ≤ 2^16` both the partner rank and the partner id
/// fit 16 bits, so one `u32` holds the pair (the same half-width packing
/// as the bipartite CSR arena). Instances beyond the cap simply fall back
/// to computing `candidate_entry` from the rank table.
pub const FUSED_MAX_N: usize = 1 << 16;

impl RoommatesInstance {
    /// Build an instance from per-participant lists.
    ///
    /// Lists may be incomplete, but acceptability must be mutual and no
    /// participant may list itself or repeat an entry.
    pub fn from_lists(lists: Vec<Vec<u32>>) -> Result<Self, PrefsError> {
        let n = lists.len();
        if n == 0 {
            return Err(PrefsError::Empty);
        }
        if n > u32::MAX as usize / 2 {
            return Err(PrefsError::TooLarge {
                what: "participants exceed u32 range",
            });
        }
        let mut ranks = vec![UNRANKED; n * n];
        for (p, list) in lists.iter().enumerate() {
            for (r, &q) in list.iter().enumerate() {
                if q as usize >= n {
                    return Err(PrefsError::BadRoommatesList {
                        owner: p,
                        reason: "entry out of range",
                    });
                }
                if q as usize == p {
                    return Err(PrefsError::BadRoommatesList {
                        owner: p,
                        reason: "participant lists itself",
                    });
                }
                let slot = &mut ranks[p * n + q as usize];
                if *slot != UNRANKED {
                    return Err(PrefsError::BadRoommatesList {
                        owner: p,
                        reason: "duplicate entry",
                    });
                }
                *slot = r as Rank;
            }
        }
        for p in 0..n {
            for q in 0..n {
                if ranks[p * n + q] != UNRANKED && ranks[q * n + p] == UNRANKED {
                    return Err(PrefsError::AsymmetricAcceptability { a: p, b: q });
                }
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        offsets.push(0);
        for list in &lists {
            entries.extend_from_slice(list);
            offsets.push(entries.len() as u32);
        }
        let mut fused = Vec::new();
        if n <= FUSED_MAX_N {
            fused.reserve_exact(entries.len());
            for (p, list) in lists.iter().enumerate() {
                for &q in list {
                    // Mutual acceptability (verified above) guarantees the
                    // partner-side rank exists, and `rank < n ≤ 2^16`.
                    fused.push((ranks[q as usize * n + p] << 16) | q);
                }
            }
        }
        Ok(RoommatesInstance {
            n,
            offsets,
            entries,
            ranks,
            fused,
        })
    }

    /// Reduce a k-partite instance to roommates: participant `g·n + i` is
    /// member `(g, i)`; same-gender pairs are unacceptable; each
    /// participant's global order is the chosen linear extension of its
    /// per-gender orders.
    pub fn from_kpartite(inst: &KPartiteInstance, strategy: MergeStrategy) -> Self {
        let (k, n) = (inst.k(), inst.n());
        let total = k * n;
        let mut lists = Vec::with_capacity(total);
        for m in inst.members() {
            let g = m.gender;
            let mut list = Vec::with_capacity((k - 1) * n);
            match strategy {
                MergeStrategy::RoundRobinByRank => {
                    for r in 0..n {
                        for h in inst.genders().filter(|&h| h != g) {
                            let j = inst.pref_list(m, h)[r];
                            list.push(h.idx() as u32 * n as u32 + j);
                        }
                    }
                }
                MergeStrategy::ConcatByGender => {
                    for h in inst.genders().filter(|&h| h != g) {
                        for &j in inst.pref_list(m, h) {
                            list.push(h.idx() as u32 * n as u32 + j);
                        }
                    }
                }
            }
            lists.push(list);
        }
        RoommatesInstance::from_lists(lists)
            .expect("k-partite reduction always yields a valid roommates instance")
    }

    /// Reduce a bipartite (SMP) instance: participants `0..n` are proposers,
    /// `n..2n` responders, and only cross-side pairs are acceptable.
    ///
    /// This is the §III-B device for *fair* stable marriage: running the
    /// roommates algorithm on this instance lets both sides propose
    /// simultaneously.
    pub fn from_bipartite(inst: &BipartiteInstance) -> Self {
        let n = inst.n();
        let mut lists = Vec::with_capacity(2 * n);
        for m in 0..n as u32 {
            lists.push(
                inst.proposer_list(m)
                    .iter()
                    .map(|&w| w + n as u32)
                    .collect(),
            );
        }
        for w in 0..n as u32 {
            lists.push(inst.responder_list(w).to_vec());
        }
        RoommatesInstance::from_lists(lists)
            .expect("bipartite reduction always yields a valid roommates instance")
    }

    /// Number of participants.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Participant `p`'s acceptable partners, best first.
    #[inline]
    pub fn list(&self, p: u32) -> &[u32] {
        let lo = self.offsets[p as usize] as usize;
        let hi = self.offsets[p as usize + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Start of `p`'s row in the flat entry arena: entry `r` of `p`'s list
    /// lives at flat index `row_start(p) + r`. Because rows are stored
    /// best-first, the flat index of partner `q` is
    /// `row_start(p) + rank_of(p, q)` — an O(1) address solvers can key
    /// per-entry scratch state by.
    #[inline]
    pub fn row_start(&self, p: u32) -> u32 {
        self.offsets[p as usize]
    }

    /// The partner stored at flat entry index `idx` (see
    /// [`RoommatesInstance::row_start`]).
    #[inline]
    pub fn entry(&self, idx: u32) -> u32 {
        self.entries[idx as usize]
    }

    /// Total number of preference entries across all participants — the
    /// size of the flat arena indexed by [`RoommatesInstance::row_start`].
    #[inline]
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Rank of `q` in `p`'s list, or [`UNRANKED`] if unacceptable.
    #[inline]
    pub fn rank_of(&self, p: u32, q: u32) -> Rank {
        self.ranks[p as usize * self.n + q as usize]
    }

    /// Fused candidate word for position `pos` of `p`'s list:
    /// `rank_of(q, p) << 32 | q` with `q = candidate(p, pos)` — the
    /// candidate together with the rank that candidate assigns `p`, in
    /// one load. Served from the half-width fused arena when it exists
    /// (`n ≤ `[`FUSED_MAX_N`]), recomputed from the rank table otherwise.
    #[inline]
    pub fn candidate_entry(&self, p: u32, pos: u32) -> u64 {
        if self.fused.is_empty() {
            let q = self.list(p)[pos as usize];
            return ((self.rank_of(q, p) as u64) << 32) | q as u64;
        }
        let e = self.fused[self.offsets[p as usize] as usize + pos as usize] as u64;
        ((e & 0xFFFF_0000) << 16) | (e & 0xFFFF)
    }

    /// Is `q` acceptable to `p` (equivalently, by mutuality, `p` to `q`)?
    #[inline]
    pub fn acceptable(&self, p: u32, q: u32) -> bool {
        self.rank_of(p, q) != UNRANKED
    }

    /// Does `p` strictly prefer `a` to `b`? Unacceptable partners rank below
    /// every acceptable one.
    #[inline]
    pub fn prefers(&self, p: u32, a: u32, b: u32) -> bool {
        self.rank_of(p, a) < self.rank_of(p, b)
    }

    /// Reconstruct the per-participant nested lists (for serialization and
    /// other cold paths; hot paths should slice via [`RoommatesInstance::list`]).
    pub fn to_lists(&self) -> Vec<Vec<u32>> {
        (0..self.n as u32).map(|p| self.list(p).to_vec()).collect()
    }

    /// Replace participant `p`'s preference row with `row`, which must be
    /// a permutation of `p`'s current acceptable set — reordering within a
    /// row keeps acceptability mutual and the CSR offsets valid, which is
    /// all the incremental re-solve path needs. O(n).
    pub fn set_row(&mut self, p: u32, row: &[u32]) -> Result<(), PrefsError> {
        let p_us = p as usize;
        if p_us >= self.n {
            return Err(PrefsError::BadRoommatesList {
                owner: p_us,
                reason: "participant index out of range",
            });
        }
        let lo = self.offsets[p_us] as usize;
        let hi = self.offsets[p_us + 1] as usize;
        if row.len() != hi - lo {
            return Err(PrefsError::BadRoommatesList {
                owner: p_us,
                reason: "row must keep the same number of acceptable partners",
            });
        }
        let mut seen = vec![false; self.n];
        for &q in row {
            let q_us = q as usize;
            if q_us >= self.n || q_us == p_us || !self.acceptable(p, q) {
                return Err(PrefsError::BadRoommatesList {
                    owner: p_us,
                    reason: "row must be a permutation of the current acceptable set",
                });
            }
            if std::mem::replace(&mut seen[q_us], true) {
                return Err(PrefsError::BadRoommatesList {
                    owner: p_us,
                    reason: "duplicate partner in row",
                });
            }
        }
        self.entries[lo..hi].copy_from_slice(row);
        for (r, &q) in row.iter().enumerate() {
            self.ranks[p_us * self.n + q as usize] = r as Rank;
        }
        if !self.fused.is_empty() {
            for (r, &q) in row.iter().enumerate() {
                // p's own row: new candidate order, partner-side ranks
                // (`rank_of(q, p)`) untouched by the reorder.
                self.fused[lo + r] = (self.ranks[q as usize * self.n + p_us] << 16) | q;
                // q's entry for p carries `rank_of(p, q)`, which the
                // reorder just set to `r`; its position in q's row is
                // q's (unchanged) rank for p.
                let qpos = self.offsets[q as usize] + self.ranks[q as usize * self.n + p_us];
                self.fused[qpos as usize] = ((r as u32) << 16) | p;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::paper::{fig3_tripartite, section3b_left};

    #[test]
    fn mutual_acceptability_enforced() {
        // 0 lists 1 but 1 does not list 0.
        let err = RoommatesInstance::from_lists(vec![vec![1], vec![2], vec![1]]).unwrap_err();
        assert!(matches!(
            err,
            PrefsError::AsymmetricAcceptability { a: 0, b: 1 }
        ));
    }

    #[test]
    fn self_and_duplicate_rejected() {
        let err = RoommatesInstance::from_lists(vec![vec![0]]).unwrap_err();
        assert!(matches!(err, PrefsError::BadRoommatesList { owner: 0, .. }));
        let err = RoommatesInstance::from_lists(vec![vec![1, 1], vec![0]]).unwrap_err();
        assert!(matches!(err, PrefsError::BadRoommatesList { owner: 0, .. }));
    }

    #[test]
    fn paper_left_instance_lists() {
        // §III-B left example is given directly as a roommates instance over
        // {m, m', w, w', u, u'} = {0, 1, 2, 3, 4, 5}.
        let inst = section3b_left();
        assert_eq!(inst.n(), 6);
        // m: u' w w' u  ->  [5, 2, 3, 4]
        assert_eq!(inst.list(0), &[5, 2, 3, 4]);
        // u': m w w' m' ->  [0, 2, 3, 1]
        assert_eq!(inst.list(5), &[0, 2, 3, 1]);
        assert!(inst.prefers(0, 5, 2));
        assert!(!inst.acceptable(0, 1)); // same gender m—m'
    }

    #[test]
    fn kpartite_reduction_round_robin() {
        let inst = fig3_tripartite();
        let rm = RoommatesInstance::from_kpartite(&inst, MergeStrategy::RoundRobinByRank);
        assert_eq!(rm.n(), 6);
        // m (participant 0): rank-0 choices of genders W (=1) and U (=2),
        // then rank-1 choices. m: w > w' and u' > u, so [w, u', w', u]
        // = [1*2+0, 2*2+1, 1*2+1, 2*2+0] = [2, 5, 3, 4].
        assert_eq!(rm.list(0), &[2, 5, 3, 4]);
        // Same-gender pairs unacceptable both ways.
        assert!(!rm.acceptable(0, 1));
        assert!(!rm.acceptable(4, 5));
    }

    #[test]
    fn kpartite_reduction_concat() {
        let inst = fig3_tripartite();
        let rm = RoommatesInstance::from_kpartite(&inst, MergeStrategy::ConcatByGender);
        // m: whole W list then whole U list: [w, w', u', u] = [2, 3, 5, 4].
        assert_eq!(rm.list(0), &[2, 3, 5, 4]);
    }

    #[test]
    fn fused_entries_match_rank_table_and_survive_set_row() {
        let mut inst = section3b_left();
        let check = |inst: &RoommatesInstance| {
            for p in 0..inst.n() as u32 {
                for (pos, &q) in inst.list(p).iter().enumerate() {
                    assert_eq!(
                        inst.candidate_entry(p, pos as u32),
                        ((inst.rank_of(q, p) as u64) << 32) | q as u64,
                        "fused word for ({p}, {pos})"
                    );
                }
            }
        };
        check(&inst);
        // Reorder m's row: both m's own fused words and every partner's
        // word for m must be rewritten.
        inst.set_row(0, &[4, 3, 2, 5]).unwrap();
        check(&inst);
    }

    #[test]
    fn bipartite_reduction_offsets_responders() {
        let b = crate::gen::paper::example1_first();
        let rm = RoommatesInstance::from_bipartite(&b);
        assert_eq!(rm.n(), 4);
        assert_eq!(rm.list(0), &[2, 3]); // m: w > w'
        assert_eq!(rm.list(2), &[1, 0]); // w: m' > m
        assert!(!rm.acceptable(0, 1));
        assert!(!rm.acceptable(2, 3));
    }
}
