//! The classic stable-marriage instance: two balanced sides with complete
//! preference lists.
//!
//! `BipartiteInstance` is the `k = 2` specialization used by the
//! Gale–Shapley engine in `kmatch-gs`. It stores, for both sides, the
//! preference **lists** (proposal order) and the inverse **rank tables**
//! (acceptance tests), all in flat row-major `Vec<u32>`s.
//!
//! By convention side `0` is the *proposer* side ("men" in the paper's
//! description of the GS algorithm) and side `1` the *responder* side
//! ("women"); [`crate::views::ReverseView`] swaps the roles without copying.

use crate::delta::{DeltaSide, PrefDelta};
use crate::error::PrefsError;
use crate::ids::Rank;

/// A complete, balanced bipartite preference instance of size `n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteInstance {
    n: usize,
    /// `side0_lists[m * n + r]` = the responder that proposer `m` ranks at
    /// position `r` (0 = most preferred).
    side0_lists: Vec<u32>,
    /// `side1_lists[w * n + r]` = the proposer that responder `w` ranks at
    /// position `r`.
    side1_lists: Vec<u32>,
    /// `side0_ranks[m * n + w]` = rank of responder `w` in `m`'s list.
    side0_ranks: Vec<Rank>,
    /// `side1_ranks[w * n + m]` = rank of proposer `m` in `w`'s list.
    side1_ranks: Vec<Rank>,
}

/// Validate that `list` is a permutation of `0..n`, using `seen` as scratch.
pub(crate) fn check_permutation(list: &[u32], n: usize, seen: &mut [bool]) -> bool {
    if list.len() != n {
        return false;
    }
    seen.iter_mut().for_each(|s| *s = false);
    for &x in list {
        let Some(slot) = seen.get_mut(x as usize) else {
            return false;
        };
        if *slot {
            return false;
        }
        *slot = true;
    }
    true
}

/// Build a rank table (member → position) from a flat block of `rows`
/// preference lists each of length `n`.
pub(crate) fn invert_lists(lists: &[u32], rows: usize, n: usize) -> Vec<Rank> {
    let mut ranks = vec![0 as Rank; rows * n];
    for row in 0..rows {
        let base = row * n;
        for (r, &member) in lists[base..base + n].iter().enumerate() {
            ranks[base + member as usize] = r as Rank;
        }
    }
    ranks
}

impl BipartiteInstance {
    /// Build an instance from nested preference lists.
    ///
    /// `side0[m]` is proposer `m`'s best-to-worst ordering of the responders
    /// and `side1[w]` is responder `w`'s ordering of the proposers. Both
    /// sides must contain `n` permutations of `0..n`.
    pub fn from_lists(side0: &[Vec<u32>], side1: &[Vec<u32>]) -> Result<Self, PrefsError> {
        let n = side0.len();
        if n == 0 {
            return Err(PrefsError::Empty);
        }
        if side1.len() != n {
            return Err(PrefsError::ShapeMismatch {
                what: "bipartite side 1",
                expected: n,
                actual: side1.len(),
            });
        }
        if n > u32::MAX as usize / 2 {
            return Err(PrefsError::TooLarge {
                what: "n exceeds u32 range",
            });
        }
        let mut seen = vec![false; n];
        let mut flat0 = Vec::with_capacity(n * n);
        let mut flat1 = Vec::with_capacity(n * n);
        for (side_idx, (side, flat)) in [(side0, &mut flat0), (side1, &mut flat1)]
            .into_iter()
            .enumerate()
        {
            for (i, list) in side.iter().enumerate() {
                if !check_permutation(list, n, &mut seen) {
                    return Err(PrefsError::NotAPermutation {
                        owner: (side_idx, i),
                        over: 1 - side_idx,
                    });
                }
                flat.extend_from_slice(list);
            }
        }
        let side0_ranks = invert_lists(&flat0, n, n);
        let side1_ranks = invert_lists(&flat1, n, n);
        Ok(BipartiteInstance {
            n,
            side0_lists: flat0,
            side1_lists: flat1,
            side0_ranks,
            side1_ranks,
        })
    }

    /// Number of members on each side.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Proposer `m`'s preference list (best first).
    #[inline]
    pub fn proposer_list(&self, m: u32) -> &[u32] {
        let base = m as usize * self.n;
        &self.side0_lists[base..base + self.n]
    }

    /// Responder `w`'s preference list (best first).
    #[inline]
    pub fn responder_list(&self, w: u32) -> &[u32] {
        let base = w as usize * self.n;
        &self.side1_lists[base..base + self.n]
    }

    /// Rank of responder `w` in proposer `m`'s list (0 = best).
    #[inline]
    pub fn proposer_rank(&self, m: u32, w: u32) -> Rank {
        self.side0_ranks[m as usize * self.n + w as usize]
    }

    /// Rank of proposer `m` in responder `w`'s list (0 = best).
    #[inline]
    pub fn responder_rank(&self, w: u32, m: u32) -> Rank {
        self.side1_ranks[w as usize * self.n + m as usize]
    }

    /// Does proposer `m` strictly prefer responder `a` over responder `b`?
    #[inline]
    pub fn proposer_prefers(&self, m: u32, a: u32, b: u32) -> bool {
        self.proposer_rank(m, a) < self.proposer_rank(m, b)
    }

    /// Does responder `w` strictly prefer proposer `a` over proposer `b`?
    #[inline]
    pub fn responder_prefers(&self, w: u32, a: u32, b: u32) -> bool {
        self.responder_rank(w, a) < self.responder_rank(w, b)
    }

    /// Apply a single-row [`PrefDelta`] in place: rewrite the named
    /// preference list and re-invert its rank row, in O(n).
    ///
    /// On error the instance is unchanged (validation happens before any
    /// mutation for [`PrefDelta::SetRow`]; position checks for swap and
    /// splice happen before the row is touched).
    pub fn apply_delta(&mut self, delta: &PrefDelta) -> Result<(), PrefsError> {
        let n = self.n;
        let row = delta.row() as usize;
        if row >= n {
            return Err(PrefsError::ShapeMismatch {
                what: "delta row index",
                expected: n,
                actual: row,
            });
        }
        let (lists, ranks, side_idx) = match delta.side() {
            DeltaSide::Proposer => (&mut self.side0_lists, &mut self.side0_ranks, 0usize),
            DeltaSide::Responder => (&mut self.side1_lists, &mut self.side1_ranks, 1usize),
        };
        let base = row * n;
        delta.apply_to_row(&mut lists[base..base + n], (side_idx, row), 1 - side_idx)?;
        crate::delta::reinvert_row(&lists[base..base + n], &mut ranks[base..base + n]);
        Ok(())
    }

    /// The same instance with proposer/responder roles swapped (deep copy).
    ///
    /// Used to compute the responder-optimal matching by running GS "from
    /// the other side". For a zero-copy swap see
    /// [`crate::views::ReverseView`].
    pub fn swapped(&self) -> BipartiteInstance {
        BipartiteInstance {
            n: self.n,
            side0_lists: self.side1_lists.clone(),
            side1_lists: self.side0_lists.clone(),
            side0_ranks: self.side1_ranks.clone(),
            side1_ranks: self.side0_ranks.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example1_first() -> BipartiteInstance {
        // Paper Example 1, first preference set:
        //   m: w > w',  m': w > w',  w: m' > m,  w': m' > m.
        BipartiteInstance::from_lists(&[vec![0, 1], vec![0, 1]], &[vec![1, 0], vec![1, 0]]).unwrap()
    }

    #[test]
    fn ranks_invert_lists() {
        let inst = example1_first();
        assert_eq!(inst.proposer_rank(0, 0), 0);
        assert_eq!(inst.proposer_rank(0, 1), 1);
        assert_eq!(inst.responder_rank(0, 1), 0);
        assert_eq!(inst.responder_rank(0, 0), 1);
        assert!(inst.proposer_prefers(0, 0, 1));
        assert!(inst.responder_prefers(1, 1, 0));
    }

    #[test]
    fn rejects_non_permutation() {
        let err = BipartiteInstance::from_lists(&[vec![0, 0]], &[vec![0, 1]]).unwrap_err();
        assert!(matches!(err, PrefsError::NotAPermutation { .. }));
        let err =
            BipartiteInstance::from_lists(&[vec![0, 2], vec![1, 0]], &[vec![0, 1], vec![1, 0]])
                .unwrap_err();
        assert!(matches!(err, PrefsError::NotAPermutation { .. }));
    }

    #[test]
    fn rejects_unbalanced_sides() {
        let err = BipartiteInstance::from_lists(&[vec![0]], &[]).unwrap_err();
        assert!(matches!(err, PrefsError::ShapeMismatch { .. }));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            BipartiteInstance::from_lists(&[], &[]).unwrap_err(),
            PrefsError::Empty
        );
    }

    #[test]
    fn swapped_swaps_roles() {
        let inst = example1_first();
        let sw = inst.swapped();
        assert_eq!(sw.proposer_list(0), inst.responder_list(0));
        assert_eq!(sw.responder_rank(1, 0), inst.proposer_rank(1, 0));
        assert_eq!(sw.swapped(), inst);
    }

    #[test]
    fn wrong_length_list_rejected() {
        let err =
            BipartiteInstance::from_lists(&[vec![0, 1, 2], vec![1, 0]], &[vec![0, 1], vec![1, 0]])
                .unwrap_err();
        assert!(matches!(err, PrefsError::NotAPermutation { .. }));
    }
}
