//! Validation errors for instance construction.

use core::fmt;

/// Errors raised while validating preference data.
///
/// Every constructor in this crate validates its input completely before
/// building the dense tables, so solvers can assume well-formed instances
/// and stay branch-free on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefsError {
    /// The instance would be empty (`k == 0` or `n == 0`).
    Empty,
    /// A k-partite instance needs at least two genders.
    TooFewGenders {
        /// The offending gender count.
        k: usize,
    },
    /// The number of genders or members exceeds the index type.
    TooLarge {
        /// Human-readable description of the violated limit.
        what: &'static str,
    },
    /// Outer structure has the wrong shape (e.g. `lists.len() != k`).
    ShapeMismatch {
        /// What was being validated.
        what: &'static str,
        /// Expected extent.
        expected: usize,
        /// Actual extent.
        actual: usize,
    },
    /// A preference list over a gender is not a permutation of `0..n`.
    NotAPermutation {
        /// The member whose list is malformed (gender index, member index).
        owner: (usize, usize),
        /// The gender the malformed list ranks.
        over: usize,
    },
    /// A member ranked itself, or a list over the member's own gender is
    /// non-empty where the model forbids self-gender preferences.
    SelfPreference {
        /// The offending member (gender index, member index).
        owner: (usize, usize),
    },
    /// A roommates list contains a duplicate or out-of-range entry.
    BadRoommatesList {
        /// The participant whose list is malformed.
        owner: usize,
        /// Explanation.
        reason: &'static str,
    },
    /// Roommates acceptability is not mutual: `a` lists `b` but not vice
    /// versa. Irving's algorithm requires symmetric acceptability.
    AsymmetricAcceptability {
        /// Participant listing the other.
        a: usize,
        /// Participant not listing back.
        b: usize,
    },
}

impl fmt::Display for PrefsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefsError::Empty => write!(f, "instance must have k >= 1 genders and n >= 1 members"),
            PrefsError::TooFewGenders { k } => {
                write!(f, "k-partite instance needs k >= 2 genders, got {k}")
            }
            PrefsError::TooLarge { what } => write!(f, "instance too large: {what}"),
            PrefsError::ShapeMismatch {
                what,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "shape mismatch in {what}: expected {expected}, got {actual}"
                )
            }
            PrefsError::NotAPermutation { owner, over } => write!(
                f,
                "preference list of member G{}[{}] over gender G{} is not a permutation of 0..n",
                owner.0, owner.1, over
            ),
            PrefsError::SelfPreference { owner } => write!(
                f,
                "member G{}[{}] has a non-empty preference list over its own gender",
                owner.0, owner.1
            ),
            PrefsError::BadRoommatesList { owner, reason } => {
                write!(
                    f,
                    "roommates list of participant {owner} is invalid: {reason}"
                )
            }
            PrefsError::AsymmetricAcceptability { a, b } => write!(
                f,
                "acceptability must be mutual: participant {a} lists {b} but {b} does not list {a}"
            ),
        }
    }
}

impl std::error::Error for PrefsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PrefsError::NotAPermutation {
            owner: (1, 2),
            over: 0,
        };
        let s = e.to_string();
        assert!(s.contains("G1[2]"));
        assert!(s.contains("G0"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(PrefsError::Empty);
        assert!(e.to_string().contains("k >= 1"));
    }
}
