//! Lazy preference oracles: the queries the solver hot loops actually
//! make, decoupled from any materialized `n × n` table.
//!
//! Every engine in the workspace — Gale–Shapley, Irving, the parallel
//! batch front-ends — consumes preferences through [`PrefOracle`] (and
//! the roommates engines through [`RoommatesPrefs`]). A materialized
//! backend like [`crate::CsrPrefs`] is just one monomorphized
//! implementation: its fused-entry fast path is reached through
//! [`PrefOracle::entry`], so the compiled inner loop is the same code it
//! was when the engines were bound on [`BipartitePrefs`] directly.
//!
//! The point of the indirection is the *implicit* backends, which answer
//! rank and successor queries from O(n) or O(1) state and never write a
//! preference list anywhere:
//!
//! | backend | model | `next_candidate` | `rank` | memory |
//! |---|---|---|---|---|
//! | [`crate::CsrPrefs`] | explicit lists | O(1) fused load | O(1) table | O(n²) |
//! | [`RandomPermOracle`] | uniform random lists | O(1) expected (Feistel) | O(1) expected | O(1) |
//! | [`ScoreOracle`] | global popularity order | O(1) | O(1) | O(n) |
//! | [`TruncatedOracle`] | top-`K` of any inner oracle | inner | inner, clamped | inner |
//!
//! Mertens (*Random Stable Matchings*) shows uniform random instances
//! need only ~`n·ln n` proposals, so with [`RandomPermOracle`] the
//! engines solve n = 10⁶ instances in O(n) working memory — far past the
//! `CSR_MAX_N` ceiling of the materialized path.
//!
//! Truncated lists follow the paper's §III-B forbidden-pairs semantics:
//! a pair is acceptable only when *both* sides rank it inside the cap;
//! one-sided entries surface as [`UNRANKED`] and the engines reject them.

use crate::ids::{Rank, UNRANKED};
use crate::views::{BipartitePrefs, ResponderListSlice};
use crate::{BipartiteInstance, CsrPrefs, KPartitePairView, ReverseView, RoommatesInstance};

/// Lazy bipartite preference access — exactly the queries the
/// Gale–Shapley hot loop makes, with no `&[u32]` list exposure, so
/// implementations may compute answers on demand instead of storing
/// `n²` entries.
///
/// Conventions match [`BipartitePrefs`]: proposers and responders are
/// dense indices `0..agents()`, rank `0` is most preferred, and
/// [`UNRANKED`] marks an unacceptable pair (incomplete lists). Lists
/// must be duplicate-free; positions `0..list_len(p)` enumerate
/// proposer `p`'s list best-first.
pub trait PrefOracle {
    /// Members per side.
    fn agents(&self) -> usize;

    /// Length of proposer `p`'s preference list (`agents()` when
    /// complete, shorter when truncated).
    fn list_len(&self, p: u32) -> u32;

    /// The responder at position `cursor` of `p`'s list (0 = best).
    /// `cursor` must be `< list_len(p)`.
    fn next_candidate(&self, p: u32, cursor: u32) -> u32;

    /// Rank of responder `q` in proposer `p`'s list, or [`UNRANKED`]
    /// when `q` is not on it.
    fn rank(&self, p: u32, q: u32) -> Rank;

    /// Rank of proposer `p` in responder `q`'s list, or [`UNRANKED`]
    /// when `q` finds `p` unacceptable.
    fn accept_rank(&self, q: u32, p: u32) -> Rank;

    /// Does proposer `p` strictly prefer responder `a` over `b`?
    /// Unranked responders lose to ranked ones.
    #[inline]
    fn prefers(&self, p: u32, a: u32, b: u32) -> bool {
        self.rank(p, a) < self.rank(p, b)
    }

    /// Does responder `q` strictly prefer proposer `a` over `b`?
    #[inline]
    fn accepts(&self, q: u32, a: u32, b: u32) -> bool {
        self.accept_rank(q, a) < self.accept_rank(q, b)
    }

    /// Packed proposal entry for `p`'s list position `cursor`:
    /// `accept_rank(q, p) << 32 | q` where `q = next_candidate(p,
    /// cursor)` — the one fused word the GS inner loop consumes per
    /// proposal (see [`BipartitePrefs::proposal_entry`]). Overrides
    /// must return exactly this value.
    #[inline]
    fn entry(&self, p: u32, cursor: u32) -> u64 {
        let q = self.next_candidate(p, cursor);
        (self.accept_rank(q, p) as u64) << 32 | q as u64
    }

    /// Pull the cache line behind `entry(p, cursor)` toward the core
    /// without consuming the value — the GS strip kernel calls this one
    /// strip ahead of the commit loop so arena rows arrive before they
    /// are needed. `cursor` must be `< list_len(p)`, like
    /// [`PrefOracle::entry`].
    ///
    /// The default is a no-op: compute-backed oracles (scores, Feistel
    /// permutations) have nothing to warm, and doubling their entry
    /// arithmetic would cost more than a cache miss saves. Materialized
    /// (memory-bound) backends override it with a discarded read.
    #[inline]
    fn prefetch_entry(&self, p: u32, cursor: u32) {
        let _ = (p, cursor);
    }
}

/// A [`PrefOracle`] that can also enumerate responder-side lists in
/// order — what the roommates §III-B reduction and the materializers
/// need on top of the proposer-driven GS queries.
pub trait DualOracle: PrefOracle {
    /// Length of responder `q`'s preference list.
    fn accept_list_len(&self, q: u32) -> u32;

    /// The proposer at position `cursor` of responder `q`'s list
    /// (0 = best). `cursor` must be `< accept_list_len(q)`.
    fn accept_candidate(&self, q: u32, cursor: u32) -> u32;
}

// `PrefOracle` is implemented per materialized type (not via a blanket
// impl over `BipartitePrefs`) so implicit oracles can implement it
// directly without tripping trait-coherence overlap.
macro_rules! oracle_via_bipartite {
    () => {
        #[inline]
        fn agents(&self) -> usize {
            BipartitePrefs::n(self)
        }
        #[inline]
        fn list_len(&self, p: u32) -> u32 {
            BipartitePrefs::proposer_list(self, p).len() as u32
        }
        #[inline]
        fn next_candidate(&self, p: u32, cursor: u32) -> u32 {
            BipartitePrefs::proposer_list(self, p)[cursor as usize]
        }
        #[inline]
        fn rank(&self, p: u32, q: u32) -> Rank {
            BipartitePrefs::proposer_rank(self, p, q)
        }
        #[inline]
        fn accept_rank(&self, q: u32, p: u32) -> Rank {
            BipartitePrefs::responder_rank(self, q, p)
        }
        #[inline]
        fn entry(&self, p: u32, cursor: u32) -> u64 {
            BipartitePrefs::proposal_entry(self, p, cursor)
        }
        #[inline]
        fn prefetch_entry(&self, p: u32, cursor: u32) {
            // A discarded-but-forced read is the safe-code stand-in for a
            // prefetch instruction: it charges the memory system with the
            // line now so the commit loop's real load hits cache.
            std::hint::black_box(BipartitePrefs::proposal_entry(self, p, cursor));
        }
    };
}

macro_rules! dual_via_responder_slice {
    () => {
        #[inline]
        fn accept_list_len(&self, q: u32) -> u32 {
            ResponderListSlice::responder_list_slice(self, q).len() as u32
        }
        #[inline]
        fn accept_candidate(&self, q: u32, cursor: u32) -> u32 {
            ResponderListSlice::responder_list_slice(self, q)[cursor as usize]
        }
    };
}

impl PrefOracle for BipartiteInstance {
    oracle_via_bipartite!();
}
impl DualOracle for BipartiteInstance {
    dual_via_responder_slice!();
}

impl PrefOracle for CsrPrefs {
    oracle_via_bipartite!();
}
impl DualOracle for CsrPrefs {
    dual_via_responder_slice!();
}

impl PrefOracle for KPartitePairView<'_> {
    oracle_via_bipartite!();
}
impl DualOracle for KPartitePairView<'_> {
    dual_via_responder_slice!();
}

impl<P: BipartitePrefs + ResponderListSlice> PrefOracle for ReverseView<'_, P> {
    oracle_via_bipartite!();
}

/// SplitMix64 finalizer: the one hash primitive behind every implicit
/// oracle (round keys, tie-breaks, scores).
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Uniformly random complete preference lists that are never stored: a
/// keyed 4-round Feistel network gives each agent an O(1)-evaluable
/// *and* O(1)-invertible permutation of the other side.
///
/// The Feistel permutation acts on the smallest power-of-4 domain
/// `≥ n`; indices landing outside `0..n` are cycle-walked (re-encrypted
/// until they land inside), which preserves bijectivity and costs
/// `< 4` expected evaluations. `next_candidate(p, c)` is the forward
/// walk, `rank(p, q)` the inverse walk — both O(1) expected — and the
/// whole oracle is a few words of state regardless of `n`.
///
/// Determinism: the list set is a pure function of `(n, seed)`, so a
/// solve over this oracle is exactly reproducible, and materializing it
/// (see [`materialize_bipartite`]) yields a [`BipartiteInstance`] whose
/// solves agree byte-for-byte.
#[derive(Debug, Clone, Copy)]
pub struct RandomPermOracle {
    n: u32,
    /// Half-width of the Feistel domain: the permutation acts on
    /// `2·half_bits`-bit values.
    half_bits: u32,
    half_mask: u32,
    seed: u64,
}

const FEISTEL_ROUNDS: u64 = 4;

impl RandomPermOracle {
    /// Oracle over `n` agents per side, fully determined by `seed`.
    ///
    /// # Panics
    /// If `n` is zero or exceeds `u32::MAX / 2`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "empty instance");
        assert!(n <= (u32::MAX / 2) as usize, "side size exceeds u32 range");
        let mut half_bits = 1u32;
        while (1u64 << (2 * half_bits)) < n as u64 {
            half_bits += 1;
        }
        RandomPermOracle {
            n: n as u32,
            half_bits,
            half_mask: (1u32 << half_bits) - 1,
            seed,
        }
    }

    /// Round key for `agent` on `side` (0 = proposer lists, 1 =
    /// responder lists) at Feistel round `round`.
    #[inline]
    fn round_key(&self, side: u64, agent: u32, round: u64) -> u64 {
        mix(self
            .seed
            .wrapping_add(side << 62)
            .wrapping_add((agent as u64) << 8)
            .wrapping_add(round))
    }

    /// One forward pass of the Feistel permutation on the power-of-4
    /// domain.
    #[inline]
    fn feistel(&self, v: u32, side: u64, agent: u32) -> u32 {
        let (mut l, mut r) = (v >> self.half_bits, v & self.half_mask);
        for round in 0..FEISTEL_ROUNDS {
            let f = mix(self.round_key(side, agent, round) ^ r as u64) as u32 & self.half_mask;
            (l, r) = (r, l ^ f);
        }
        (l << self.half_bits) | r
    }

    /// One inverse pass of the Feistel permutation.
    #[inline]
    fn feistel_inv(&self, v: u32, side: u64, agent: u32) -> u32 {
        let (mut l, mut r) = (v >> self.half_bits, v & self.half_mask);
        for round in (0..FEISTEL_ROUNDS).rev() {
            let f = mix(self.round_key(side, agent, round) ^ l as u64) as u32 & self.half_mask;
            (l, r) = (r ^ f, l);
        }
        (l << self.half_bits) | r
    }

    /// `agent`'s permutation applied to list position `i` (cycle-walked
    /// into `0..n`).
    #[inline]
    fn perm(&self, side: u64, agent: u32, i: u32) -> u32 {
        debug_assert!(i < self.n);
        let mut v = self.feistel(i, side, agent);
        while v >= self.n {
            v = self.feistel(v, side, agent);
        }
        v
    }

    /// Inverse of [`RandomPermOracle::perm`]: the list position of `q`.
    #[inline]
    fn perm_inv(&self, side: u64, agent: u32, q: u32) -> u32 {
        debug_assert!(q < self.n);
        let mut v = self.feistel_inv(q, side, agent);
        while v >= self.n {
            v = self.feistel_inv(v, side, agent);
        }
        v
    }
}

impl PrefOracle for RandomPermOracle {
    #[inline]
    fn agents(&self) -> usize {
        self.n as usize
    }
    #[inline]
    fn list_len(&self, _p: u32) -> u32 {
        self.n
    }
    #[inline]
    fn next_candidate(&self, p: u32, cursor: u32) -> u32 {
        self.perm(0, p, cursor)
    }
    #[inline]
    fn rank(&self, p: u32, q: u32) -> Rank {
        self.perm_inv(0, p, q)
    }
    #[inline]
    fn accept_rank(&self, q: u32, p: u32) -> Rank {
        self.perm_inv(1, q, p)
    }
}

impl DualOracle for RandomPermOracle {
    #[inline]
    fn accept_list_len(&self, _q: u32) -> u32 {
        self.n
    }
    #[inline]
    fn accept_candidate(&self, q: u32, cursor: u32) -> u32 {
        self.perm(1, q, cursor)
    }
}

/// Popularity model: every agent ranks the other side by a global
/// score order (score descending, seeded hash tie-break), so all
/// proposers share one list and all responders share another.
///
/// Rank and successor queries are O(1) array lookups against four
/// `n`-word tables — O(n) memory total, no per-pair state. Identical
/// lists drive GS into its serial-dictatorship worst case (`Θ(n²)`
/// proposals), which is exactly why this backend exists next to
/// [`RandomPermOracle`] in the scaling benches: one spans the lower
/// envelope of proposal complexity, the other the upper.
#[derive(Debug, Clone)]
pub struct ScoreOracle {
    /// `responder_order[r]` = responder at rank `r` of every proposer's
    /// list.
    responder_order: Vec<u32>,
    /// Inverse of `responder_order`.
    responder_rank: Vec<u32>,
    /// `proposer_order[r]` = proposer at rank `r` of every responder's
    /// list.
    proposer_order: Vec<u32>,
    /// Inverse of `proposer_order`.
    proposer_rank: Vec<u32>,
}

impl ScoreOracle {
    /// Build from explicit per-agent scores (higher = more desirable);
    /// ties break by a seeded hash of the index, then by index.
    ///
    /// # Panics
    /// If the score slices are empty or differ in length.
    pub fn from_scores(proposer_scores: &[f64], responder_scores: &[f64], seed: u64) -> Self {
        assert!(!proposer_scores.is_empty(), "empty instance");
        assert_eq!(
            proposer_scores.len(),
            responder_scores.len(),
            "sides must be the same size"
        );
        let order_of = |scores: &[f64], salt: u64| -> (Vec<u32>, Vec<u32>) {
            let mut order: Vec<u32> = (0..scores.len() as u32).collect();
            order.sort_by(|&a, &b| {
                scores[b as usize]
                    .partial_cmp(&scores[a as usize])
                    .expect("scores must not be NaN")
                    .then_with(|| {
                        mix(seed ^ salt ^ a as u64)
                            .cmp(&mix(seed ^ salt ^ b as u64))
                            .then(a.cmp(&b))
                    })
            });
            let mut rank = vec![0u32; order.len()];
            for (r, &agent) in order.iter().enumerate() {
                rank[agent as usize] = r as u32;
            }
            (order, rank)
        };
        let (responder_order, responder_rank) = order_of(responder_scores, 0x00C0_FFEE);
        let (proposer_order, proposer_rank) = order_of(proposer_scores, 0x0BAD_CAFE);
        ScoreOracle {
            responder_order,
            responder_rank,
            proposer_order,
            proposer_rank,
        }
    }

    /// Popularity instance with seeded pseudo-random scores on both
    /// sides — the "everyone agrees who is popular" workload.
    pub fn popularity(n: usize, seed: u64) -> Self {
        let scores = |salt: u64| -> Vec<f64> {
            (0..n as u64)
                .map(|i| mix(seed ^ salt ^ i) as f64 / u64::MAX as f64)
                .collect()
        };
        ScoreOracle::from_scores(&scores(0x005C_04E5), &scores(0x0000_FFE4), seed)
    }
}

impl PrefOracle for ScoreOracle {
    #[inline]
    fn agents(&self) -> usize {
        self.responder_order.len()
    }
    #[inline]
    fn list_len(&self, _p: u32) -> u32 {
        self.responder_order.len() as u32
    }
    #[inline]
    fn next_candidate(&self, _p: u32, cursor: u32) -> u32 {
        self.responder_order[cursor as usize]
    }
    #[inline]
    fn rank(&self, _p: u32, q: u32) -> Rank {
        self.responder_rank[q as usize]
    }
    #[inline]
    fn accept_rank(&self, _q: u32, p: u32) -> Rank {
        self.proposer_rank[p as usize]
    }
}

impl DualOracle for ScoreOracle {
    #[inline]
    fn accept_list_len(&self, _q: u32) -> u32 {
        self.proposer_order.len() as u32
    }
    #[inline]
    fn accept_candidate(&self, _q: u32, cursor: u32) -> u32 {
        self.proposer_order[cursor as usize]
    }
}

/// Top-`K` truncation of any inner oracle: each side keeps only the
/// first `cap` entries of its list; everything past the cap reports
/// [`UNRANKED`].
///
/// A pair is *effectively* acceptable only when both sides rank it
/// inside the cap — the engines reject one-sided entries on the
/// [`UNRANKED`] accept rank — reproducing the §III-B forbidden-pairs
/// semantics without materializing the filtered lists. Solves over a
/// truncated oracle may leave agents unmatched; use the partial-match
/// entry points (`solve_partial` in `kmatch-gs`).
///
/// Note for fused-entry consumers: this type must *not* forward
/// [`PrefOracle::entry`] to the inner oracle — the packed accept rank
/// has to pass through the truncation — so it relies on the default
/// recomputing implementation.
#[derive(Debug, Clone, Copy)]
pub struct TruncatedOracle<O> {
    inner: O,
    cap: u32,
}

impl<O: PrefOracle> TruncatedOracle<O> {
    /// Keep the top `cap` entries of every list of `inner`.
    ///
    /// # Panics
    /// If `cap` is zero.
    pub fn new(inner: O, cap: u32) -> Self {
        assert!(cap > 0, "cap must be at least 1");
        TruncatedOracle { inner, cap }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The per-list cap.
    pub fn cap(&self) -> u32 {
        self.cap
    }
}

impl<O: PrefOracle> PrefOracle for TruncatedOracle<O> {
    #[inline]
    fn agents(&self) -> usize {
        self.inner.agents()
    }
    #[inline]
    fn list_len(&self, p: u32) -> u32 {
        self.inner.list_len(p).min(self.cap)
    }
    #[inline]
    fn next_candidate(&self, p: u32, cursor: u32) -> u32 {
        debug_assert!(cursor < self.cap);
        self.inner.next_candidate(p, cursor)
    }
    #[inline]
    fn rank(&self, p: u32, q: u32) -> Rank {
        let r = self.inner.rank(p, q);
        if r >= self.cap {
            UNRANKED
        } else {
            r
        }
    }
    #[inline]
    fn accept_rank(&self, q: u32, p: u32) -> Rank {
        let r = self.inner.accept_rank(q, p);
        if r >= self.cap {
            UNRANKED
        } else {
            r
        }
    }
}

impl<O: DualOracle> DualOracle for TruncatedOracle<O> {
    #[inline]
    fn accept_list_len(&self, q: u32) -> u32 {
        self.inner.accept_list_len(q).min(self.cap)
    }
    #[inline]
    fn accept_candidate(&self, q: u32, cursor: u32) -> u32 {
        debug_assert!(cursor < self.cap);
        self.inner.accept_candidate(q, cursor)
    }
}

/// Lazy roommates preference access — the queries Irving's algorithm
/// makes ([`RoommatesPrefs::candidate`], [`RoommatesPrefs::rank_of`]),
/// abstracted from [`RoommatesInstance`] so the engine can also run on
/// the §III-B view of an implicit bipartite oracle.
pub trait RoommatesPrefs {
    /// Number of participants.
    fn n(&self) -> usize;

    /// Length of participant `p`'s preference list.
    fn list_len(&self, p: u32) -> u32;

    /// The participant at position `pos` of `p`'s list (0 = best).
    /// `pos` must be `< list_len(p)`.
    fn candidate(&self, p: u32, pos: u32) -> u32;

    /// Rank of `q` in `p`'s list, or [`UNRANKED`] when absent.
    fn rank_of(&self, p: u32, q: u32) -> Rank;

    /// Fused candidate word for position `pos` of `p`'s list:
    /// `rank_of(q, p) << 32 | q` with `q = candidate(p, pos)` — the
    /// candidate and the rank that candidate assigns `p` in one value,
    /// the pair Irving's phase-1 liveness predicate
    /// (`rank_of(q, p) ≤ thresh[q]`) consumes per probe. Materialized
    /// backends override this with a precomputed streamed arena
    /// ([`RoommatesInstance::candidate_entry`]); the default recomputes
    /// it, so implicit oracles monomorphize through the same kernels.
    #[inline]
    fn candidate_entry(&self, p: u32, pos: u32) -> u64 {
        let q = self.candidate(p, pos);
        ((self.rank_of(q, p) as u64) << 32) | q as u64
    }

    /// Does `p` strictly prefer `a` over `b`?
    #[inline]
    fn prefers(&self, p: u32, a: u32, b: u32) -> bool {
        self.rank_of(p, a) < self.rank_of(p, b)
    }
}

impl<R: RoommatesPrefs + ?Sized> RoommatesPrefs for &R {
    #[inline]
    fn n(&self) -> usize {
        (**self).n()
    }
    #[inline]
    fn list_len(&self, p: u32) -> u32 {
        (**self).list_len(p)
    }
    #[inline]
    fn candidate(&self, p: u32, pos: u32) -> u32 {
        (**self).candidate(p, pos)
    }
    #[inline]
    fn rank_of(&self, p: u32, q: u32) -> Rank {
        (**self).rank_of(p, q)
    }
    #[inline]
    fn candidate_entry(&self, p: u32, pos: u32) -> u64 {
        (**self).candidate_entry(p, pos)
    }
    #[inline]
    fn prefers(&self, p: u32, a: u32, b: u32) -> bool {
        (**self).prefers(p, a, b)
    }
}

impl RoommatesPrefs for RoommatesInstance {
    #[inline]
    fn n(&self) -> usize {
        RoommatesInstance::n(self)
    }
    #[inline]
    fn list_len(&self, p: u32) -> u32 {
        RoommatesInstance::list(self, p).len() as u32
    }
    #[inline]
    fn candidate(&self, p: u32, pos: u32) -> u32 {
        RoommatesInstance::list(self, p)[pos as usize]
    }
    #[inline]
    fn rank_of(&self, p: u32, q: u32) -> Rank {
        RoommatesInstance::rank_of(self, p, q)
    }
    #[inline]
    fn candidate_entry(&self, p: u32, pos: u32) -> u64 {
        RoommatesInstance::candidate_entry(self, p, pos)
    }
    #[inline]
    fn prefers(&self, p: u32, a: u32, b: u32) -> bool {
        RoommatesInstance::prefers(self, p, a, b)
    }
}

/// The paper's §III-B reduction, lazily: a *complete* bipartite
/// [`DualOracle`] over `n` agents per side viewed as a `2n`-participant
/// roommates instance in which each side ranks only the other
/// (proposer `p` is participant `p`, responder `q` is participant
/// `n + q`, and same-side pairs are forbidden).
///
/// Irving's algorithm on this view finds stable matchings of the
/// underlying marriage instance without materializing any list, which
/// is how the roommates scaling benches reach n = 10⁵ participants.
#[derive(Debug, Clone, Copy)]
pub struct RoommatesOracleView<'a, O> {
    inner: &'a O,
    n: u32,
}

impl<'a, O: DualOracle> RoommatesOracleView<'a, O> {
    /// View `inner` as a roommates instance over `2 · agents()`
    /// participants.
    ///
    /// # Panics
    /// If any list of `inner` is incomplete — the reduction's implicit
    /// rank filter is only O(1) for complete inner oracles; truncated
    /// oracles should be materialized first (see
    /// [`materialize_roommates`]).
    pub fn new(inner: &'a O) -> Self {
        let n = inner.agents() as u32;
        for p in 0..n {
            assert!(
                inner.list_len(p) == n && inner.accept_list_len(p) == n,
                "RoommatesOracleView requires a complete inner oracle"
            );
        }
        RoommatesOracleView { inner, n }
    }

    /// Agents per side of the underlying bipartite oracle.
    pub fn side(&self) -> usize {
        self.n as usize
    }
}

impl<O: DualOracle> RoommatesPrefs for RoommatesOracleView<'_, O> {
    #[inline]
    fn n(&self) -> usize {
        2 * self.n as usize
    }
    #[inline]
    fn list_len(&self, _p: u32) -> u32 {
        self.n
    }
    #[inline]
    fn candidate(&self, p: u32, pos: u32) -> u32 {
        if p < self.n {
            self.n + self.inner.next_candidate(p, pos)
        } else {
            self.inner.accept_candidate(p - self.n, pos)
        }
    }
    #[inline]
    fn rank_of(&self, p: u32, q: u32) -> Rank {
        if p < self.n {
            if q >= self.n {
                self.inner.rank(p, q - self.n)
            } else {
                UNRANKED
            }
        } else if q < self.n {
            self.inner.accept_rank(p - self.n, q)
        } else {
            UNRANKED
        }
    }
}

/// Materialize an oracle's raw lists: `(proposer_lists,
/// responder_lists)`, each list best-first, truncation included but
/// *not* mutualized.
pub fn materialize_lists<O: DualOracle>(oracle: &O) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let n = oracle.agents() as u32;
    let proposers = (0..n)
        .map(|p| {
            (0..oracle.list_len(p))
                .map(|c| oracle.next_candidate(p, c))
                .collect()
        })
        .collect();
    let responders = (0..n)
        .map(|q| {
            (0..oracle.accept_list_len(q))
                .map(|c| oracle.accept_candidate(q, c))
                .collect()
        })
        .collect();
    (proposers, responders)
}

/// Materialize an oracle's lists with one-sided entries dropped: `q`
/// stays on `p`'s list only when `q` also ranks `p` (and vice versa) —
/// the §III-B mutual-acceptability closure a truncated oracle implies.
/// Order within each list is preserved.
pub fn materialize_mutual_lists<O: DualOracle>(oracle: &O) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let (mut proposers, mut responders) = materialize_lists(oracle);
    for (p, list) in proposers.iter_mut().enumerate() {
        list.retain(|&q| oracle.accept_rank(q, p as u32) != UNRANKED);
    }
    for (q, list) in responders.iter_mut().enumerate() {
        list.retain(|&p| oracle.rank(p, q as u32) != UNRANKED);
    }
    (proposers, responders)
}

/// Materialize a *complete* oracle into an owned
/// [`BipartiteInstance`] — the differential-testing bridge between an
/// implicit backend and every materialized code path.
///
/// # Panics
/// If the oracle's lists are not complete permutations.
pub fn materialize_bipartite<O: DualOracle>(oracle: &O) -> BipartiteInstance {
    let (proposers, responders) = materialize_lists(oracle);
    BipartiteInstance::from_lists(&proposers, &responders)
        .expect("complete oracle lists must form valid permutations")
}

/// Materialize a complete oracle's §III-B roommates reduction into an
/// owned [`RoommatesInstance`] over `2n` participants — the
/// differential baseline for [`RoommatesOracleView`].
///
/// # Panics
/// If the oracle's lists are not complete permutations.
pub fn materialize_roommates<O: DualOracle>(oracle: &O) -> RoommatesInstance {
    let n = oracle.agents() as u32;
    let (proposers, responders) = materialize_lists(oracle);
    let mut lists: Vec<Vec<u32>> = Vec::with_capacity(2 * n as usize);
    for list in proposers {
        lists.push(list.into_iter().map(|q| n + q).collect());
    }
    lists.extend(responders);
    RoommatesInstance::from_lists(lists)
        .expect("complete oracle lists must form a valid roommates instance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform::uniform_bipartite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_is_permutation(seen: &[u32], n: u32) {
        let mut hit = vec![false; n as usize];
        for &q in seen {
            assert!(q < n, "candidate out of range");
            assert!(!hit[q as usize], "duplicate candidate {q}");
            hit[q as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "missing candidates");
    }

    #[test]
    fn random_perm_lists_are_permutations_with_exact_inverse() {
        for n in [1usize, 2, 3, 7, 16, 33, 64, 100] {
            let o = RandomPermOracle::new(n, 0x5EED ^ n as u64);
            for p in 0..n as u32 {
                let list: Vec<u32> = (0..n as u32).map(|c| o.next_candidate(p, c)).collect();
                assert_is_permutation(&list, n as u32);
                for (c, &q) in list.iter().enumerate() {
                    assert_eq!(o.rank(p, q), c as u32, "n={n} p={p}");
                }
                let accept: Vec<u32> = (0..n as u32).map(|c| o.accept_candidate(p, c)).collect();
                assert_is_permutation(&accept, n as u32);
                for (c, &q) in accept.iter().enumerate() {
                    assert_eq!(o.accept_rank(p, q), c as u32);
                }
            }
        }
    }

    #[test]
    fn random_perm_seeds_decorrelate_sides_and_agents() {
        let n = 64usize;
        let o = RandomPermOracle::new(n, 7);
        let row = |p: u32| -> Vec<u32> { (0..n as u32).map(|c| o.next_candidate(p, c)).collect() };
        assert_ne!(row(0), row(1), "agents must get distinct lists");
        let accept0: Vec<u32> = (0..n as u32).map(|c| o.accept_candidate(0, c)).collect();
        assert_ne!(row(0), accept0, "sides must be salted apart");
        let o2 = RandomPermOracle::new(n, 8);
        assert_ne!(
            row(0),
            (0..n as u32).map(|c| o2.next_candidate(0, c)).collect::<Vec<_>>(),
            "seed must change the lists"
        );
    }

    #[test]
    fn fused_entry_default_matches_components() {
        let o = RandomPermOracle::new(19, 3);
        for p in 0..19u32 {
            for c in 0..19u32 {
                let e = o.entry(p, c);
                let q = e as u32;
                assert_eq!(q, o.next_candidate(p, c));
                assert_eq!((e >> 32) as u32, o.accept_rank(q, p));
            }
        }
    }

    #[test]
    fn score_oracle_orders_by_score_then_tiebreak() {
        let o = ScoreOracle::from_scores(&[0.1, 0.9, 0.5], &[0.3, 0.2, 0.8], 42);
        // Responder order (every proposer's list): by responder score
        // descending → 2, 0, 1.
        assert_eq!(
            (0..3).map(|c| o.next_candidate(0, c)).collect::<Vec<_>>(),
            vec![2, 0, 1]
        );
        // Proposer order (every responder's list): 1, 2, 0.
        assert_eq!(
            (0..3).map(|c| o.accept_candidate(0, c)).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
        for q in 0..3u32 {
            assert_eq!(o.rank(1, o.next_candidate(1, q)), q);
        }
    }

    #[test]
    fn score_oracle_ties_break_deterministically() {
        let tied = vec![1.0; 40];
        let a = ScoreOracle::from_scores(&tied, &tied, 9);
        let b = ScoreOracle::from_scores(&tied, &tied, 9);
        let list = |o: &ScoreOracle| -> Vec<u32> { (0..40).map(|c| o.next_candidate(0, c)).collect() };
        assert_eq!(list(&a), list(&b), "same seed, same order");
        assert_is_permutation(&list(&a), 40);
        let c = ScoreOracle::from_scores(&tied, &tied, 10);
        assert_ne!(list(&a), list(&c), "tie-break must depend on the seed");
    }

    #[test]
    fn truncated_oracle_clamps_both_sides() {
        let o = TruncatedOracle::new(RandomPermOracle::new(12, 5), 4);
        assert_eq!(o.list_len(3), 4);
        assert_eq!(o.accept_list_len(3), 4);
        for p in 0..12u32 {
            for c in 0..4u32 {
                let q = o.next_candidate(p, c);
                assert_eq!(o.rank(p, q), c);
            }
            // Everything past the cap is unranked.
            for q in 0..12u32 {
                let inner_rank = o.inner().rank(p, q);
                if inner_rank >= 4 {
                    assert_eq!(o.rank(p, q), UNRANKED);
                }
            }
        }
        // The fused entry must reflect the truncated accept rank.
        for p in 0..12u32 {
            for c in 0..4u32 {
                let e = o.entry(p, c);
                let q = e as u32;
                assert_eq!((e >> 32) as u32, o.accept_rank(q, p));
            }
        }
    }

    #[test]
    fn csr_and_instance_agree_through_the_oracle_face() {
        let inst = uniform_bipartite(23, &mut ChaCha8Rng::seed_from_u64(77));
        let csr = CsrPrefs::from_prefs(&inst);
        assert_eq!(PrefOracle::agents(&inst), PrefOracle::agents(&csr));
        for p in 0..23u32 {
            assert_eq!(PrefOracle::list_len(&inst, p), 23);
            for c in 0..23u32 {
                assert_eq!(
                    PrefOracle::entry(&inst, p, c),
                    PrefOracle::entry(&csr, p, c),
                    "fused entries must agree"
                );
                assert_eq!(
                    PrefOracle::next_candidate(&inst, p, c),
                    PrefOracle::next_candidate(&csr, p, c)
                );
            }
        }
    }

    #[test]
    fn materialized_random_oracle_round_trips() {
        let o = RandomPermOracle::new(17, 99);
        let inst = materialize_bipartite(&o);
        for p in 0..17u32 {
            for c in 0..17u32 {
                assert_eq!(PrefOracle::entry(&inst, p, c), o.entry(p, c));
            }
            for q in 0..17u32 {
                assert_eq!(PrefOracle::rank(&inst, p, q), o.rank(p, q));
                assert_eq!(PrefOracle::accept_rank(&inst, q, p), o.accept_rank(q, p));
            }
        }
    }

    #[test]
    fn mutual_lists_drop_one_sided_entries() {
        let o = TruncatedOracle::new(RandomPermOracle::new(10, 2), 3);
        let (proposers, responders) = materialize_mutual_lists(&o);
        for (p, list) in proposers.iter().enumerate() {
            for &q in list {
                assert_ne!(o.rank(p as u32, q), UNRANKED);
                assert_ne!(o.accept_rank(q, p as u32), UNRANKED);
                assert!(responders[q as usize].contains(&(p as u32)));
            }
        }
        // Mutualization drops something at this cap and size (each side
        // keeps 3 of 10; intersections are sparse).
        assert!(proposers.iter().any(|l| l.len() < 3));
    }

    #[test]
    fn roommates_view_matches_materialized_reduction() {
        let o = RandomPermOracle::new(9, 4);
        let view = RoommatesOracleView::new(&o);
        let inst = materialize_roommates(&o);
        assert_eq!(RoommatesPrefs::n(&view), 18);
        assert_eq!(RoommatesPrefs::n(&inst), 18);
        for p in 0..18u32 {
            assert_eq!(
                RoommatesPrefs::list_len(&view, p),
                RoommatesPrefs::list_len(&inst, p)
            );
            for pos in 0..RoommatesPrefs::list_len(&view, p) {
                assert_eq!(
                    RoommatesPrefs::candidate(&view, p, pos),
                    RoommatesPrefs::candidate(&inst, p, pos)
                );
            }
            for q in 0..18u32 {
                assert_eq!(
                    RoommatesPrefs::rank_of(&view, p, q),
                    RoommatesPrefs::rank_of(&inst, p, q),
                    "p={p} q={q}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "complete inner oracle")]
    fn roommates_view_rejects_truncated_oracles() {
        let o = TruncatedOracle::new(RandomPermOracle::new(8, 1), 3);
        let _ = RoommatesOracleView::new(&o);
    }
}
