//! Workload generators for every experiment in EXPERIMENTS.md.
//!
//! All randomized generators take an explicit [`rand::Rng`] so that every
//! experiment is reproducible from a seed; none of them touch global RNG
//! state.
//!
//! * [`uniform`] — i.i.d. uniform-random preference orders (the default
//!   workload).
//! * [`correlated`] — popularity-weighted orders, modelling agreement among
//!   members about who is desirable.
//! * [`mallows`] — Mallows-dispersed orders around a reference ranking
//!   (the matching literature's standard correlation model).
//! * [`euclidean`] — geometric preferences: members are points, ranked by
//!   distance.
//! * [`structured`] — deterministic structured instances: identical lists
//!   (a Θ(n²)-proposal workload for GS), cyclic/latin orders, master lists.
//! * [`adversarial`] — the Theorem-1 construction: k-partite binary-matching
//!   instances (k > 2) that provably admit **no** stable binary matching.
//! * [`paper`] — the paper's worked examples encoded verbatim (Example 1,
//!   Figs. 1–3, the §III-B traces, the §IV-B Theorem-4 cycle).

pub mod adversarial;
pub mod correlated;
pub mod euclidean;
pub mod mallows;
pub mod paper;
pub mod structured;
pub mod uniform;

pub use adversarial::theorem1_roommates;
pub use correlated::{correlated_bipartite, correlated_kpartite};
pub use euclidean::{euclidean_bipartite, euclidean_kpartite};
pub use mallows::{mallows_bipartite, mallows_kpartite};
pub use structured::{cyclic_bipartite, identical_bipartite, master_list_kpartite};
pub use uniform::{uniform_bipartite, uniform_kpartite, uniform_roommates};
