//! Popularity-correlated instances.
//!
//! Real matching markets are rarely uniform: some participants are broadly
//! agreed to be desirable. These generators draw each preference order by
//! weighted sampling without replacement, where member `j` carries weight
//! `exp(-alpha * j / n)`. `alpha = 0` degenerates to uniform; large `alpha`
//! approaches a global "master list" everyone agrees on.
//!
//! Sampling uses the Efraimidis–Spirakis exponential-keys trick: draw
//! `key_j = u_j^(1/w_j)` with `u_j ~ U(0,1)` and sort descending, which is
//! equivalent to successive weighted draws without replacement and costs
//! `O(n log n)` per list.

use rand::Rng;

use crate::{BipartiteInstance, KPartiteInstance};

/// One popularity-weighted order of `0..n`.
fn weighted_perm(n: usize, alpha: f64, rng: &mut impl Rng) -> Vec<u32> {
    debug_assert!(alpha >= 0.0, "alpha must be non-negative");
    let mut keyed: Vec<(f64, u32)> = (0..n)
        .map(|j| {
            let w = (-alpha * j as f64 / n as f64).exp();
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            // Sort by u^(1/w) descending; use log for numeric stability:
            // log key = ln(u) / w (negative; closer to 0 is better).
            (u.ln() / w, j as u32)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
    keyed.into_iter().map(|(_, j)| j).collect()
}

/// Popularity-correlated bipartite instance: lower-indexed members of each
/// side are (stochastically) more desirable, with strength `alpha >= 0`.
pub fn correlated_bipartite(n: usize, alpha: f64, rng: &mut impl Rng) -> BipartiteInstance {
    assert!(n > 0, "n must be positive");
    let side0: Vec<Vec<u32>> = (0..n).map(|_| weighted_perm(n, alpha, rng)).collect();
    let side1: Vec<Vec<u32>> = (0..n).map(|_| weighted_perm(n, alpha, rng)).collect();
    BipartiteInstance::from_lists(&side0, &side1).expect("weighted orders are permutations")
}

/// Popularity-correlated k-partite instance with agreement strength `alpha`.
pub fn correlated_kpartite(k: usize, n: usize, alpha: f64, rng: &mut impl Rng) -> KPartiteInstance {
    assert!(k >= 2, "k must be at least 2");
    assert!(n > 0, "n must be positive");
    let lists: Vec<Vec<Vec<Vec<u32>>>> = (0..k)
        .map(|g| {
            (0..n)
                .map(|_| {
                    (0..k)
                        .map(|h| {
                            if h == g {
                                Vec::new()
                            } else {
                                weighted_perm(n, alpha, rng)
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    KPartiteInstance::from_lists(&lists).expect("weighted orders are permutations")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Average rank that the population assigns to member 0 vs member n-1.
    fn avg_rank_of(inst: &BipartiteInstance, j: u32) -> f64 {
        let n = inst.n();
        (0..n as u32)
            .map(|m| inst.proposer_rank(m, j) as f64)
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn high_alpha_concentrates_popularity() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let inst = correlated_bipartite(64, 24.0, &mut rng);
        let top = avg_rank_of(&inst, 0);
        let bottom = avg_rank_of(&inst, 63);
        assert!(
            top + 10.0 < bottom,
            "member 0 should average far better rank: {top} vs {bottom}"
        );
    }

    #[test]
    fn zero_alpha_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let inst = correlated_bipartite(64, 0.0, &mut rng);
        let top = avg_rank_of(&inst, 0);
        // Uniform expectation is (n-1)/2 = 31.5; allow generous noise.
        assert!(
            (top - 31.5).abs() < 8.0,
            "expected near-uniform mean rank, got {top}"
        );
    }

    #[test]
    fn kpartite_valid_and_deterministic() {
        let a = correlated_kpartite(3, 8, 4.0, &mut ChaCha8Rng::seed_from_u64(3));
        let b = correlated_kpartite(3, 8, 4.0, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a, b);
        assert_eq!(a.k(), 3);
        assert_eq!(a.n(), 8);
    }
}
