//! Uniform-random instances: every preference order an independent uniform
//! permutation.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{BipartiteInstance, KPartiteInstance, RoommatesInstance};

/// One uniform-random permutation of `0..n`.
fn random_perm(n: usize, rng: &mut impl Rng) -> Vec<u32> {
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(rng);
    v
}

/// Uniform-random balanced bipartite (SMP) instance of size `n`.
pub fn uniform_bipartite(n: usize, rng: &mut impl Rng) -> BipartiteInstance {
    assert!(n > 0, "n must be positive");
    let side0: Vec<Vec<u32>> = (0..n).map(|_| random_perm(n, rng)).collect();
    let side1: Vec<Vec<u32>> = (0..n).map(|_| random_perm(n, rng)).collect();
    BipartiteInstance::from_lists(&side0, &side1).expect("generated lists are permutations")
}

/// Uniform-random balanced k-partite instance: every member's order over
/// every other gender is an independent uniform permutation.
pub fn uniform_kpartite(k: usize, n: usize, rng: &mut impl Rng) -> KPartiteInstance {
    assert!(k >= 2, "k must be at least 2");
    assert!(n > 0, "n must be positive");
    let lists: Vec<Vec<Vec<Vec<u32>>>> = (0..k)
        .map(|g| {
            (0..n)
                .map(|_| {
                    (0..k)
                        .map(|h| {
                            if h == g {
                                Vec::new()
                            } else {
                                random_perm(n, rng)
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    KPartiteInstance::from_lists(&lists).expect("generated lists are permutations")
}

/// Uniform-random complete roommates instance over `n` participants
/// (everyone ranks everyone else).
pub fn uniform_roommates(n: usize, rng: &mut impl Rng) -> RoommatesInstance {
    assert!(n >= 2, "need at least two participants");
    let lists: Vec<Vec<u32>> = (0..n as u32)
        .map(|p| {
            let mut others: Vec<u32> = (0..n as u32).filter(|&q| q != p).collect();
            others.shuffle(rng);
            others
        })
        .collect();
    RoommatesInstance::from_lists(lists).expect("complete lists are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bipartite_shape_and_determinism() {
        let a = uniform_bipartite(16, &mut ChaCha8Rng::seed_from_u64(7));
        let b = uniform_bipartite(16, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b, "same seed must give same instance");
        assert_eq!(a.n(), 16);
        let c = uniform_bipartite(16, &mut ChaCha8Rng::seed_from_u64(8));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn kpartite_shape() {
        let inst = uniform_kpartite(4, 5, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(inst.k(), 4);
        assert_eq!(inst.n(), 5);
        // every non-self list is a permutation: from_lists validated it.
    }

    #[test]
    fn roommates_complete_lists() {
        let rm = uniform_roommates(9, &mut ChaCha8Rng::seed_from_u64(2));
        assert_eq!(rm.n(), 9);
        for p in 0..9u32 {
            assert_eq!(rm.list(p).len(), 8);
            for q in 0..9u32 {
                assert_eq!(rm.acceptable(p, q), p != q);
            }
        }
    }
}
