//! Deterministic structured instances.
//!
//! * [`identical_bipartite`] — all proposers share one list; GS then
//!   degenerates to serial dictatorship and performs
//!   `n + (n-1) + … + 1 = n(n+1)/2 = Θ(n²)` proposals, a tight workload for
//!   the Theorem-3 bound experiments (E1/E6).
//! * [`cyclic_bipartite`] — latin-square (cyclic-shift) orders; every member
//!   is someone's first choice, so GS finishes in one round with `n`
//!   proposals: the best case, bracketing the identical-lists worst case.
//! * [`master_list_kpartite`] — every gender agrees on one master order per
//!   target gender (shifted per member to stay well-defined when asked for
//!   diversity = 0 it is a true master list).

use crate::{BipartiteInstance, KPartiteInstance};

/// All proposers rank responders `0, 1, …, n-1`; responders rank proposers
/// `0, 1, …, n-1`. Proposer `m` issues `m + 1` proposals under GS, so the
/// total is `n(n+1)/2`.
pub fn identical_bipartite(n: usize) -> BipartiteInstance {
    assert!(n > 0, "n must be positive");
    let asc: Vec<u32> = (0..n as u32).collect();
    let side: Vec<Vec<u32>> = (0..n).map(|_| asc.clone()).collect();
    BipartiteInstance::from_lists(&side, &side).expect("ascending lists are permutations")
}

/// Cyclic (latin-square) instance: proposer `m`'s list is
/// `m, m+1, …, m-1 (mod n)` and responder `w`'s list is `w, w+1, …`.
/// Every proposer's first choice is distinct, so GS terminates after one
/// round with exactly `n` proposals.
pub fn cyclic_bipartite(n: usize) -> BipartiteInstance {
    assert!(n > 0, "n must be positive");
    let shifted = |s: usize| -> Vec<u32> { (0..n).map(|r| ((s + r) % n) as u32).collect() };
    let side0: Vec<Vec<u32>> = (0..n).map(shifted).collect();
    let side1: Vec<Vec<u32>> = (0..n).map(shifted).collect();
    BipartiteInstance::from_lists(&side0, &side1).expect("cyclic shifts are permutations")
}

/// k-partite instance in which every member of gender `g` ranks gender `h`
/// by the same master order `0, 1, …, n-1`, rotated by the member's own
/// index when `rotate` is true (making first choices distinct).
///
/// With `rotate = false` this is the fully-aligned "everyone wants the same
/// partners" regime — the k-partite analogue of [`identical_bipartite`].
pub fn master_list_kpartite(k: usize, n: usize, rotate: bool) -> KPartiteInstance {
    assert!(k >= 2, "k must be at least 2");
    assert!(n > 0, "n must be positive");
    let lists: Vec<Vec<Vec<Vec<u32>>>> = (0..k)
        .map(|g| {
            (0..n)
                .map(|i| {
                    (0..k)
                        .map(|h| {
                            if h == g {
                                Vec::new()
                            } else {
                                let shift = if rotate { i } else { 0 };
                                (0..n).map(|r| ((shift + r) % n) as u32).collect()
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    KPartiteInstance::from_lists(&lists).expect("master lists are permutations")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GenderId, Member};

    #[test]
    fn identical_lists_are_identical() {
        let inst = identical_bipartite(5);
        for m in 1..5u32 {
            assert_eq!(inst.proposer_list(m), inst.proposer_list(0));
        }
        assert_eq!(inst.proposer_list(0), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn cyclic_first_choices_distinct() {
        let inst = cyclic_bipartite(6);
        let firsts: Vec<u32> = (0..6u32).map(|m| inst.proposer_list(m)[0]).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..6u32).collect::<Vec<_>>(),
            "first choices form a permutation"
        );
    }

    #[test]
    fn master_list_alignment() {
        let inst = master_list_kpartite(3, 4, false);
        let a = Member::new(0usize, 0);
        let b = Member::new(0usize, 3);
        assert_eq!(
            inst.pref_list(a, GenderId(1)),
            inst.pref_list(b, GenderId(1))
        );
        let rotated = master_list_kpartite(3, 4, true);
        assert_ne!(
            rotated.pref_list(a, GenderId(1)),
            rotated.pref_list(Member::new(0usize, 1), GenderId(1))
        );
    }
}
