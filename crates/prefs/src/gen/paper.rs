//! The paper's worked examples, encoded verbatim.
//!
//! Each fixture cites the paper location it reproduces; regression tests in
//! `kmatch-gs`, `kmatch-roommates` and `kmatch-core` assert the exact
//! outcomes the paper reports for these inputs.
//!
//! Gender/participant conventions used throughout:
//! * tripartite instances: gender 0 = `M = {m, m'}`, gender 1 =
//!   `W = {w, w'}`, gender 2 = `U = {u, u'}`; index 0 is the unprimed
//!   member.
//! * roommates encodings of the tripartite examples: participants
//!   `m=0, m'=1, w=2, w'=3, u=4, u'=5`.

use crate::{BipartiteInstance, KPartiteInstance, RoommatesInstance};

/// Example 1, first preference set (§II-A):
/// `m: w > w'`, `m': w > w'`, `w: m' > m`, `w': m' > m`.
///
/// GS (men propose) yields `(m', w), (m, w')` — "although neither m nor w'
/// is happy".
pub fn example1_first() -> BipartiteInstance {
    BipartiteInstance::from_lists(&[vec![0, 1], vec![0, 1]], &[vec![1, 0], vec![1, 0]])
        .expect("paper fixture is valid")
}

/// Example 1, second preference set (§II-A):
/// `m: w > w'`, `m': w' > w`, `w: m' > m`, `w': m > m'`.
///
/// GS (men propose) yields the man-optimal `(m, w), (m', w')`; the
/// woman-optimal `(m, w'), (m', w)` also stable but never produced by
/// man-proposing GS — the paper's illustration of GS unfairness. The same
/// lists are the §III-B "deadlock" example (Fig. 2).
pub fn example1_second() -> BipartiteInstance {
    BipartiteInstance::from_lists(&[vec![0, 1], vec![1, 0]], &[vec![1, 0], vec![0, 1]])
        .expect("paper fixture is valid")
}

/// Fig. 2 / end of §III-B: the circular-proposal SMP instance. Identical to
/// [`example1_second`]; exported under the figure's name for clarity.
pub fn fig2_deadlock_smp() -> BipartiteInstance {
    example1_second()
}

/// Fig. 3 (§IV-A): the tripartite instance used to demonstrate Algorithm 1.
///
/// Satisfies every constraint the text states:
/// * "both u and u' rank m higher than m', although m ranks u' higher and
///   m' ranks u higher";
/// * binding `M−W` pairs `(m,w), (m',w')`; binding `W−U` pairs
///   `(w,u), (w',u')`, giving families `(m,w,u), (m',w',u')`;
/// * §IV-B: bindings `M−U, U−W` give `(m,w',u'), (m',w,u)` and bindings
///   `M−U, M−W` give `(m,w,u'), (m',w',u)`.
pub fn fig3_tripartite() -> KPartiteInstance {
    let lists = vec![
        // Gender 0 = M
        vec![
            // m : W: w > w'    U: u' > u
            vec![vec![], vec![0, 1], vec![1, 0]],
            // m': W: w' > w    U: u > u'
            vec![vec![], vec![1, 0], vec![0, 1]],
        ],
        // Gender 1 = W
        vec![
            // w : M: m > m'    U: u > u'
            vec![vec![0, 1], vec![], vec![0, 1]],
            // w': M: m' > m    U: u' > u
            vec![vec![1, 0], vec![], vec![1, 0]],
        ],
        // Gender 2 = U
        vec![
            // u : M: m > m'    W: w > w'
            vec![vec![0, 1], vec![0, 1], vec![]],
            // u': M: m > m'    W: w' > w
            vec![vec![0, 1], vec![1, 0], vec![]],
        ],
    ];
    KPartiteInstance::from_lists(&lists).expect("paper fixture is valid")
}

/// §III-B, left-hand preference lists (tripartite binary matching solved as
/// roommates with incomplete lists):
///
/// ```text
/// m : u' w w' u        w : m m' u' u        u : m m' w' w
/// m': u' w u w'        w': m' m u u'        u': m w w' m'
/// ```
///
/// The paper's trace ends with the stable matching
/// `(m, u'), (m', w), (w', u)`.
pub fn section3b_left() -> RoommatesInstance {
    RoommatesInstance::from_lists(vec![
        vec![5, 2, 3, 4], // m : u' w w' u
        vec![5, 2, 4, 3], // m': u' w u w'
        vec![0, 1, 5, 4], // w : m m' u' u
        vec![1, 0, 4, 5], // w': m' m u u'
        vec![0, 1, 3, 2], // u : m m' w' w
        vec![0, 2, 3, 1], // u': m w w' m'
    ])
    .expect("paper fixture is valid")
}

/// §III-B, right-hand preference lists:
///
/// ```text
/// m : w' u' u w        w : m' m u u'        u : m m' w w'
/// m': w' w u u'        w': m m' u u'        u': m w' w m'
/// ```
///
/// The paper's trace empties u's reduced list: **no stable binary matching
/// exists**.
pub fn section3b_right() -> RoommatesInstance {
    RoommatesInstance::from_lists(vec![
        vec![3, 5, 4, 2], // m : w' u' u w
        vec![3, 2, 4, 5], // m': w' w u u'
        vec![1, 0, 4, 5], // w : m' m u u'
        vec![0, 1, 4, 5], // w': m m' u u'
        vec![0, 1, 2, 3], // u : m m' w w'
        vec![0, 3, 2, 1], // u': m w' w m'
    ])
    .expect("paper fixture is valid")
}

/// §IV-B (Theorem 4): the top-choice cycle showing that **three** bindings
/// of a tripartite instance cannot all be consistent and stable:
///
/// ```text
/// m: w   m': w   w: m   w': m'   (M ↔ W)
/// w: u   w': u   u: w   u': w'   (W ↔ U)
/// m: u   m': u   u: m'  u': m'   (M ↔ U)
/// ```
///
/// The three pairwise-stable binary matchings produced by GS on the three
/// edges merge all six members into a single equivalence class instead of
/// two families — the cycle is unsatisfiable.
pub fn theorem4_cycle_tripartite() -> KPartiteInstance {
    let lists = vec![
        // M over W, M over U
        vec![
            vec![vec![], vec![0, 1], vec![0, 1]], // m : w > w',  u > u'
            vec![vec![], vec![0, 1], vec![0, 1]], // m': w > w',  u > u'
        ],
        // W over M, W over U
        vec![
            vec![vec![0, 1], vec![], vec![0, 1]], // w : m > m',  u > u'
            vec![vec![1, 0], vec![], vec![0, 1]], // w': m' > m,  u > u'
        ],
        // U over M, U over W
        vec![
            vec![vec![1, 0], vec![0, 1], vec![]], // u : m' > m,  w > w'
            vec![vec![1, 0], vec![1, 0], vec![]], // u': m' > m,  w' > w
        ],
    ];
    KPartiteInstance::from_lists(&lists).expect("paper fixture is valid")
}

/// A classic 4-participant roommates instance with **no** stable matching
/// (used to exercise the Irving solver's negative path alongside the
/// paper's right-hand §III-B instance):
///
/// ```text
/// 0: 1 2 3      2: 0 1 3
/// 1: 2 0 3      3: 0 1 2
/// ```
///
/// Participants 0, 1, 2 each rank "the next one around the triangle" first
/// and the outsider 3 last; whoever rooms with 3 forms a blocking pair with
/// the member of the triangle that prefers them.
pub fn no_stable_roommates_4() -> RoommatesInstance {
    RoommatesInstance::from_lists(vec![
        vec![1, 2, 3],
        vec![2, 0, 3],
        vec![0, 1, 3],
        vec![0, 1, 2],
    ])
    .expect("paper fixture is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_construct() {
        assert_eq!(example1_first().n(), 2);
        assert_eq!(example1_second().n(), 2);
        assert_eq!(fig3_tripartite().k(), 3);
        assert_eq!(section3b_left().n(), 6);
        assert_eq!(section3b_right().n(), 6);
        assert_eq!(theorem4_cycle_tripartite().k(), 3);
        assert_eq!(no_stable_roommates_4().n(), 4);
    }

    #[test]
    fn section3b_lists_transcribed_exactly() {
        let left = section3b_left();
        // Spot-check against the paper's table (§III-B).
        assert_eq!(left.list(1), &[5, 2, 4, 3]); // m': u' w u w'
        assert_eq!(left.list(3), &[1, 0, 4, 5]); // w': m' m u u'
        assert_eq!(left.list(4), &[0, 1, 3, 2]); // u : m m' w' w
        let right = section3b_right();
        assert_eq!(right.list(0), &[3, 5, 4, 2]); // m : w' u' u w
        assert_eq!(right.list(5), &[0, 3, 2, 1]); // u': m w' w m'
    }

    #[test]
    fn theorem4_cycle_top_choices() {
        let inst = theorem4_cycle_tripartite();
        use crate::ids::{GenderId, Member};
        let m = Member::new(0usize, 0);
        let w = Member::new(1usize, 0);
        let u = Member::new(2usize, 0);
        assert_eq!(inst.pref_list(m, GenderId(1))[0], 0); // m: w
        assert_eq!(inst.pref_list(w, GenderId(2))[0], 0); // w: u
        assert_eq!(inst.pref_list(u, GenderId(0))[0], 1); // u: m'
    }
}
